file(REMOVE_RECURSE
  "libpara_engine.a"
)
