# Empty compiler generated dependencies file for para_isa.
# This may be replaced when dependencies are built.
