file(REMOVE_RECURSE
  "CMakeFiles/para_isa.dir/isa.cpp.o"
  "CMakeFiles/para_isa.dir/isa.cpp.o.d"
  "libpara_isa.a"
  "libpara_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/para_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
