file(REMOVE_RECURSE
  "libpara_isa.a"
)
