# Empty dependencies file for para_sim.
# This may be replaced when dependencies are built.
