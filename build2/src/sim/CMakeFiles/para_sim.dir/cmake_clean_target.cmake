file(REMOVE_RECURSE
  "libpara_sim.a"
)
