
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/exec_profile.cpp" "src/sim/CMakeFiles/para_sim.dir/exec_profile.cpp.o" "gcc" "src/sim/CMakeFiles/para_sim.dir/exec_profile.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/para_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/para_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/para_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/para_sim.dir/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/casm/CMakeFiles/para_casm.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/para_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/isa/CMakeFiles/para_isa.dir/DependInfo.cmake"
  "/root/repo/build2/src/support/CMakeFiles/para_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
