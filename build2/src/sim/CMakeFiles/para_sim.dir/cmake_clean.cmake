file(REMOVE_RECURSE
  "CMakeFiles/para_sim.dir/exec_profile.cpp.o"
  "CMakeFiles/para_sim.dir/exec_profile.cpp.o.d"
  "CMakeFiles/para_sim.dir/machine.cpp.o"
  "CMakeFiles/para_sim.dir/machine.cpp.o.d"
  "CMakeFiles/para_sim.dir/memory.cpp.o"
  "CMakeFiles/para_sim.dir/memory.cpp.o.d"
  "libpara_sim.a"
  "libpara_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/para_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
