# Empty compiler generated dependencies file for para_support.
# This may be replaced when dependencies are built.
