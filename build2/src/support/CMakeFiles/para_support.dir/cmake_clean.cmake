file(REMOVE_RECURSE
  "CMakeFiles/para_support.dir/ascii_table.cpp.o"
  "CMakeFiles/para_support.dir/ascii_table.cpp.o.d"
  "CMakeFiles/para_support.dir/bucketed_profile.cpp.o"
  "CMakeFiles/para_support.dir/bucketed_profile.cpp.o.d"
  "CMakeFiles/para_support.dir/histogram.cpp.o"
  "CMakeFiles/para_support.dir/histogram.cpp.o.d"
  "CMakeFiles/para_support.dir/interval_profile.cpp.o"
  "CMakeFiles/para_support.dir/interval_profile.cpp.o.d"
  "CMakeFiles/para_support.dir/panic.cpp.o"
  "CMakeFiles/para_support.dir/panic.cpp.o.d"
  "CMakeFiles/para_support.dir/string_utils.cpp.o"
  "CMakeFiles/para_support.dir/string_utils.cpp.o.d"
  "libpara_support.a"
  "libpara_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/para_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
