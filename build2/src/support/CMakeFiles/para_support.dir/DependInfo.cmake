
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/ascii_table.cpp" "src/support/CMakeFiles/para_support.dir/ascii_table.cpp.o" "gcc" "src/support/CMakeFiles/para_support.dir/ascii_table.cpp.o.d"
  "/root/repo/src/support/bucketed_profile.cpp" "src/support/CMakeFiles/para_support.dir/bucketed_profile.cpp.o" "gcc" "src/support/CMakeFiles/para_support.dir/bucketed_profile.cpp.o.d"
  "/root/repo/src/support/histogram.cpp" "src/support/CMakeFiles/para_support.dir/histogram.cpp.o" "gcc" "src/support/CMakeFiles/para_support.dir/histogram.cpp.o.d"
  "/root/repo/src/support/interval_profile.cpp" "src/support/CMakeFiles/para_support.dir/interval_profile.cpp.o" "gcc" "src/support/CMakeFiles/para_support.dir/interval_profile.cpp.o.d"
  "/root/repo/src/support/panic.cpp" "src/support/CMakeFiles/para_support.dir/panic.cpp.o" "gcc" "src/support/CMakeFiles/para_support.dir/panic.cpp.o.d"
  "/root/repo/src/support/string_utils.cpp" "src/support/CMakeFiles/para_support.dir/string_utils.cpp.o" "gcc" "src/support/CMakeFiles/para_support.dir/string_utils.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
