file(REMOVE_RECURSE
  "libpara_support.a"
)
