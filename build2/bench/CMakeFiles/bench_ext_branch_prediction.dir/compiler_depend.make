# Empty compiler generated dependencies file for bench_ext_branch_prediction.
# This may be replaced when dependencies are built.
