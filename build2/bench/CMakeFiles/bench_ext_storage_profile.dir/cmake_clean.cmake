file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_storage_profile.dir/bench_ext_storage_profile.cpp.o"
  "CMakeFiles/bench_ext_storage_profile.dir/bench_ext_storage_profile.cpp.o.d"
  "bench_ext_storage_profile"
  "bench_ext_storage_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_storage_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
