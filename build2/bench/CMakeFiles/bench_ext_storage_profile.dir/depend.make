# Empty dependencies file for bench_ext_storage_profile.
# This may be replaced when dependencies are built.
