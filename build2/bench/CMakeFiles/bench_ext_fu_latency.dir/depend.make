# Empty dependencies file for bench_ext_fu_latency.
# This may be replaced when dependencies are built.
