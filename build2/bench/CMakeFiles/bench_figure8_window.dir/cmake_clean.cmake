file(REMOVE_RECURSE
  "CMakeFiles/bench_figure8_window.dir/bench_figure8_window.cpp.o"
  "CMakeFiles/bench_figure8_window.dir/bench_figure8_window.cpp.o.d"
  "bench_figure8_window"
  "bench_figure8_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure8_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
