file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_renaming.dir/bench_table4_renaming.cpp.o"
  "CMakeFiles/bench_table4_renaming.dir/bench_table4_renaming.cpp.o.d"
  "bench_table4_renaming"
  "bench_table4_renaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_renaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
