file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dataflow.dir/bench_table3_dataflow.cpp.o"
  "CMakeFiles/bench_table3_dataflow.dir/bench_table3_dataflow.cpp.o.d"
  "bench_table3_dataflow"
  "bench_table3_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
