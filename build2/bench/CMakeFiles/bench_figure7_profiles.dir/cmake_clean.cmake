file(REMOVE_RECURSE
  "CMakeFiles/bench_figure7_profiles.dir/bench_figure7_profiles.cpp.o"
  "CMakeFiles/bench_figure7_profiles.dir/bench_figure7_profiles.cpp.o.d"
  "bench_figure7_profiles"
  "bench_figure7_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure7_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
