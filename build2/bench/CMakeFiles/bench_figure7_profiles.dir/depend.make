# Empty dependencies file for bench_figure7_profiles.
# This may be replaced when dependencies are built.
