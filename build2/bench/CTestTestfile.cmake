# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build2/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_hotpath_json_smoke "/root/.pyenv/shims/python3" "/root/repo/tools/check_bench_json.py" "/root/repo/build2/bench/bench_hotpath" "--small" "--max=20000" "--repeats=1" "--configs=dataflow,fu64" "--out=")
set_tests_properties(bench_hotpath_json_smoke PROPERTIES  LABELS "bench" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
