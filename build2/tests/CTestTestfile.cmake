# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/smoke_test[1]_include.cmake")
include("/root/repo/build2/tests/support_tests[1]_include.cmake")
include("/root/repo/build2/tests/isa_tests[1]_include.cmake")
include("/root/repo/build2/tests/trace_tests[1]_include.cmake")
include("/root/repo/build2/tests/casm_tests[1]_include.cmake")
include("/root/repo/build2/tests/sim_tests[1]_include.cmake")
include("/root/repo/build2/tests/minic_tests[1]_include.cmake")
include("/root/repo/build2/tests/core_tests[1]_include.cmake")
include("/root/repo/build2/tests/workload_tests[1]_include.cmake")
include("/root/repo/build2/tests/interpreter_tests[1]_include.cmake")
include("/root/repo/build2/tests/cli_tests[1]_include.cmake")
include("/root/repo/build2/tests/engine_tests[1]_include.cmake")
