add_test([=[Smoke.CompileRunAnalyze]=]  /root/repo/build2/tests/smoke_test [==[--gtest_filter=Smoke.CompileRunAnalyze]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Smoke.CompileRunAnalyze]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build2/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  smoke_test_TESTS Smoke.CompileRunAnalyze)
