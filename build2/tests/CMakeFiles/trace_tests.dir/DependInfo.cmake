
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/compressed_io_test.cpp" "tests/CMakeFiles/trace_tests.dir/trace/compressed_io_test.cpp.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/compressed_io_test.cpp.o.d"
  "/root/repo/tests/trace/file_io_test.cpp" "tests/CMakeFiles/trace_tests.dir/trace/file_io_test.cpp.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/file_io_test.cpp.o.d"
  "/root/repo/tests/trace/last_use_test.cpp" "tests/CMakeFiles/trace_tests.dir/trace/last_use_test.cpp.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/last_use_test.cpp.o.d"
  "/root/repo/tests/trace/record_test.cpp" "tests/CMakeFiles/trace_tests.dir/trace/record_test.cpp.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/record_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/para_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/workloads/CMakeFiles/para_workloads.dir/DependInfo.cmake"
  "/root/repo/build2/src/minic/CMakeFiles/para_minic.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/para_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/casm/CMakeFiles/para_casm.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/para_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/isa/CMakeFiles/para_isa.dir/DependInfo.cmake"
  "/root/repo/build2/src/support/CMakeFiles/para_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
