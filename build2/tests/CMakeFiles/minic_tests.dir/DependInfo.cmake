
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/minic/compiler_test.cpp" "tests/CMakeFiles/minic_tests.dir/minic/compiler_test.cpp.o" "gcc" "tests/CMakeFiles/minic_tests.dir/minic/compiler_test.cpp.o.d"
  "/root/repo/tests/minic/differential_test.cpp" "tests/CMakeFiles/minic_tests.dir/minic/differential_test.cpp.o" "gcc" "tests/CMakeFiles/minic_tests.dir/minic/differential_test.cpp.o.d"
  "/root/repo/tests/minic/lexer_parser_test.cpp" "tests/CMakeFiles/minic_tests.dir/minic/lexer_parser_test.cpp.o" "gcc" "tests/CMakeFiles/minic_tests.dir/minic/lexer_parser_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/para_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/workloads/CMakeFiles/para_workloads.dir/DependInfo.cmake"
  "/root/repo/build2/src/minic/CMakeFiles/para_minic.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/para_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/casm/CMakeFiles/para_casm.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/para_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/isa/CMakeFiles/para_isa.dir/DependInfo.cmake"
  "/root/repo/build2/src/support/CMakeFiles/para_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
