file(REMOVE_RECURSE
  "CMakeFiles/minic_tests.dir/minic/compiler_test.cpp.o"
  "CMakeFiles/minic_tests.dir/minic/compiler_test.cpp.o.d"
  "CMakeFiles/minic_tests.dir/minic/differential_test.cpp.o"
  "CMakeFiles/minic_tests.dir/minic/differential_test.cpp.o.d"
  "CMakeFiles/minic_tests.dir/minic/lexer_parser_test.cpp.o"
  "CMakeFiles/minic_tests.dir/minic/lexer_parser_test.cpp.o.d"
  "minic_tests"
  "minic_tests.pdb"
  "minic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
