# Empty dependencies file for minic_tests.
# This may be replaced when dependencies are built.
