# Empty compiler generated dependencies file for interpreter_tests.
# This may be replaced when dependencies are built.
