file(REMOVE_RECURSE
  "CMakeFiles/interpreter_tests.dir/minic/interpreter_test.cpp.o"
  "CMakeFiles/interpreter_tests.dir/minic/interpreter_test.cpp.o.d"
  "interpreter_tests"
  "interpreter_tests.pdb"
  "interpreter_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpreter_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
