file(REMOVE_RECURSE
  "CMakeFiles/engine_tests.dir/engine/sweep_cli_test.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/sweep_cli_test.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/sweep_engine_test.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/sweep_engine_test.cpp.o.d"
  "engine_tests"
  "engine_tests.pdb"
  "engine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
