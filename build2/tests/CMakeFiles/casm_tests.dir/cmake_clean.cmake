file(REMOVE_RECURSE
  "CMakeFiles/casm_tests.dir/casm/assembler_test.cpp.o"
  "CMakeFiles/casm_tests.dir/casm/assembler_test.cpp.o.d"
  "casm_tests"
  "casm_tests.pdb"
  "casm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
