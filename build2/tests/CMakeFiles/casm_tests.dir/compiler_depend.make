# Empty compiler generated dependencies file for casm_tests.
# This may be replaced when dependencies are built.
