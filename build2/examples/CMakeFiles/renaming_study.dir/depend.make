# Empty dependencies file for renaming_study.
# This may be replaced when dependencies are built.
