file(REMOVE_RECURSE
  "CMakeFiles/renaming_study.dir/renaming_study.cpp.o"
  "CMakeFiles/renaming_study.dir/renaming_study.cpp.o.d"
  "renaming_study"
  "renaming_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renaming_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
