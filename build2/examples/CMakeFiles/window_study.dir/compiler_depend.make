# Empty compiler generated dependencies file for window_study.
# This may be replaced when dependencies are built.
