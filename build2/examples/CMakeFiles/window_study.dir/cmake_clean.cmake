file(REMOVE_RECURSE
  "CMakeFiles/window_study.dir/window_study.cpp.o"
  "CMakeFiles/window_study.dir/window_study.cpp.o.d"
  "window_study"
  "window_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
