# Empty dependencies file for custom_trace_source.
# This may be replaced when dependencies are built.
