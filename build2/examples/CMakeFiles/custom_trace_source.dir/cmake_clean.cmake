file(REMOVE_RECURSE
  "CMakeFiles/custom_trace_source.dir/custom_trace_source.cpp.o"
  "CMakeFiles/custom_trace_source.dir/custom_trace_source.cpp.o.d"
  "custom_trace_source"
  "custom_trace_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_trace_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
