# Empty dependencies file for compiler_pipeline.
# This may be replaced when dependencies are built.
