file(REMOVE_RECURSE
  "CMakeFiles/compiler_pipeline.dir/compiler_pipeline.cpp.o"
  "CMakeFiles/compiler_pipeline.dir/compiler_pipeline.cpp.o.d"
  "compiler_pipeline"
  "compiler_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
