# Empty dependencies file for paragraph.
# This may be replaced when dependencies are built.
