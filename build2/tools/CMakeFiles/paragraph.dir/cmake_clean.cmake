file(REMOVE_RECURSE
  "CMakeFiles/paragraph.dir/paragraph_main.cpp.o"
  "CMakeFiles/paragraph.dir/paragraph_main.cpp.o.d"
  "paragraph"
  "paragraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
