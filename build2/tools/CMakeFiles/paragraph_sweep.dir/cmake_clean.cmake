file(REMOVE_RECURSE
  "CMakeFiles/paragraph_sweep.dir/sweep_main.cpp.o"
  "CMakeFiles/paragraph_sweep.dir/sweep_main.cpp.o.d"
  "paragraph-sweep"
  "paragraph-sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
