# Empty dependencies file for paragraph_sweep.
# This may be replaced when dependencies are built.
