// Ablation microbenchmarks (google-benchmark): the design choices DESIGN.md
// calls out.
//
//  - FlatHashMap vs std::unordered_map as the live well's hash table
//    (the paper's "very space efficient hash table").
//  - Full Paragraph analysis vs the critical-path-only baseline (what the
//    extra DDG metrics cost).
//  - One-pass vs two-pass deadness (live-well peak occupancy trade).
//  - Analyzer throughput under each renaming configuration and windowing.
//  - Simulator and compiler throughput (the trace-generation substrate).
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "core/baseline.hpp"
#include "core/paragraph.hpp"
#include "minic/compiler.hpp"
#include "support/flat_hash_map.hpp"
#include "support/prng.hpp"
#include "trace/buffer.hpp"
#include "trace/compressed_io.hpp"
#include "trace/file_io.hpp"
#include "trace/last_use.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;

namespace {

/** A captured mid-size trace shared by the analyzer benchmarks. */
const trace::TraceBuffer &
sharedTrace()
{
    static trace::TraceBuffer buffer = [] {
        auto &suite = workloads::WorkloadSuite::instance();
        auto src = suite.makeSource(suite.find("espresso"),
                                    workloads::Scale::Small);
        trace::TraceBuffer buf;
        buf.capture(*src);
        return buf;
    }();
    return buffer;
}

const trace::TraceBuffer &
sharedAnnotatedTrace()
{
    static trace::TraceBuffer buffer = [] {
        trace::TraceBuffer buf = sharedTrace();
        trace::annotateLastUses(buf);
        return buf;
    }();
    return buffer;
}

} // namespace

// ---------------------------------------------------------------------------
// Live-well hash table.
// ---------------------------------------------------------------------------

static void
BM_LiveWellHash_FlatHashMap(benchmark::State &state)
{
    Prng prng(1);
    std::vector<uint64_t> keys(1u << 16);
    for (auto &k : keys)
        k = prng.nextBelow(1u << 14) + 1;
    for (auto _ : state) {
        FlatHashMap<uint64_t, uint64_t> map;
        for (uint64_t k : keys) {
            map.insertOrAssign(k, k);
            if ((k & 3) == 0)
                map.erase(k ^ 1);
            benchmark::DoNotOptimize(map.find(k ^ 2));
        }
        benchmark::DoNotOptimize(map.size());
        state.counters["tableBytes"] = static_cast<double>(map.memoryBytes());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_LiveWellHash_FlatHashMap);

static void
BM_LiveWellHash_StdUnorderedMap(benchmark::State &state)
{
    Prng prng(1);
    std::vector<uint64_t> keys(1u << 16);
    for (auto &k : keys)
        k = prng.nextBelow(1u << 14) + 1;
    for (auto _ : state) {
        std::unordered_map<uint64_t, uint64_t> map;
        for (uint64_t k : keys) {
            map[k] = k;
            if ((k & 3) == 0)
                map.erase(k ^ 1);
            benchmark::DoNotOptimize(map.count(k ^ 2));
        }
        benchmark::DoNotOptimize(map.size());
        // Approximate node-based footprint: per-node heap block (key, value,
        // next pointer, cached hash + allocator overhead) plus the bucket
        // array.
        state.counters["tableBytes"] = static_cast<double>(
            map.size() * (sizeof(uint64_t) * 2 + 2 * sizeof(void *) + 16) +
            map.bucket_count() * sizeof(void *));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_LiveWellHash_StdUnorderedMap);

// ---------------------------------------------------------------------------
// Analyzer throughput: full engine vs baseline, and per configuration.
// ---------------------------------------------------------------------------

static void
BM_Paragraph_Dataflow(benchmark::State &state)
{
    const auto &buf = sharedTrace();
    for (auto _ : state) {
        trace::BufferSource src(buf);
        core::Paragraph engine(core::AnalysisConfig::dataflowConservative());
        benchmark::DoNotOptimize(engine.analyze(src).criticalPathLength);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_Paragraph_Dataflow);

static void
BM_Paragraph_NoRenaming(benchmark::State &state)
{
    const auto &buf = sharedTrace();
    for (auto _ : state) {
        trace::BufferSource src(buf);
        core::Paragraph engine(core::AnalysisConfig::noRenaming());
        benchmark::DoNotOptimize(engine.analyze(src).criticalPathLength);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_Paragraph_NoRenaming);

static void
BM_Paragraph_Windowed(benchmark::State &state)
{
    const auto &buf = sharedTrace();
    uint64_t window = static_cast<uint64_t>(state.range(0));
    for (auto _ : state) {
        trace::BufferSource src(buf);
        core::Paragraph engine(core::AnalysisConfig::windowed(window));
        benchmark::DoNotOptimize(engine.analyze(src).criticalPathLength);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_Paragraph_Windowed)->Arg(16)->Arg(1024)->Arg(65536);

static void
BM_Paragraph_WithFuLimits(benchmark::State &state)
{
    const auto &buf = sharedTrace();
    for (auto _ : state) {
        trace::BufferSource src(buf);
        core::AnalysisConfig cfg =
            core::AnalysisConfig::dataflowConservative();
        cfg.totalFuLimit = 8;
        core::Paragraph engine(cfg);
        benchmark::DoNotOptimize(engine.analyze(src).criticalPathLength);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_Paragraph_WithFuLimits);

static void
BM_Baseline_CriticalPathOnly(benchmark::State &state)
{
    const auto &buf = sharedTrace();
    for (auto _ : state) {
        trace::BufferSource src(buf);
        core::CriticalPathAnalyzer engine(
            core::AnalysisConfig::dataflowConservative());
        benchmark::DoNotOptimize(engine.analyze(src).criticalPathLength);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_Baseline_CriticalPathOnly);

// ---------------------------------------------------------------------------
// One-pass vs two-pass deadness (paper Section 3.2's two methods).
// ---------------------------------------------------------------------------

static void
BM_Deadness_OnePass(benchmark::State &state)
{
    const auto &buf = sharedTrace();
    uint64_t peak = 0;
    for (auto _ : state) {
        trace::BufferSource src(buf);
        core::Paragraph engine(core::AnalysisConfig::dataflowConservative());
        auto res = engine.analyze(src);
        peak = res.liveWellPeak;
        benchmark::DoNotOptimize(res.criticalPathLength);
    }
    state.counters["liveWellPeak"] = static_cast<double>(peak);
}
BENCHMARK(BM_Deadness_OnePass);

static void
BM_Deadness_TwoPass(benchmark::State &state)
{
    const auto &buf = sharedAnnotatedTrace();
    uint64_t peak = 0;
    for (auto _ : state) {
        trace::BufferSource src(buf);
        core::AnalysisConfig cfg =
            core::AnalysisConfig::dataflowConservative();
        cfg.useLastUseEviction = true;
        core::Paragraph engine(cfg);
        auto res = engine.analyze(src);
        peak = res.liveWellPeak;
        benchmark::DoNotOptimize(res.criticalPathLength);
    }
    state.counters["liveWellPeak"] = static_cast<double>(peak);
}
BENCHMARK(BM_Deadness_TwoPass);

static void
BM_Deadness_AnnotationPass(benchmark::State &state)
{
    for (auto _ : state) {
        trace::TraceBuffer buf = sharedTrace();
        benchmark::DoNotOptimize(trace::annotateLastUses(buf));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sharedTrace().size()));
}
BENCHMARK(BM_Deadness_AnnotationPass);

// ---------------------------------------------------------------------------
// Substrate throughput.
// ---------------------------------------------------------------------------

static void
BM_TraceFile_FixedFormatWrite(benchmark::State &state)
{
    const auto &buf = sharedTrace();
    std::string path = "/tmp/para_bench_fixed.ptrc";
    uint64_t bytes = 0;
    for (auto _ : state) {
        trace::TraceFileWriter writer(path);
        trace::BufferSource src(buf);
        writer.writeAll(src);
        writer.close();
        bytes = buf.size() * sizeof(trace::PackedRecord) + 24;
    }
    state.counters["bytesPerRecord"] =
        static_cast<double>(bytes) / static_cast<double>(buf.size());
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(buf.size()));
    std::remove(path.c_str());
}
BENCHMARK(BM_TraceFile_FixedFormatWrite);

static void
BM_TraceFile_CompressedWrite(benchmark::State &state)
{
    const auto &buf = sharedTrace();
    std::string path = "/tmp/para_bench_packed.ptrz";
    uint64_t bytes = 0;
    for (auto _ : state) {
        trace::CompressedTraceWriter writer(path);
        trace::BufferSource src(buf);
        writer.writeAll(src);
        bytes = writer.bytesWritten();
        writer.close();
    }
    state.counters["bytesPerRecord"] =
        static_cast<double>(bytes) / static_cast<double>(buf.size());
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(buf.size()));
    std::remove(path.c_str());
}
BENCHMARK(BM_TraceFile_CompressedWrite);

static void
BM_TraceFile_CompressedRead(benchmark::State &state)
{
    const auto &buf = sharedTrace();
    std::string path = "/tmp/para_bench_packed_read.ptrz";
    {
        trace::CompressedTraceWriter writer(path);
        trace::BufferSource src(buf);
        writer.writeAll(src);
    }
    for (auto _ : state) {
        trace::CompressedTraceReader reader(path);
        trace::TraceRecord rec;
        uint64_t n = 0;
        while (reader.next(rec))
            ++n;
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(buf.size()));
    std::remove(path.c_str());
}
BENCHMARK(BM_TraceFile_CompressedRead);

static void
BM_Simulator_TraceGeneration(benchmark::State &state)
{
    auto &suite = workloads::WorkloadSuite::instance();
    const auto &w = suite.find("xlisp");
    uint64_t n = 0;
    for (auto _ : state) {
        auto src = suite.makeSource(w, workloads::Scale::Small);
        trace::TraceRecord rec;
        n = 0;
        while (src->next(rec))
            ++n;
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_Simulator_TraceGeneration);

static void
BM_MiniC_CompileWorkload(benchmark::State &state)
{
    auto &suite = workloads::WorkloadSuite::instance();
    const auto &w = suite.find("spice2g6");
    for (auto _ : state) {
        casm::Program prog = minic::compile(w.source);
        benchmark::DoNotOptimize(prog.text.size());
    }
}
BENCHMARK(BM_MiniC_CompileWorkload);

BENCHMARK_MAIN();
