// bench_hotpath — analyzer-throughput benchmark for the placement hot path.
//
// The paper's methodology is a single serial pass over up to 100M-instruction
// traces, so Minstr/s through Paragraph::process *is* the scaling axis: every
// grid cell of a sweep pays the full per-record placement cost again. This
// harness times the analyzer alone (traces are captured into memory first, so
// simulation cost is excluded) across representative configurations, on both
// record-at-a-time streaming (`analyze(TraceSource&)`) and bulk buffer
// iteration (`analyze(const TraceBuffer&)`).
//
// Results are written as `BENCH_hotpath.json` — a stable, timestamped schema
// (`paragraph-bench-hotpath-v1`) meant to be re-run and diffed across
// revisions so the perf trajectory of the hot path is tracked in-repo.
//
// Usage:
//   bench_hotpath [options]
//     --inputs=a,b,c   workload names (default: xlisp,espresso,tomcatv)
//     --max=N          instructions per trace capture (default: 2,000,000)
//     --repeats=N      timed repetitions, best-of (default: 3)
//     --small          use each workload's reduced test input
//     --json           print the JSON document to stdout (suppresses table)
//     --out=FILE       also write the JSON to FILE
//                      (default: BENCH_hotpath.json; --out= disables)
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "core/paragraph.hpp"
#include "engine/sweep_json.hpp"
#include "support/ascii_table.hpp"
#include "support/string_utils.hpp"
#include "trace/buffer.hpp"
#include "trace/last_use.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;

namespace {

struct Options
{
    std::vector<std::string> inputs = {"xlisp", "espresso", "tomcatv"};
    std::vector<std::string> configs; ///< empty = all
    uint64_t maxInstructions = 2000000;
    unsigned repeats = 3;
    bool small = false;
    bool jsonToStdout = false;
    std::string outPath = "BENCH_hotpath.json";
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: bench_hotpath [--inputs=a,b,c] [--configs=a,b] "
                 "[--max=N] [--repeats=N]\n"
                 "                     [--small] [--json] [--out=FILE]\n");
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        int64_t n = 0;
        if (startsWith(arg, "--inputs=")) {
            opt.inputs.clear();
            for (const std::string &s : splitAndTrim(arg.substr(9), ','))
                if (!s.empty())
                    opt.inputs.push_back(s);
            if (opt.inputs.empty())
                usage();
        } else if (startsWith(arg, "--configs=")) {
            for (const std::string &s : splitAndTrim(arg.substr(10), ','))
                if (!s.empty())
                    opt.configs.push_back(s);
            if (opt.configs.empty())
                usage();
        } else if (startsWith(arg, "--max=") && parseInt(arg.substr(6), n) &&
                   n > 0) {
            opt.maxInstructions = static_cast<uint64_t>(n);
        } else if (startsWith(arg, "--repeats=") &&
                   parseInt(arg.substr(10), n) && n > 0) {
            opt.repeats = static_cast<unsigned>(n);
        } else if (arg == "--small") {
            opt.small = true;
        } else if (arg == "--json") {
            opt.jsonToStdout = true;
        } else if (startsWith(arg, "--out=")) {
            opt.outPath = arg.substr(6);
        } else {
            std::fprintf(stderr, "bench_hotpath: bad argument '%s'\n",
                         arg.c_str());
            usage();
        }
    }
    return opt;
}

/** One benchmark configuration point. */
struct BenchConfig
{
    std::string label;
    core::AnalysisConfig cfg;
    bool needsLastUse = false; ///< analyze the last-use-annotated capture
};

std::vector<BenchConfig>
makeConfigs(uint64_t max_instructions)
{
    std::vector<BenchConfig> configs;
    auto add = [&](const std::string &label, core::AnalysisConfig cfg,
                   bool last_use = false) {
        cfg.maxInstructions = max_instructions;
        configs.push_back(BenchConfig{label, cfg, last_use});
    };
    // The paper's default analysis: all renaming, unlimited window, perfect
    // prediction — the single-config analyze path.
    add("dataflow", core::AnalysisConfig::dataflowConservative());
    // Storage dependencies everywhere: every destination probes its
    // previous occupant.
    add("norename", core::AnalysisConfig::noRenaming());
    // Finite window: firewall bookkeeping on every record.
    add("window64", core::AnalysisConfig::windowed(64));
    // Realistic control flow: bimodal predictor + large window.
    {
        core::AnalysisConfig cfg = core::AnalysisConfig::windowed(1024);
        cfg.branchPredictor = core::PredictorKind::Bimodal;
        add("bimodal-w1k", cfg);
    }
    // Resource limits: the Figure 4 throttle on every placement.
    {
        core::AnalysisConfig cfg = core::AnalysisConfig::dataflowConservative();
        cfg.totalFuLimit = 64;
        add("fu64", cfg);
    }
    // Two-pass deadness: eviction work on the annotated trace.
    {
        core::AnalysisConfig cfg = core::AnalysisConfig::dataflowConservative();
        cfg.useLastUseEviction = true;
        add("lastuse", cfg, true);
    }
    return configs;
}

/** One timed measurement. */
struct Row
{
    std::string input;
    std::string config;
    std::string path; ///< "stream" or "bulk"
    uint64_t instructions = 0;
    double seconds = 0.0;
    double minstrPerSec = 0.0;
};

Row
measure(const std::string &input, const BenchConfig &bc,
        const std::string &path, const trace::TraceBuffer &buffer,
        unsigned repeats)
{
    Row row;
    row.input = input;
    row.config = bc.label;
    row.path = path;
    row.seconds = std::numeric_limits<double>::infinity();
    for (unsigned r = 0; r < repeats; ++r) {
        core::Paragraph analyzer(bc.cfg);
        core::AnalysisResult res;
        if (path == "bulk") {
            res = analyzer.analyze(buffer);
        } else {
            trace::BufferSource src(buffer, input);
            res = analyzer.analyze(src);
        }
        row.instructions = res.instructions;
        if (res.analysisSeconds < row.seconds)
            row.seconds = res.analysisSeconds;
    }
    row.minstrPerSec =
        row.seconds > 0.0
            ? static_cast<double>(row.instructions) / 1e6 / row.seconds
            : 0.0;
    return row;
}

std::string
utcTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    return strFormat("%04d-%02d-%02dT%02d:%02d:%02dZ", tm.tm_year + 1900,
                     tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                     tm.tm_sec);
}

double
geomean(const std::vector<Row> &rows, const std::string &path)
{
    double logSum = 0.0;
    size_t n = 0;
    for (const Row &row : rows) {
        if (row.path == path && row.minstrPerSec > 0.0) {
            logSum += std::log(row.minstrPerSec);
            ++n;
        }
    }
    return n ? std::exp(logSum / static_cast<double>(n)) : 0.0;
}

/** BENCH_hotpath.json, schema paragraph-bench-hotpath-v1. */
void
writeJson(std::ostream &os, const Options &opt, const std::vector<Row> &rows)
{
    os << "{\n"
       << "  \"schema\": \"paragraph-bench-hotpath-v1\",\n"
       << "  \"timestamp\": " << engine::jsonString(utcTimestamp()) << ",\n"
       << "  \"max_instructions\": " << opt.maxInstructions << ",\n"
       << "  \"repeats\": " << opt.repeats << ",\n"
       << "  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        os << "    {\"input\": " << engine::jsonString(row.input)
           << ", \"config\": " << engine::jsonString(row.config)
           << ", \"path\": " << engine::jsonString(row.path)
           << ", \"instructions\": " << row.instructions
           << ", \"seconds\": " << engine::jsonDouble(row.seconds)
           << ", \"minstr_per_sec\": " << engine::jsonDouble(row.minstrPerSec)
           << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"summary\": {\n"
       << "    \"stream_geomean_minstr_per_sec\": "
       << engine::jsonDouble(geomean(rows, "stream")) << ",\n"
       << "    \"bulk_geomean_minstr_per_sec\": "
       << engine::jsonDouble(geomean(rows, "bulk")) << "\n"
       << "  }\n"
       << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    std::vector<BenchConfig> configs = makeConfigs(opt.maxInstructions);
    if (!opt.configs.empty()) {
        std::vector<BenchConfig> picked;
        for (const std::string &want : opt.configs) {
            bool found = false;
            for (const BenchConfig &bc : configs) {
                if (bc.label == want) {
                    picked.push_back(bc);
                    found = true;
                }
            }
            if (!found) {
                std::fprintf(stderr, "bench_hotpath: unknown config '%s'\n",
                             want.c_str());
                return 2;
            }
        }
        configs = std::move(picked);
    }
    auto &suite = workloads::WorkloadSuite::instance();

    std::vector<Row> rows;
    for (const std::string &input : opt.inputs) {
        const workloads::Workload &w = suite.find(input);
        auto src = suite.makeSource(w, opt.small ? workloads::Scale::Small
                                                 : workloads::Scale::Full);
        trace::TraceBuffer buffer;
        buffer.capture(*src, opt.maxInstructions);

        trace::TraceBuffer annotated(buffer.records());
        trace::annotateLastUses(annotated);

        for (const BenchConfig &bc : configs) {
            const trace::TraceBuffer &buf =
                bc.needsLastUse ? annotated : buffer;
            for (const char *path : {"stream", "bulk"}) {
                rows.push_back(measure(input, bc, path, buf, opt.repeats));
                if (!opt.jsonToStdout) {
                    const Row &row = rows.back();
                    std::fprintf(stderr, "  %-10s %-12s %-7s %7.2f Minstr/s\n",
                                 row.input.c_str(), row.config.c_str(),
                                 row.path.c_str(), row.minstrPerSec);
                }
            }
        }
    }

    if (opt.jsonToStdout) {
        writeJson(std::cout, opt, rows);
    } else {
        AsciiTable table;
        table.addColumn("Input", AsciiTable::Align::Left);
        table.addColumn("Config", AsciiTable::Align::Left);
        table.addColumn("Path", AsciiTable::Align::Left);
        table.addColumn("Instructions");
        table.addColumn("Minstr/s");
        for (const Row &row : rows) {
            table.beginRow();
            table.cell(row.input);
            table.cell(row.config);
            table.cell(row.path);
            table.cell(AsciiTable::withCommas(row.instructions));
            table.cell(row.minstrPerSec, 2);
        }
        table.print(std::cout);
        std::printf("\nstream geomean: %.2f Minstr/s   bulk geomean: "
                    "%.2f Minstr/s\n",
                    geomean(rows, "stream"), geomean(rows, "bulk"));
    }

    if (!opt.outPath.empty()) {
        std::ofstream out(opt.outPath);
        if (!out) {
            std::fprintf(stderr, "bench_hotpath: cannot write '%s'\n",
                         opt.outPath.c_str());
            return 1;
        }
        writeJson(out, opt, rows);
        if (!opt.jsonToStdout)
            std::printf("wrote %s\n", opt.outPath.c_str());
    }
    return 0;
}
