// Table 4: SPEC Benchmarks under Different Renaming Conditions.
//
// Available parallelism with: no renaming, registers renamed, registers +
// stack renamed, and registers + all memory renamed. Conservative syscalls,
// unlimited window, no functional-unit limits — exactly the paper's setup.
//
// Runs on the parallel sweep engine: each benchmark's trace is simulated
// once into a shared capture and the four renaming conditions are analyzed
// concurrently across a worker pool.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "engine/sweep.hpp"
#include "support/ascii_table.hpp"

using namespace paragraph;

int
main()
{
    bench::banner("Table 4: Available Parallelism under Different Renaming "
                  "Conditions",
                  "Table 4");

    AsciiTable table;
    table.addColumn("Benchmark", AsciiTable::Align::Left);
    table.addColumn("No Renaming");
    table.addColumn("Regs Renamed");
    table.addColumn("Regs/Stack Renamed");
    table.addColumn("Regs/Mem Renamed");

    const std::vector<core::AnalysisConfig> configs = {
        core::AnalysisConfig::noRenaming(),
        core::AnalysisConfig::regsRenamed(),
        core::AnalysisConfig::regsStackRenamed(),
        core::AnalysisConfig::regsMemRenamed(),
    };

    engine::TraceRepository repo;
    engine::SweepEngine sweeper;

    auto &suite = workloads::WorkloadSuite::instance();
    for (const auto &w : suite.all()) {
        engine::SweepResult sweep = sweeper.run(repo, {w.name}, configs);
        table.beginRow();
        table.cell(w.name);
        for (const engine::SweepCell &cell : sweep.cells)
            table.cell(cell.result.availableParallelism, 2);
        repo.release(w.name); // captures are per-benchmark; bound memory
    }
    table.print(std::cout);

    std::printf(
        "\nPaper rows (none / regs / regs+stack / regs+mem):\n"
        "  cc1        3.65 /    33.70 /    36.19 /    36.21\n"
        "  doduc      1.62 /    29.97 /   103.59 /   103.59\n"
        "  eqntott    3.67 /   532.69 /   538.87 /   782.52\n"
        "  espresso   2.53 /    42.46 /    42.49 /   132.97\n"
        "  fpppp      1.69 /    18.34 /    81.32 / 1,999.86\n"
        "  matrix300  2.05 / 1,235.74 / 23,302.59 / 23,302.60\n"
        "  nasker     2.58 /    50.84 /    50.85 /    50.97\n"
        "  spice2g6   1.85 /    39.67 /    57.36 /   111.45\n"
        "  tomcatv    1.52 /    66.63 /  5,772.38 /  5,806.13\n"
        "  xlisp      3.32 /    13.27 /    13.28 /    13.28\n"
        "Key signatures to compare: register renaming alone recovers most "
        "parallelism for\ncc1/nasker/xlisp; matrix300 and tomcatv need "
        "*stack* renaming (their arrays live\nin procedure frames); fpppp "
        "and espresso need full *memory* renaming.\n");
    return 0;
}
