// Table 3: SPEC Benchmark Dataflow Results.
//
// The upper bound on available parallelism: DDGs containing only true data
// dependencies (all renaming enabled, window as large as the trace, no
// functional-unit limits), under both system-call assumptions. The
// "maximum measurement error" column is the relative gap between the two
// assumptions, as in the paper.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "support/ascii_table.hpp"

using namespace paragraph;

int
main()
{
    bench::banner(
        "Table 3: Dataflow Limits (conservative vs. optimistic syscalls)",
        "Table 3");

    AsciiTable table;
    table.addColumn("Benchmark", AsciiTable::Align::Left);
    table.addColumn("SysCalls");
    table.addColumn("Cons CP Length");
    table.addColumn("Cons Avail Par");
    table.addColumn("Opt CP Length");
    table.addColumn("Opt Avail Par");
    table.addColumn("Max Meas Error");

    auto &suite = workloads::WorkloadSuite::instance();
    for (const auto &w : suite.all()) {
        core::AnalysisResult cons = bench::analyzeWorkload(
            w, core::AnalysisConfig::dataflowConservative());
        core::AnalysisResult opt = bench::analyzeWorkload(
            w, core::AnalysisConfig::dataflowOptimistic());
        double error =
            opt.availableParallelism > 0
                ? 1.0 - cons.availableParallelism / opt.availableParallelism
                : 0.0;
        table.beginRow();
        table.cell(w.name);
        table.cell(cons.sysCalls);
        table.cell(cons.criticalPathLength);
        table.cell(cons.availableParallelism, 2);
        table.cell(opt.criticalPathLength);
        table.cell(opt.availableParallelism, 2);
        table.cell(error, 2);
    }
    table.print(std::cout);

    std::printf(
        "\nPaper values (conservative parallelism): cc1 36.21, doduc "
        "103.59, eqntott 782.52,\nespresso 132.97, fpppp 1,999.86, "
        "matrix300 23,302.60, nasker 50.97, spice2g6 111.45,\ntomcatv "
        "5,806.13, xlisp 13.28. Absolute values scale with trace length "
        "(theirs: 100M\ninstructions); the ordering and orders of "
        "magnitude are the reproducible shape.\n");
    return 0;
}
