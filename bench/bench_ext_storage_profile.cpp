// Extension: the storage (waiting-token) profile of paper Section 2.3.
//
// "The value lifetimes are useful in determining the amount of temporary
// storage required to exploit the parallelism in the DDG." For every
// workload this harness reports how many values an abstract dataflow
// machine would have to buffer at once (peak and mean live values), the
// lifetime distribution, and — for two contrasting benchmarks — the full
// live-values-per-level plot (Culler & Arvind's waiting-token profile).
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/report.hpp"
#include "support/ascii_table.hpp"

using namespace paragraph;

int
main()
{
    bench::banner("Extension: Storage (Waiting-Token) Profiles",
                  "the storage discussion of Section 2.3");

    AsciiTable table;
    table.addColumn("Benchmark", AsciiTable::Align::Left);
    table.addColumn("Avail Par");
    table.addColumn("Peak Live Values");
    table.addColumn("Mean Live Values");
    table.addColumn("Lifetime p50");
    table.addColumn("Lifetime p99");
    table.addColumn("Live-Well Peak");

    auto &suite = workloads::WorkloadSuite::instance();
    for (const auto &w : suite.all()) {
        core::AnalysisResult res = bench::analyzeWorkload(
            w, core::AnalysisConfig::dataflowConservative());
        table.beginRow();
        table.cell(w.name);
        table.cell(res.availableParallelism, 2);
        table.cell(res.storageProfile.peakLive(), 0);
        table.cell(res.storageProfile.meanLive(), 1);
        table.cell(res.lifetimes.percentile(0.50));
        table.cell(res.lifetimes.percentile(0.99));
        table.cell(res.liveWellPeak);
    }
    table.print(std::cout);

    std::printf(
        "\n(Peak/mean live values: tokens an abstract dataflow machine "
        "buffers while\nexecuting the DDG at full parallelism. Live-well "
        "peak: locations the *analyzer*\ntracked, i.e. the paper's 32 MB "
        "working-set concern, scaled down.)\n\n");

    for (const char *name : {"matrix300", "xlisp"}) {
        const auto &w = suite.find(name);
        core::AnalysisResult res = bench::analyzeWorkload(
            w, core::AnalysisConfig::dataflowConservative());
        std::printf("---- %s: values live per DDG level ----\n", name);
        core::printStorageProfile(std::cout, res);
        std::printf("\n");
    }

    std::printf(
        "Shape note: the high-parallelism codes need storage proportional "
        "to their\nparallelism (tens of thousands of simultaneously live "
        "values for matrix300),\nwhile xlisp's serial profile keeps only a "
        "handful alive — renaming everything is\ncheap exactly where it "
        "buys nothing.\n");
    return 0;
}
