// Figure 7: Parallelism Profiles for the SPEC Benchmarks.
//
// For each workload, the number of operations available per DDG level
// (conservative syscalls, all renaming, unlimited window) — rendered as a
// bucketed series and a coarse ASCII area plot per benchmark, the data
// behind the paper's ten per-benchmark plots.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/report.hpp"

using namespace paragraph;

int
main()
{
    bench::banner("Figure 7: Parallelism Profiles", "Figure 7");

    auto &suite = workloads::WorkloadSuite::instance();
    for (const auto &w : suite.all()) {
        core::AnalysisConfig cfg =
            core::AnalysisConfig::dataflowConservative();
        core::AnalysisResult res = bench::analyzeWorkload(w, cfg);

        std::printf("---- %s parallelism profile ----\n", w.name.c_str());
        std::printf("critical path %llu levels, available parallelism "
                    "%.2f, peak %.1f ops/level\n",
                    static_cast<unsigned long long>(res.criticalPathLength),
                    res.availableParallelism,
                    res.profile.peakOpsPerLevel());
        core::printProfilePlot(std::cout, res, 24, 56);
        core::printDistributions(std::cout, res);
        std::printf("\n");
    }

    std::printf(
        "Shape notes from the paper: parallelism is bursty (spikes far "
        "above the mean);\nxlisp's profile is flat and low; matrix300 and "
        "tomcatv show enormous plateaus\n(tens of thousands of ops per "
        "level at full scale).\n");
    return 0;
}
