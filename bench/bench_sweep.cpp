// bench_sweep — throughput benchmark for trace-major fused sweeps.
//
// A (trace × config) sweep's cost model changed three times: fused
// grouping made a group of N configs pay one pass over the shared trace
// instead of N, the shared decode pool changed what a streamed trace
// costs — `.ptrc` files are mmapped and each 64K block is decoded once
// across every consumer — and split-and-patch sharding lets a single
// (trace, config) cell split at arbitrary boundaries across threads and
// patch the exact solo result for EVERY config. This harness measures all
// of it on one trace: the same 8-config window × renaming grid is run
// solo (--group=1), mid-fused (--group=2), and fully fused (--group=0,
// auto) over three sources — a captured in-memory trace, a streamed
// `.ptrz` (private decoder per pass, the decoder-cap scheduler's
// territory), and a streamed pooled `.ptrc` — at 1 and 8 worker threads;
// then a single-config cell is run at --shard={1,2,4,8} over both the
// captured source (buffer split-and-patch) and the pooled stream (block
// split-and-patch). Every run's JSON document (timing off) is compared
// per source/grid slot — the matrix is only meaningful because every
// variant produces byte-identical analysis, every sharded point included.
//
// A final explore-vs-grid leg runs the adaptive explorer (--explore)
// against the full grid on a plateau-heavy window × rename axis: the explorer
// must reproduce the exact full-grid Pareto frontier (checked cell-for-
// cell with engine::verifyExploreAgainstGrid) while executing a fraction
// of the cells; the fraction and both wall times go into the summary and
// the frontier identity is asserted like identical_json.
//
// Results are written as `BENCH_sweep.json` — a stable, timestamped schema
// (`paragraph-bench-sweep-v4`) meant to be re-run and diffed across
// revisions so the perf trajectory of the sweep engine is tracked in-repo.
// The shard-scaling summary is reported, never asserted: on a 1-core
// runner the sharded legs cannot beat solo, and the numbers say so.
//
// Usage:
//   bench_sweep [options]
//     --input=NAME     workload captured as the benchmark trace
//                      (default: xlisp)
//     --max=N          instructions per cell / trace records (default:
//                      1,000,000)
//     --repeats=N      timed repetitions, best-of (default: 2)
//     --jobs=N         threaded leg's worker count (default: 8); the
//                      shard-scaling leg always runs shard={1,2,4,8}
//     --small          use the workload's reduced test input
//     --json           print the JSON document to stdout (suppresses table)
//     --out=FILE       also write the JSON to FILE
//                      (default: BENCH_sweep.json; --out= disables)
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/paragraph.hpp"
#include "engine/explorer.hpp"
#include "engine/sweep.hpp"
#include "engine/sweep_args.hpp"
#include "engine/sweep_json.hpp"
#include "engine/trace_repository.hpp"
#include "support/ascii_table.hpp"
#include "support/string_utils.hpp"
#include "trace/buffer.hpp"
#include "trace/compressed_io.hpp"
#include "trace/file_io.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;

namespace {

struct Options
{
    std::string input = "xlisp";
    uint64_t maxInstructions = 1000000;
    unsigned repeats = 2;
    unsigned jobs = 8;
    bool small = false;
    bool jsonToStdout = false;
    std::string outPath = "BENCH_sweep.json";
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: bench_sweep [--input=NAME] [--max=N] [--repeats=N] "
                 "[--jobs=N]\n"
                 "                   [--small] [--json] [--out=FILE]\n");
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        int64_t n = 0;
        if (startsWith(arg, "--input=")) {
            opt.input = arg.substr(8);
            if (opt.input.empty())
                usage();
        } else if (startsWith(arg, "--max=") && parseInt(arg.substr(6), n) &&
                   n > 0) {
            opt.maxInstructions = static_cast<uint64_t>(n);
        } else if (startsWith(arg, "--repeats=") &&
                   parseInt(arg.substr(10), n) && n > 0) {
            opt.repeats = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--jobs=") &&
                   parseInt(arg.substr(7), n) && n > 0) {
            opt.jobs = static_cast<unsigned>(n);
        } else if (arg == "--small") {
            opt.small = true;
        } else if (arg == "--json") {
            opt.jsonToStdout = true;
        } else if (startsWith(arg, "--out=")) {
            opt.outPath = arg.substr(6);
        } else {
            std::fprintf(stderr, "bench_sweep: bad argument '%s'\n",
                         arg.c_str());
            usage();
        }
    }
    return opt;
}

/** The acceptance grid: 8 configs = windows {inf,16,64,256} × renaming
 *  {all, none}, every cell capped at max_instructions. */
std::vector<core::AnalysisConfig>
makeConfigs(uint64_t max_instructions)
{
    std::vector<core::AnalysisConfig> configs;
    for (uint64_t w : {uint64_t{0}, uint64_t{16}, uint64_t{64},
                       uint64_t{256}}) {
        for (bool rename : {true, false}) {
            core::AnalysisConfig cfg =
                rename ? core::AnalysisConfig::dataflowConservative()
                       : core::AnalysisConfig::noRenaming();
            cfg.windowSize = w;
            cfg.maxInstructions = max_instructions;
            configs.push_back(cfg);
        }
    }
    return configs;
}

/** One timed matrix point: a whole sweep of the grid. */
struct Row
{
    std::string source; ///< "capture", "stream" (.ptrz) or "pooled" (.ptrc)
    unsigned jobs = 0;
    unsigned group = 0; ///< 0 = auto
    unsigned shard = 1; ///< split-and-patch segments per (trace, config) cell
    size_t cells = 0;
    uint64_t instructions = 0;
    double seconds = 0.0;
    double cellsPerSec = 0.0;
    double minstrPerSec = 0.0;
};

Row
measure(const std::string &path, const std::string &source, bool stream,
        unsigned jobs, unsigned group, unsigned shard,
        const std::vector<core::AnalysisConfig> &configs,
        const Options &opt, std::string &identityJson, bool &identical)
{
    engine::TraceRepository::Options repoOpt;
    repoOpt.maxRecords = opt.maxInstructions;
    repoOpt.streamFiles = stream;
    engine::TraceRepository repo(repoOpt);
    if (!stream)
        repo.get(path); // captured legs measure analysis, not decode

    engine::SweepEngine::Options engineOpt;
    engineOpt.jobs = jobs;
    engineOpt.groupSize = group;
    engineOpt.shards = shard;
    engine::SweepEngine sweeper(engineOpt);

    engine::SweepJsonOptions noTiming;
    noTiming.timing = false;

    Row row;
    row.source = source;
    row.jobs = jobs;
    row.group = group;
    row.shard = shard;
    row.seconds = std::numeric_limits<double>::infinity();
    for (unsigned r = 0; r < opt.repeats; ++r) {
        engine::SweepResult sweep = sweeper.run(repo, {path}, configs);
        row.cells = sweep.cells.size();
        row.instructions = sweep.totalInstructions;
        if (sweep.wallSeconds < row.seconds)
            row.seconds = sweep.wallSeconds;
        std::string doc = engine::sweepToJson(sweep, noTiming);
        if (identityJson.empty())
            identityJson = std::move(doc);
        else if (doc != identityJson)
            identical = false;
    }
    row.cellsPerSec = row.seconds > 0.0
                          ? static_cast<double>(row.cells) / row.seconds
                          : 0.0;
    row.minstrPerSec =
        row.seconds > 0.0
            ? static_cast<double>(row.instructions) / 1e6 / row.seconds
            : 0.0;
    return row;
}

/** The explore-vs-grid leg's measurements. */
struct ExploreLeg
{
    size_t cellsTotal = 0;
    size_t cellsExecuted = 0;
    size_t cellsPruned = 0;
    double gridSeconds = 0.0;
    double exploreSeconds = 0.0;
    bool identicalFrontier = false;
    std::string diag;
};

/**
 * Adaptive explorer vs the full grid over the captured trace. The axis is
 * deliberately plateau-heavy — a sparse window knee region followed by a
 * deep chain of windows at and beyond the instruction cap (which cannot
 * bind, so their cells equal the unlimited-window cell exactly) is
 * exactly the regime the explorer's knee bisection and dominance pruning
 * are built for — and the frontier identity is verified cell-for-cell
 * against the grid run. FUs stay unlimited: under a finite FU limit the
 * dominance order offers no window bounds (the Graham-anomaly gate in
 * engine/explorer.cpp), so those strata would simply be enumerated.
 */
ExploreLeg
measureExplore(const std::string &path, const Options &opt)
{
    engine::SweepArgs args;
    args.inputs = {path};
    args.windows = {1,         16,        256,       1024,      4096,
                    16384,     65536,     262144,    1u << 20u, 1u << 21u,
                    1u << 22u, 1u << 23u, 1u << 24u, 1u << 25u, 1u << 26u,
                    0};
    args.renames = {"none", "data"};
    args.maxInstructions = opt.maxInstructions;
    engine::SweepAxes axes = engine::defaultedSweepAxes(args);
    std::vector<core::AnalysisConfig> configs;
    std::vector<std::string> labels;
    ExploreLeg leg;
    if (!engine::buildSweepConfigAxis(args, configs, labels, leg.diag))
        return leg;

    engine::TraceRepository::Options repoOpt;
    repoOpt.maxRecords = opt.maxInstructions;
    engine::TraceRepository repo(repoOpt);
    repo.get(path);

    engine::SweepEngine::Options engineOpt;
    engineOpt.jobs = opt.jobs;
    engine::SweepEngine sweeper(engineOpt);

    leg.gridSeconds = std::numeric_limits<double>::infinity();
    engine::SweepResult grid;
    for (unsigned r = 0; r < opt.repeats; ++r) {
        engine::SweepResult sweep = sweeper.run(repo, {path}, configs,
                                                labels);
        if (sweep.wallSeconds < leg.gridSeconds)
            leg.gridSeconds = sweep.wallSeconds;
        grid = std::move(sweep); // deterministic: any repeat serves
    }

    engine::Explorer explorer; // exact mode, fixed default seed
    leg.exploreSeconds = std::numeric_limits<double>::infinity();
    engine::ExploreResult explored;
    for (unsigned r = 0; r < opt.repeats; ++r) {
        engine::ExploreResult result = explorer.explore(
            {path}, axes, configs, labels,
            [&](std::vector<engine::SweepJob> jobs) {
                return sweeper.runJobs(repo, std::move(jobs)).cells;
            });
        if (result.wallSeconds < leg.exploreSeconds)
            leg.exploreSeconds = result.wallSeconds;
        explored = std::move(result);
    }

    leg.cellsTotal = explored.cellsTotal;
    leg.cellsExecuted = explored.cellsExecuted;
    leg.cellsPruned = explored.cellsPruned;
    engine::SweepJsonOptions noTiming;
    noTiming.timing = false;
    leg.identicalFrontier =
        engine::verifyExploreAgainstGrid(explored, grid, noTiming, leg.diag);
    return leg;
}

std::string
utcTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    return strFormat("%04d-%02d-%02dT%02d:%02d:%02dZ", tm.tm_year + 1900,
                     tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                     tm.tm_sec);
}

/** The matrix row for (source, jobs, group) at shard=1. */
const Row *
findRow(const std::vector<Row> &rows, const char *source, unsigned jobs,
        unsigned group)
{
    for (const Row &row : rows) {
        if (row.source == source && row.jobs == jobs &&
            row.group == group && row.shard == 1)
            return &row;
    }
    return nullptr;
}

/** The scaling-leg row for (source, shard): single config, jobs=1,
 *  group=1. */
const Row *
findShardRow(const std::vector<Row> &shardRows, const char *source,
             unsigned shard)
{
    for (const Row &row : shardRows) {
        if (row.source == source && row.shard == shard)
            return &row;
    }
    return nullptr;
}

/** BENCH_sweep.json, schema paragraph-bench-sweep-v4. */
void
writeJson(std::ostream &os, const Options &opt, size_t configs,
          const std::vector<Row> &rows, const std::vector<Row> &shardRows,
          unsigned maxShard, bool identical, const ExploreLeg &explore)
{
    os << "{\n"
       << "  \"schema\": \"paragraph-bench-sweep-v4\",\n"
       << "  \"timestamp\": " << engine::jsonString(utcTimestamp()) << ",\n"
       << "  \"input\": " << engine::jsonString(opt.input) << ",\n"
       << "  \"configs\": " << configs << ",\n"
       << "  \"max_instructions\": " << opt.maxInstructions << ",\n"
       << "  \"repeats\": " << opt.repeats << ",\n"
       << "  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        os << "    {\"source\": " << engine::jsonString(row.source)
           << ", \"jobs\": " << row.jobs << ", \"group\": " << row.group
           << ", \"shard\": " << row.shard
           << ", \"cells\": " << row.cells
           << ", \"instructions\": " << row.instructions
           << ", \"seconds\": " << engine::jsonDouble(row.seconds)
           << ", \"cells_per_sec\": " << engine::jsonDouble(row.cellsPerSec)
           << ", \"minstr_per_sec\": " << engine::jsonDouble(row.minstrPerSec)
           << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    const Row *solo1 = findRow(rows, "stream", 1, 1);
    const Row *fused1 = findRow(rows, "stream", 1, 0);
    const Row *soloN = findRow(rows, "stream", opt.jobs, 1);
    const Row *fusedN = findRow(rows, "stream", opt.jobs, 0);
    auto speedup = [](const Row *solo, const Row *fused) {
        return solo && fused && solo->minstrPerSec > 0.0
                   ? fused->minstrPerSec / solo->minstrPerSec
                   : 0.0;
    };
    const Row *pooledShard1 = findShardRow(shardRows, "pooled", 1);
    const Row *pooledShardN = findShardRow(shardRows, "pooled", maxShard);
    const Row *captureShard1 = findShardRow(shardRows, "capture", 1);
    const Row *captureShardN = findShardRow(shardRows, "capture", maxShard);
    double shardSpeedup = speedup(pooledShard1, pooledShardN);
    double captureShardSpeedup = speedup(captureShard1, captureShardN);
    os << "  ],\n"
       << "  \"summary\": {\n"
       << "    \"jobs1_solo_minstr_per_sec\": "
       << engine::jsonDouble(solo1 ? solo1->minstrPerSec : 0.0) << ",\n"
       << "    \"jobs1_fused_minstr_per_sec\": "
       << engine::jsonDouble(fused1 ? fused1->minstrPerSec : 0.0) << ",\n"
       << "    \"jobs1_fused_speedup\": "
       << engine::jsonDouble(speedup(solo1, fused1)) << ",\n"
       << "    \"jobs" << opt.jobs << "_solo_minstr_per_sec\": "
       << engine::jsonDouble(soloN ? soloN->minstrPerSec : 0.0) << ",\n"
       << "    \"jobs" << opt.jobs << "_fused_minstr_per_sec\": "
       << engine::jsonDouble(fusedN ? fusedN->minstrPerSec : 0.0) << ",\n"
       << "    \"jobs" << opt.jobs << "_fused_speedup\": "
       << engine::jsonDouble(speedup(soloN, fusedN)) << ",\n"
       // Single-trace scaling: ONE (trace, config) cell at
       // --shard={1,2,4,...} over the pooled stream (block
       // split-and-patch) and the captured buffer. The headline pair is
       // the pooled leg at shard=1 vs shard=max; efficiency is speedup /
       // shard_threads — machine-dependent, reported honestly (a 1-core
       // runner will show ~1/N), never asserted.
       << "    \"shard_threads\": " << maxShard << ",\n"
       << "    \"shard1_minstr_per_sec\": "
       << engine::jsonDouble(pooledShard1 ? pooledShard1->minstrPerSec : 0.0)
       << ",\n"
       << "    \"shardn_minstr_per_sec\": "
       << engine::jsonDouble(pooledShardN ? pooledShardN->minstrPerSec : 0.0)
       << ",\n"
       << "    \"shard_speedup\": " << engine::jsonDouble(shardSpeedup)
       << ",\n"
       << "    \"shard_scaling_efficiency\": "
       << engine::jsonDouble(maxShard > 0 ? shardSpeedup / maxShard : 0.0)
       << ",\n"
       << "    \"capture_shard_speedup\": "
       << engine::jsonDouble(captureShardSpeedup) << ",\n"
       // Explore-vs-grid: the fraction of cells the explorer had to run
       // is deterministic (seeded), so it IS asserted downstream; the
       // wall-time speedup is machine noise and only reported.
       << "    \"explore_cells_total\": " << explore.cellsTotal << ",\n"
       << "    \"explore_cells_executed\": " << explore.cellsExecuted
       << ",\n"
       << "    \"explore_cells_pruned\": " << explore.cellsPruned << ",\n"
       << "    \"explore_fraction_executed\": "
       << engine::jsonDouble(
              explore.cellsTotal
                  ? static_cast<double>(explore.cellsExecuted) /
                        static_cast<double>(explore.cellsTotal)
                  : 0.0)
       << ",\n"
       << "    \"explore_grid_seconds\": "
       << engine::jsonDouble(explore.gridSeconds) << ",\n"
       << "    \"explore_seconds\": "
       << engine::jsonDouble(explore.exploreSeconds) << ",\n"
       << "    \"explore_speedup\": "
       << engine::jsonDouble(explore.exploreSeconds > 0.0
                                 ? explore.gridSeconds /
                                       explore.exploreSeconds
                                 : 0.0)
       << ",\n"
       << "    \"identical_frontier\": "
       << (explore.identicalFrontier ? "true" : "false") << ",\n"
       << "    \"identical_json\": " << (identical ? "true" : "false")
       << "\n"
       << "  }\n"
       << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    std::vector<core::AnalysisConfig> configs =
        makeConfigs(opt.maxInstructions);

    // Capture the workload once and persist it both as a `.ptrz`
    // (compressed: private decoder per pass) and a `.ptrc` (raw: mmapped
    // into the shared decode pool), so every leg sweeps the very same
    // records.
    namespace fs = std::filesystem;
    std::string zpath =
        (fs::temp_directory_path() /
         strFormat("bench_sweep_%llu.ptrz",
                   static_cast<unsigned long long>(opt.maxInstructions)))
            .string();
    std::string cpath =
        (fs::temp_directory_path() /
         strFormat("bench_sweep_%llu.ptrc",
                   static_cast<unsigned long long>(opt.maxInstructions)))
            .string();
    {
        auto &suite = workloads::WorkloadSuite::instance();
        const workloads::Workload &w = suite.find(opt.input);
        auto src = suite.makeSource(w, opt.small ? workloads::Scale::Small
                                                 : workloads::Scale::Full);
        trace::TraceBuffer buffer;
        buffer.capture(*src, opt.maxInstructions);
        {
            trace::CompressedTraceWriter writer(zpath);
            trace::BufferSource replay(buffer, opt.input);
            writer.writeAll(replay);
            writer.close();
        }
        {
            trace::TraceFileWriter writer(cpath);
            trace::BufferSource replay(buffer, opt.input);
            writer.writeAll(replay);
            writer.close();
        }
    }

    // Identity slots: every run over the same (file, grid) must render a
    // byte-identical no-timing document — capture and pooled legs share the
    // `.ptrc` slot, so the pooled decode path is checked against the bulk
    // captured path too. The shard-scaling leg has its own single-config
    // slot shared across both sources and every shard count: sharded ==
    // unsharded is the whole point.
    std::map<std::string, std::string> identity;
    bool identical = true;

    struct Leg
    {
        const char *source;
        const std::string *path;
        bool stream;
    };
    const Leg legs[] = {{"capture", &cpath, false},
                        {"stream", &zpath, true},
                        {"pooled", &cpath, true}};

    std::vector<Row> rows;
    auto report = [&](const Row &row) {
        if (!opt.jsonToStdout) {
            std::fprintf(stderr,
                         "  %-8s jobs=%u group=%-4s shard=%-2u %7.2f "
                         "Minstr/s\n",
                         row.source.c_str(), row.jobs,
                         row.group ? std::to_string(row.group).c_str()
                                   : "auto",
                         row.shard, row.minstrPerSec);
        }
    };
    for (const Leg &leg : legs) {
        std::string &slot = identity[*leg.path + "#grid"];
        for (unsigned jobs : {1u, opt.jobs}) {
            for (unsigned group : {1u, 2u, 0u}) { // solo, mid-fused, auto
                rows.push_back(measure(*leg.path, leg.source, leg.stream,
                                       jobs, group, 1, configs, opt, slot,
                                       identical));
                report(rows.back());
            }
        }
    }

    // The single-trace scaling leg: ONE (trace, config) cell at
    // --shard={1,2,4,8} over the captured buffer and the pooled stream
    // (`.ptrz` cells have no block index, so they cannot shard). Both
    // sources sweep the same records and share one identity slot: every
    // point, sharded or not, must render the same document — byte-exact
    // split-and-patch is the whole point.
    std::vector<core::AnalysisConfig> oneConfig;
    {
        core::AnalysisConfig cfg = core::AnalysisConfig::dataflowConservative();
        cfg.maxInstructions = opt.maxInstructions;
        oneConfig.push_back(cfg);
    }
    constexpr unsigned kShardPoints[] = {1, 2, 4, 8};
    constexpr unsigned kMaxShard =
        kShardPoints[sizeof(kShardPoints) / sizeof(kShardPoints[0]) - 1];
    const Leg shardLegs[] = {{"capture", &cpath, false},
                             {"pooled", &cpath, true}};
    std::vector<Row> shardRows;
    std::string &shardSlot = identity[cpath + "#one"];
    for (const Leg &leg : shardLegs) {
        for (unsigned shard : kShardPoints) {
            shardRows.push_back(measure(*leg.path, leg.source, leg.stream, 1,
                                        1, shard, oneConfig, opt, shardSlot,
                                        identical));
            report(shardRows.back());
        }
    }
    rows.insert(rows.end(), shardRows.begin(), shardRows.end());

    // Explore-vs-grid over the captured trace.
    ExploreLeg explore = measureExplore(cpath, opt);
    if (!opt.jsonToStdout) {
        std::fprintf(stderr,
                     "  explore  %zu/%zu cells (%zu pruned), grid %.3fs "
                     "vs explore %.3fs\n",
                     explore.cellsExecuted, explore.cellsTotal,
                     explore.cellsPruned, explore.gridSeconds,
                     explore.exploreSeconds);
    }
    if (!explore.identicalFrontier && !explore.diag.empty())
        std::fprintf(stderr, "bench_sweep: explore verification: %s\n",
                     explore.diag.c_str());

    fs::remove(zpath);
    fs::remove(cpath);

    if (opt.jsonToStdout) {
        writeJson(std::cout, opt, configs.size(), rows, shardRows, kMaxShard,
                  identical, explore);
    } else {
        AsciiTable table;
        table.addColumn("Source", AsciiTable::Align::Left);
        table.addColumn("Jobs");
        table.addColumn("Group", AsciiTable::Align::Left);
        table.addColumn("Shard");
        table.addColumn("Cells");
        table.addColumn("Cells/s");
        table.addColumn("Minstr/s");
        for (const Row &row : rows) {
            table.beginRow();
            table.cell(row.source);
            table.cell(AsciiTable::withCommas(row.jobs));
            table.cell(row.group ? std::to_string(row.group)
                                 : std::string("auto"));
            table.cell(AsciiTable::withCommas(row.shard));
            table.cell(AsciiTable::withCommas(row.cells));
            table.cell(row.cellsPerSec, 2);
            table.cell(row.minstrPerSec, 2);
        }
        table.print(std::cout);
        const Row *solo1 = findRow(rows, "stream", 1, 1);
        const Row *fused1 = findRow(rows, "stream", 1, 0);
        if (solo1 && fused1 && solo1->minstrPerSec > 0.0) {
            std::printf("\nstream jobs=1 fused speedup: %.2fx   ",
                        fused1->minstrPerSec / solo1->minstrPerSec);
        }
        const Row *pooled1 = findShardRow(shardRows, "pooled", 1);
        const Row *pooledN = findShardRow(shardRows, "pooled", kMaxShard);
        if (pooled1 && pooledN && pooled1->minstrPerSec > 0.0) {
            std::printf("pooled shard=%u speedup: %.2fx   ", kMaxShard,
                        pooledN->minstrPerSec / pooled1->minstrPerSec);
        }
        std::printf("identical json: %s\n", identical ? "yes" : "NO");
        std::printf("explore: %zu/%zu cells, identical frontier: %s\n",
                    explore.cellsExecuted, explore.cellsTotal,
                    explore.identicalFrontier ? "yes" : "NO");
    }

    if (!opt.outPath.empty()) {
        std::ofstream out(opt.outPath);
        if (!out) {
            std::fprintf(stderr, "bench_sweep: cannot write '%s'\n",
                         opt.outPath.c_str());
            return 1;
        }
        writeJson(out, opt, configs.size(), rows, shardRows, kMaxShard,
                  identical, explore);
        if (!opt.jsonToStdout)
            std::printf("wrote %s\n", opt.outPath.c_str());
    }
    return identical && explore.identicalFrontier ? 0 : 1;
}
