// bench_sweep — throughput benchmark for trace-major fused sweeps.
//
// A (trace × config) sweep's cost model changed twice: fused grouping made
// a group of N configs pay one pass over the shared trace instead of N, and
// the shared decode pool + firewall-point sharding changed what a streamed
// trace costs — `.ptrc` files are mmapped and each 64K block is decoded
// once across every consumer, and a single (trace, config) cell can split
// at syscall firewall points across threads and stitch the exact solo
// result. This harness measures all of it on one trace: the same 8-config
// window × renaming grid is run solo (--group=1), mid-fused (--group=2),
// and fully fused (--group=0, auto) over three sources — a captured
// in-memory trace, a streamed `.ptrz` (private decoder per pass, the
// decoder-cap scheduler's territory), and a streamed pooled `.ptrc` — at 1
// and 8 worker threads; then a single-config cell is run unsharded and
// sharded (--shard=8) over the pooled source. Every run's JSON document
// (timing off) is compared per source/grid slot — the matrix is only
// meaningful because every variant produces byte-identical analysis, the
// sharded runs included.
//
// Results are written as `BENCH_sweep.json` — a stable, timestamped schema
// (`paragraph-bench-sweep-v2`) meant to be re-run and diffed across
// revisions so the perf trajectory of the sweep engine is tracked in-repo.
// The shard-scaling summary is reported, never asserted: on a 1-core
// runner the sharded legs cannot beat solo, and the numbers say so.
//
// Usage:
//   bench_sweep [options]
//     --input=NAME     workload captured as the benchmark trace
//                      (default: xlisp)
//     --max=N          instructions per cell / trace records (default:
//                      1,000,000)
//     --repeats=N      timed repetitions, best-of (default: 2)
//     --jobs=N         threaded leg's worker and shard count (default: 8)
//     --small          use the workload's reduced test input
//     --json           print the JSON document to stdout (suppresses table)
//     --out=FILE       also write the JSON to FILE
//                      (default: BENCH_sweep.json; --out= disables)
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/paragraph.hpp"
#include "engine/sweep.hpp"
#include "engine/sweep_json.hpp"
#include "engine/trace_repository.hpp"
#include "support/ascii_table.hpp"
#include "support/string_utils.hpp"
#include "trace/buffer.hpp"
#include "trace/compressed_io.hpp"
#include "trace/file_io.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;

namespace {

struct Options
{
    std::string input = "xlisp";
    uint64_t maxInstructions = 1000000;
    unsigned repeats = 2;
    unsigned jobs = 8;
    bool small = false;
    bool jsonToStdout = false;
    std::string outPath = "BENCH_sweep.json";
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: bench_sweep [--input=NAME] [--max=N] [--repeats=N] "
                 "[--jobs=N]\n"
                 "                   [--small] [--json] [--out=FILE]\n");
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        int64_t n = 0;
        if (startsWith(arg, "--input=")) {
            opt.input = arg.substr(8);
            if (opt.input.empty())
                usage();
        } else if (startsWith(arg, "--max=") && parseInt(arg.substr(6), n) &&
                   n > 0) {
            opt.maxInstructions = static_cast<uint64_t>(n);
        } else if (startsWith(arg, "--repeats=") &&
                   parseInt(arg.substr(10), n) && n > 0) {
            opt.repeats = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--jobs=") &&
                   parseInt(arg.substr(7), n) && n > 0) {
            opt.jobs = static_cast<unsigned>(n);
        } else if (arg == "--small") {
            opt.small = true;
        } else if (arg == "--json") {
            opt.jsonToStdout = true;
        } else if (startsWith(arg, "--out=")) {
            opt.outPath = arg.substr(6);
        } else {
            std::fprintf(stderr, "bench_sweep: bad argument '%s'\n",
                         arg.c_str());
            usage();
        }
    }
    return opt;
}

/** The acceptance grid: 8 configs = windows {inf,16,64,256} × renaming
 *  {all, none}, every cell capped at max_instructions. */
std::vector<core::AnalysisConfig>
makeConfigs(uint64_t max_instructions)
{
    std::vector<core::AnalysisConfig> configs;
    for (uint64_t w : {uint64_t{0}, uint64_t{16}, uint64_t{64},
                       uint64_t{256}}) {
        for (bool rename : {true, false}) {
            core::AnalysisConfig cfg =
                rename ? core::AnalysisConfig::dataflowConservative()
                       : core::AnalysisConfig::noRenaming();
            cfg.windowSize = w;
            cfg.maxInstructions = max_instructions;
            configs.push_back(cfg);
        }
    }
    return configs;
}

/** One timed matrix point: a whole sweep of the grid. */
struct Row
{
    std::string source; ///< "capture", "stream" (.ptrz) or "pooled" (.ptrc)
    unsigned jobs = 0;
    unsigned group = 0; ///< 0 = auto
    unsigned shard = 1; ///< firewall-point segments per solo streamed cell
    size_t cells = 0;
    uint64_t instructions = 0;
    double seconds = 0.0;
    double cellsPerSec = 0.0;
    double minstrPerSec = 0.0;
};

Row
measure(const std::string &path, const std::string &source, bool stream,
        unsigned jobs, unsigned group, unsigned shard,
        const std::vector<core::AnalysisConfig> &configs,
        const Options &opt, std::string &identityJson, bool &identical)
{
    engine::TraceRepository::Options repoOpt;
    repoOpt.maxRecords = opt.maxInstructions;
    repoOpt.streamFiles = stream;
    engine::TraceRepository repo(repoOpt);
    if (!stream)
        repo.get(path); // captured legs measure analysis, not decode

    engine::SweepEngine::Options engineOpt;
    engineOpt.jobs = jobs;
    engineOpt.groupSize = group;
    engineOpt.shards = shard;
    engine::SweepEngine sweeper(engineOpt);

    engine::SweepJsonOptions noTiming;
    noTiming.timing = false;

    Row row;
    row.source = source;
    row.jobs = jobs;
    row.group = group;
    row.shard = shard;
    row.seconds = std::numeric_limits<double>::infinity();
    for (unsigned r = 0; r < opt.repeats; ++r) {
        engine::SweepResult sweep = sweeper.run(repo, {path}, configs);
        row.cells = sweep.cells.size();
        row.instructions = sweep.totalInstructions;
        if (sweep.wallSeconds < row.seconds)
            row.seconds = sweep.wallSeconds;
        std::string doc = engine::sweepToJson(sweep, noTiming);
        if (identityJson.empty())
            identityJson = std::move(doc);
        else if (doc != identityJson)
            identical = false;
    }
    row.cellsPerSec = row.seconds > 0.0
                          ? static_cast<double>(row.cells) / row.seconds
                          : 0.0;
    row.minstrPerSec =
        row.seconds > 0.0
            ? static_cast<double>(row.instructions) / 1e6 / row.seconds
            : 0.0;
    return row;
}

std::string
utcTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    return strFormat("%04d-%02d-%02dT%02d:%02d:%02dZ", tm.tm_year + 1900,
                     tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                     tm.tm_sec);
}

/** The matrix row for (source, jobs, group) at shard=1. */
const Row *
findRow(const std::vector<Row> &rows, const char *source, unsigned jobs,
        unsigned group)
{
    for (const Row &row : rows) {
        if (row.source == source && row.jobs == jobs &&
            row.group == group && row.shard == 1)
            return &row;
    }
    return nullptr;
}

/** BENCH_sweep.json, schema paragraph-bench-sweep-v2. */
void
writeJson(std::ostream &os, const Options &opt, size_t configs,
          const std::vector<Row> &rows, const Row &shard1, const Row &shardN,
          bool identical)
{
    os << "{\n"
       << "  \"schema\": \"paragraph-bench-sweep-v2\",\n"
       << "  \"timestamp\": " << engine::jsonString(utcTimestamp()) << ",\n"
       << "  \"input\": " << engine::jsonString(opt.input) << ",\n"
       << "  \"configs\": " << configs << ",\n"
       << "  \"max_instructions\": " << opt.maxInstructions << ",\n"
       << "  \"repeats\": " << opt.repeats << ",\n"
       << "  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        os << "    {\"source\": " << engine::jsonString(row.source)
           << ", \"jobs\": " << row.jobs << ", \"group\": " << row.group
           << ", \"shard\": " << row.shard
           << ", \"cells\": " << row.cells
           << ", \"instructions\": " << row.instructions
           << ", \"seconds\": " << engine::jsonDouble(row.seconds)
           << ", \"cells_per_sec\": " << engine::jsonDouble(row.cellsPerSec)
           << ", \"minstr_per_sec\": " << engine::jsonDouble(row.minstrPerSec)
           << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    const Row *solo1 = findRow(rows, "stream", 1, 1);
    const Row *fused1 = findRow(rows, "stream", 1, 0);
    const Row *soloN = findRow(rows, "stream", opt.jobs, 1);
    const Row *fusedN = findRow(rows, "stream", opt.jobs, 0);
    auto speedup = [](const Row *solo, const Row *fused) {
        return solo && fused && solo->minstrPerSec > 0.0
                   ? fused->minstrPerSec / solo->minstrPerSec
                   : 0.0;
    };
    double shardSpeedup = shard1.minstrPerSec > 0.0
                              ? shardN.minstrPerSec / shard1.minstrPerSec
                              : 0.0;
    os << "  ],\n"
       << "  \"summary\": {\n"
       << "    \"jobs1_solo_minstr_per_sec\": "
       << engine::jsonDouble(solo1 ? solo1->minstrPerSec : 0.0) << ",\n"
       << "    \"jobs1_fused_minstr_per_sec\": "
       << engine::jsonDouble(fused1 ? fused1->minstrPerSec : 0.0) << ",\n"
       << "    \"jobs1_fused_speedup\": "
       << engine::jsonDouble(speedup(solo1, fused1)) << ",\n"
       << "    \"jobs" << opt.jobs << "_solo_minstr_per_sec\": "
       << engine::jsonDouble(soloN ? soloN->minstrPerSec : 0.0) << ",\n"
       << "    \"jobs" << opt.jobs << "_fused_minstr_per_sec\": "
       << engine::jsonDouble(fusedN ? fusedN->minstrPerSec : 0.0) << ",\n"
       << "    \"jobs" << opt.jobs << "_fused_speedup\": "
       << engine::jsonDouble(speedup(soloN, fusedN)) << ",\n"
       // Single-trace scaling: ONE (trace, config) cell, unsharded vs
       // sharded at --shard=N over the pooled source. Efficiency is
       // speedup / shard_threads — machine-dependent, reported honestly
       // (a 1-core runner will show ~1/N), never asserted.
       << "    \"shard_threads\": " << opt.jobs << ",\n"
       << "    \"shard1_minstr_per_sec\": "
       << engine::jsonDouble(shard1.minstrPerSec) << ",\n"
       << "    \"shardn_minstr_per_sec\": "
       << engine::jsonDouble(shardN.minstrPerSec) << ",\n"
       << "    \"shard_speedup\": " << engine::jsonDouble(shardSpeedup)
       << ",\n"
       << "    \"shard_scaling_efficiency\": "
       << engine::jsonDouble(opt.jobs > 0 ? shardSpeedup / opt.jobs : 0.0)
       << ",\n"
       << "    \"identical_json\": " << (identical ? "true" : "false")
       << "\n"
       << "  }\n"
       << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    std::vector<core::AnalysisConfig> configs =
        makeConfigs(opt.maxInstructions);

    // Capture the workload once and persist it both as a `.ptrz`
    // (compressed: private decoder per pass) and a `.ptrc` (raw: mmapped
    // into the shared decode pool), so every leg sweeps the very same
    // records.
    namespace fs = std::filesystem;
    std::string zpath =
        (fs::temp_directory_path() /
         strFormat("bench_sweep_%llu.ptrz",
                   static_cast<unsigned long long>(opt.maxInstructions)))
            .string();
    std::string cpath =
        (fs::temp_directory_path() /
         strFormat("bench_sweep_%llu.ptrc",
                   static_cast<unsigned long long>(opt.maxInstructions)))
            .string();
    {
        auto &suite = workloads::WorkloadSuite::instance();
        const workloads::Workload &w = suite.find(opt.input);
        auto src = suite.makeSource(w, opt.small ? workloads::Scale::Small
                                                 : workloads::Scale::Full);
        trace::TraceBuffer buffer;
        buffer.capture(*src, opt.maxInstructions);
        {
            trace::CompressedTraceWriter writer(zpath);
            trace::BufferSource replay(buffer, opt.input);
            writer.writeAll(replay);
            writer.close();
        }
        {
            trace::TraceFileWriter writer(cpath);
            trace::BufferSource replay(buffer, opt.input);
            writer.writeAll(replay);
            writer.close();
        }
    }

    // Identity slots: every run over the same (file, grid) must render a
    // byte-identical no-timing document — capture and pooled legs share the
    // `.ptrc` slot, so the pooled decode path is checked against the bulk
    // captured path too. The shard pair has its own single-config slot:
    // sharded == unsharded is the whole point.
    std::map<std::string, std::string> identity;
    bool identical = true;

    struct Leg
    {
        const char *source;
        const std::string *path;
        bool stream;
    };
    const Leg legs[] = {{"capture", &cpath, false},
                        {"stream", &zpath, true},
                        {"pooled", &cpath, true}};

    std::vector<Row> rows;
    auto report = [&](const Row &row) {
        if (!opt.jsonToStdout) {
            std::fprintf(stderr,
                         "  %-8s jobs=%u group=%-4s shard=%-2u %7.2f "
                         "Minstr/s\n",
                         row.source.c_str(), row.jobs,
                         row.group ? std::to_string(row.group).c_str()
                                   : "auto",
                         row.shard, row.minstrPerSec);
        }
    };
    for (const Leg &leg : legs) {
        std::string &slot = identity[*leg.path + "#grid"];
        for (unsigned jobs : {1u, opt.jobs}) {
            for (unsigned group : {1u, 2u, 0u}) { // solo, mid-fused, auto
                rows.push_back(measure(*leg.path, leg.source, leg.stream,
                                       jobs, group, 1, configs, opt, slot,
                                       identical));
                report(rows.back());
            }
        }
    }

    // The single-trace scaling pair: one config, pooled source, group=1,
    // unsharded then sharded across opt.jobs threads.
    std::vector<core::AnalysisConfig> oneConfig;
    {
        core::AnalysisConfig cfg = core::AnalysisConfig::dataflowConservative();
        cfg.maxInstructions = opt.maxInstructions;
        oneConfig.push_back(cfg);
    }
    std::string &shardSlot = identity[cpath + "#one"];
    Row shard1 = measure(cpath, "pooled", true, 1, 1, 1, oneConfig, opt,
                         shardSlot, identical);
    report(shard1);
    Row shardN = measure(cpath, "pooled", true, 1, 1, opt.jobs, oneConfig,
                         opt, shardSlot, identical);
    report(shardN);
    rows.push_back(shard1);
    rows.push_back(shardN);

    fs::remove(zpath);
    fs::remove(cpath);

    if (opt.jsonToStdout) {
        writeJson(std::cout, opt, configs.size(), rows, shard1, shardN,
                  identical);
    } else {
        AsciiTable table;
        table.addColumn("Source", AsciiTable::Align::Left);
        table.addColumn("Jobs");
        table.addColumn("Group", AsciiTable::Align::Left);
        table.addColumn("Shard");
        table.addColumn("Cells");
        table.addColumn("Cells/s");
        table.addColumn("Minstr/s");
        for (const Row &row : rows) {
            table.beginRow();
            table.cell(row.source);
            table.cell(AsciiTable::withCommas(row.jobs));
            table.cell(row.group ? std::to_string(row.group)
                                 : std::string("auto"));
            table.cell(AsciiTable::withCommas(row.shard));
            table.cell(AsciiTable::withCommas(row.cells));
            table.cell(row.cellsPerSec, 2);
            table.cell(row.minstrPerSec, 2);
        }
        table.print(std::cout);
        const Row *solo1 = findRow(rows, "stream", 1, 1);
        const Row *fused1 = findRow(rows, "stream", 1, 0);
        if (solo1 && fused1 && solo1->minstrPerSec > 0.0) {
            std::printf("\nstream jobs=1 fused speedup: %.2fx   ",
                        fused1->minstrPerSec / solo1->minstrPerSec);
        }
        if (shard1.minstrPerSec > 0.0) {
            std::printf("shard=%u speedup: %.2fx   ", opt.jobs,
                        shardN.minstrPerSec / shard1.minstrPerSec);
        }
        std::printf("identical json: %s\n", identical ? "yes" : "NO");
    }

    if (!opt.outPath.empty()) {
        std::ofstream out(opt.outPath);
        if (!out) {
            std::fprintf(stderr, "bench_sweep: cannot write '%s'\n",
                         opt.outPath.c_str());
            return 1;
        }
        writeJson(out, opt, configs.size(), rows, shard1, shardN, identical);
        if (!opt.jsonToStdout)
            std::printf("wrote %s\n", opt.outPath.c_str());
    }
    return identical ? 0 : 1;
}
