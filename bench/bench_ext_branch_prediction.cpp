// Extension: branch prediction vs. exposed parallelism.
//
// The paper's Figure-3 firewall mechanism applied to real predictor models.
// Section 4 claims that "the branch predictors currently available are not
// accurate enough to expose even hundreds of instructions" — this harness
// quantifies that: the dataflow limit (perfect prediction) against a bimodal
// 2-bit predictor, static predictors, and an adversarial lower bound, for
// every workload.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "support/ascii_table.hpp"
#include "support/string_utils.hpp"

using namespace paragraph;

int
main()
{
    bench::banner("Extension: Branch Prediction vs. Available Parallelism",
                  "the control-dependency discussion (Figure 3, Sections "
                  "3.2 and 4)");

    const core::PredictorKind kinds[] = {
        core::PredictorKind::Perfect,
        core::PredictorKind::Bimodal,
        core::PredictorKind::AlwaysTaken,
        core::PredictorKind::NeverTaken,
        core::PredictorKind::AlwaysWrong,
    };

    AsciiTable table;
    table.addColumn("Benchmark", AsciiTable::Align::Left);
    table.addColumn("Cond Branches");
    table.addColumn("Bimodal Acc");
    for (auto kind : kinds)
        table.addColumn(core::predictorKindName(kind));

    auto &suite = workloads::WorkloadSuite::instance();
    for (const auto &w : suite.all()) {
        table.beginRow();
        table.cell(w.name);
        bool first = true;
        std::vector<std::string> cells;
        uint64_t branches = 0;
        double bimodal_acc = 0.0;
        for (auto kind : kinds) {
            core::AnalysisConfig cfg =
                core::AnalysisConfig::dataflowConservative();
            cfg.branchPredictor = kind;
            core::AnalysisResult res = bench::analyzeWorkload(w, cfg);
            cells.push_back(
                AsciiTable::withCommas(res.availableParallelism, 2));
            if (first) {
                branches = res.condBranches;
                first = false;
            }
            if (kind == core::PredictorKind::Bimodal) {
                bimodal_acc =
                    res.condBranches
                        ? 1.0 - static_cast<double>(
                                    res.branchMispredictions) /
                                    static_cast<double>(res.condBranches)
                        : 1.0;
            }
        }
        table.cell(branches);
        table.cell(strFormat("%.1f%%", 100.0 * bimodal_acc));
        for (const auto &c : cells)
            table.cell(c);
    }
    table.print(std::cout);

    std::printf(
        "\nReading the table: 'perfect' is the paper's dataflow limit "
        "(Table 3). A realistic\nbimodal predictor already collapses the "
        "limit by one to three orders of magnitude\nfor the "
        "high-parallelism codes, exactly the paper's argument that "
        "conventional\nsuperscalars cannot exploit large instruction "
        "windows through prediction alone.\n");
    return 0;
}
