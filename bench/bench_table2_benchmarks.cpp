// Table 2: SPEC Benchmarks Analyzed.
//
// Runs every workload analog end to end and prints the benchmark inventory:
// source language, type, inputs, and instruction counts — the analog of the
// paper's Table 2 (where traces ran to 100M instructions; this repository's
// laptop-scale analogs run one to tens of millions).
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "support/ascii_table.hpp"
#include "support/string_utils.hpp"
#include "trace/stats.hpp"

using namespace paragraph;

int
main()
{
    bench::banner("Table 2: SPEC Benchmark Analogs", "Table 2");

    AsciiTable table;
    table.addColumn("Benchmark", AsciiTable::Align::Left);
    table.addColumn("Source Language", AsciiTable::Align::Left);
    table.addColumn("Type", AsciiTable::Align::Left);
    table.addColumn("Input", AsciiTable::Align::Left);
    table.addColumn("Instructions In Trace");
    table.addColumn("Instructions Analyzed");
    table.addColumn("Instr/SysCall");

    auto &suite = workloads::WorkloadSuite::instance();
    for (const auto &w : suite.all()) {
        auto src = suite.makeSource(w, workloads::Scale::Full);
        trace::TraceStats stats = trace::TraceStats::collect(*src);
        std::string input;
        for (size_t i = 0; i < w.input.size(); ++i) {
            input += (i ? " " : "") + std::to_string(w.input[i]);
        }
        table.beginRow();
        table.cell(w.name);
        table.cell(w.language);
        table.cell(w.benchType);
        table.cell(input);
        table.cell(stats.totalInstructions);
        table.cell(stats.totalInstructions); // analyzed in full
        if (stats.sysCalls) {
            table.cell(stats.instructionsPerSysCall(), 0);
        } else {
            table.cell(std::string("-"));
        }
    }
    table.print(std::cout);

    std::printf("\nWorkload descriptions:\n");
    for (const auto &w : suite.all())
        std::printf("  %-10s %s\n", w.name.c_str(), w.description.c_str());
    std::printf("\nPaper context: the original table lists the proprietary "
                "SPEC89 binaries with\ntraces of up to 100,000,000 "
                "instructions (cc1 and espresso run to completion).\n");
    return 0;
}
