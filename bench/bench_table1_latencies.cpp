// Table 1: Instruction Class Operation Times.
//
// Prints the latency model every analysis in this repository uses — the
// number of DDG levels an operation spans before its value is available.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "isa/op_class.hpp"
#include "support/ascii_table.hpp"

using namespace paragraph;

int
main()
{
    bench::banner("Table 1: Instruction Class Operation Times", "Table 1");

    AsciiTable table;
    table.addColumn("Operation Class", AsciiTable::Align::Left);
    table.addColumn("Steps");
    for (size_t i = 0; i < isa::numOpClasses; ++i) {
        auto cls = static_cast<isa::OpClass>(i);
        if (cls == isa::OpClass::Control)
            continue; // control instructions are not placed in the DDG
        table.beginRow();
        table.cell(std::string(isa::opClassName(cls)));
        table.cell(static_cast<uint64_t>(isa::opLatency(cls)));
    }
    table.print(std::cout);
    std::printf("\nPaper values: Integer ALU 1, Integer Multiply 6, Integer "
                "Division 12,\nFP Add/Sub 6, FP Multiply 6, FP Division 12, "
                "Load/Store 1, System Calls 1.\n");
    return 0;
}
