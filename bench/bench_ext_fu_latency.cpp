// Extension: resource (functional-unit) and latency sensitivity.
//
// Figure 4's resource-dependency mechanism swept at benchmark scale: how the
// available parallelism saturates as generic functional units are added, and
// how the latency model itself (paper Table 1 vs. unit latencies) shifts the
// measured parallelism — two of the "various constraints" knobs the prior
// limit studies of Section 3.1 turned.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "support/ascii_table.hpp"

using namespace paragraph;

namespace {

// FU sweeps re-analyze the trace once per point; cap the trace so the
// whole harness stays under a minute.
constexpr uint64_t instructionCap = 100000;

core::AnalysisResult
runCapped(const workloads::Workload &w, core::AnalysisConfig cfg)
{
    cfg.maxInstructions = instructionCap;
    return bench::analyzeWorkload(w, cfg);
}

} // namespace

int
main()
{
    bench::banner("Extension: Functional-Unit and Latency Sensitivity",
                  "the resource-dependency mechanism of Figure 4");

    const uint32_t fu_counts[] = {2, 4, 8, 16, 64};
    const char *subjects[] = {"xlisp", "cc1", "espresso", "fpppp"};

    AsciiTable table;
    table.addColumn("Benchmark", AsciiTable::Align::Left);
    for (uint32_t n : fu_counts)
        table.addColumn(AsciiTable::withCommas(uint64_t{n}) + " FUs");
    table.addColumn("Unlimited");

    auto &suite = workloads::WorkloadSuite::instance();
    for (const char *name : subjects) {
        const auto &w = suite.find(name);
        table.beginRow();
        table.cell(std::string(name));
        for (uint32_t n : fu_counts) {
            core::AnalysisConfig cfg =
                core::AnalysisConfig::dataflowConservative();
            cfg.totalFuLimit = n;
            table.cell(runCapped(w, cfg).availableParallelism, 2);
        }
        table.cell(runCapped(w,
                             core::AnalysisConfig::dataflowConservative())
                       .availableParallelism,
                   2);
    }
    table.print(std::cout);
    std::printf(
        "\n(Non-pipelined units: an operation holds a unit for its full "
        "latency, so k units\ncap the parallelism well below k for "
        "long-latency FP codes. Traces capped at %s\ninstructions.)\n\n",
        AsciiTable::withCommas(instructionCap).c_str());

    // Latency-model sensitivity: Table 1 vs unit latencies.
    AsciiTable lat;
    lat.addColumn("Benchmark", AsciiTable::Align::Left);
    lat.addColumn("Table 1 Latencies");
    lat.addColumn("Unit Latencies");
    lat.addColumn("Ratio");
    for (const auto &w : suite.all()) {
        core::AnalysisConfig table1 =
            core::AnalysisConfig::dataflowConservative();
        core::AnalysisConfig unit = table1;
        unit.latency.fill(1);
        double a = runCapped(w, table1).availableParallelism;
        double b = runCapped(w, unit).availableParallelism;
        lat.beginRow();
        lat.cell(w.name);
        lat.cell(a, 2);
        lat.cell(b, 2);
        lat.cell(b > 0 ? a / b : 0.0, 2);
    }
    lat.print(std::cout);
    std::printf(
        "\nTable 1's multi-cycle operations stretch the recurrence-bound "
        "codes' critical paths\n(nasker and spice2g6 drop to ~0.4x of "
        "their unit-latency parallelism) while leaving\nthe integer codes "
        "almost untouched — which is why the paper pins its latency "
        "model\nexplicitly in Table 1.\n");
    return 0;
}
