/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 */

#ifndef PARAGRAPH_BENCH_COMMON_HPP
#define PARAGRAPH_BENCH_COMMON_HPP

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/paragraph.hpp"
#include "workloads/workload.hpp"

namespace paragraph {
namespace bench {

/** Run one full-scale analysis of @p w under @p cfg. */
core::AnalysisResult
analyzeWorkload(const workloads::Workload &w, const core::AnalysisConfig &cfg)
{
    auto src = workloads::WorkloadSuite::instance().makeSource(
        w, workloads::Scale::Full);
    core::Paragraph engine(cfg);
    return engine.analyze(*src);
}

/** Print the standard harness banner. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s\n", what);
    std::printf("Reproduces %s of Austin & Sohi, \"Dynamic Dependency "
                "Analysis of Ordinary\nPrograms\", ISCA 1992.\n",
                paper_ref);
    std::printf("==========================================================="
                "=====================\n\n");
}

} // namespace bench
} // namespace paragraph

#endif
