// Figure 8: Window Size vs. Parallelism.
//
// Percent of total available parallelism exposed as a function of the
// instruction-window size (both axes logarithmic in the paper). Each data
// point is a full re-analysis of the trace at that window size, exactly as
// in the paper ("Each point in the graph represents a full DDG extraction
// and analysis ... and requires approximately 10 hours on a DECstation
// 3100" — here each point takes well under a second).
//
// The sweep runs on the parallel sweep engine: each benchmark's trace is
// simulated once into a shared immutable capture (engine::TraceRepository)
// and all window sizes are analyzed concurrently across a worker pool
// (engine::SweepEngine) — the paper paid ~10 hours per point for the same
// grid, serially.
//
// Traces are capped at 2,000,000 instructions per point so the whole sweep
// stays laptop-scale; the 100% reference is the unlimited-window analysis of
// the same capped trace.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "engine/sweep.hpp"
#include "support/ascii_table.hpp"
#include "support/string_utils.hpp"

using namespace paragraph;

namespace {

constexpr uint64_t instructionCap = 2000000;

const uint64_t windowSizes[] = {1,    4,    16,    64,    256,
                                1024, 4096, 16384, 65536};

} // namespace

int
main()
{
    bench::banner("Figure 8: Window Size vs. Parallelism", "Figure 8");

    AsciiTable table;
    table.addColumn("Benchmark", AsciiTable::Align::Left);
    for (uint64_t w : windowSizes)
        table.addColumn("W=" + AsciiTable::withCommas(w));
    table.addColumn("Total Par");

    // One grid per benchmark: every window size plus the unlimited
    // reference, all replaying one shared capture across the worker pool.
    std::vector<core::AnalysisConfig> configs;
    for (uint64_t w : windowSizes) {
        core::AnalysisConfig cfg = core::AnalysisConfig::windowed(w);
        cfg.maxInstructions = instructionCap;
        configs.push_back(cfg);
    }
    core::AnalysisConfig ref_cfg =
        core::AnalysisConfig::dataflowConservative();
    ref_cfg.maxInstructions = instructionCap;
    configs.push_back(ref_cfg);

    engine::TraceRepository repo(engine::TraceRepository::Options{
        workloads::Scale::Full, instructionCap});
    engine::SweepEngine sweeper;

    auto &suite = workloads::WorkloadSuite::instance();
    for (const auto &wl : suite.all()) {
        engine::SweepResult sweep = sweeper.run(repo, {wl.name}, configs);
        double total = sweep.cells.back().result.availableParallelism;

        table.beginRow();
        table.cell(wl.name);
        for (size_t i = 0; i + 1 < sweep.cells.size(); ++i) {
            table.cell(strFormat(
                "%.2f%%",
                100.0 * sweep.cells[i].result.availableParallelism /
                    total));
        }
        table.cell(total, 2);
        repo.release(wl.name); // captures are per-benchmark; bound memory
    }
    table.print(std::cout);

    std::printf(
        "\n(Each cell: percent of the unlimited-window available "
        "parallelism exposed at that\nwindow size.)\n\n"
        "Paper shape checks: ~100%% needs windows of 100,000+ instructions "
        "for the low-\nparallelism codes and is still not reached at 1M "
        "for matrix300 (3.8%% at W=1M in\nthe paper); yet *every* "
        "benchmark reaches modest parallelism (roughly 7-52 ops\nper "
        "cycle) by W=100, \"certainly enough to fuel the next several "
        "generations of\nsuperscalar processors\".\n\n");

    // The absolute ops/cycle at a small window, the paper's second claim.
    AsciiTable small;
    small.addColumn("Benchmark", AsciiTable::Align::Left);
    small.addColumn("Ops/cycle at W=64");
    small.addColumn("Ops/cycle at W=256");
    std::vector<core::AnalysisConfig> smallConfigs;
    for (uint64_t w : {64u, 256u}) {
        core::AnalysisConfig cfg = core::AnalysisConfig::windowed(w);
        cfg.maxInstructions = instructionCap;
        smallConfigs.push_back(cfg);
    }
    for (const auto &wl : suite.all()) {
        engine::SweepResult sweep =
            sweeper.run(repo, {wl.name}, smallConfigs);
        small.beginRow();
        small.cell(wl.name);
        small.cell(sweep.cells[0].result.availableParallelism, 2);
        small.cell(sweep.cells[1].result.availableParallelism, 2);
        repo.release(wl.name);
    }
    small.print(std::cout);
    return 0;
}
