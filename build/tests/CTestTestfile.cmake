# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/isa_tests[1]_include.cmake")
include("/root/repo/build/tests/trace_tests[1]_include.cmake")
include("/root/repo/build/tests/casm_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/minic_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/interpreter_tests[1]_include.cmake")
include("/root/repo/build/tests/cli_tests[1]_include.cmake")
