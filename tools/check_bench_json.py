#!/usr/bin/env python3
"""Smoke-check bench_hotpath's JSON output against its published schema.

Usage: check_bench_json.py <bench_hotpath binary> [extra bench args...]

Runs the benchmark with --json, parses stdout, and validates the
paragraph-bench-hotpath-v1 document shape: schema id, timestamp, a
non-empty results array with the per-row fields, and the geomean summary.
Exit status is non-zero on any mismatch, so this doubles as a CTest.
"""

import json
import subprocess
import sys

SCHEMA = "paragraph-bench-hotpath-v1"
ROW_KEYS = {"input", "config", "path", "instructions", "seconds",
            "minstr_per_sec"}
SUMMARY_KEYS = {"stream_geomean_minstr_per_sec",
                "bulk_geomean_minstr_per_sec"}


def fail(msg):
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_bench_json.py <bench_hotpath> [args...]")
    cmd = sys.argv[1:] + ["--json"]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE)
    if proc.returncode != 0:
        fail(f"benchmark exited with status {proc.returncode}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail(f"output is not valid JSON: {err}")

    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for key in ("timestamp", "max_instructions", "repeats"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("results must be a non-empty array")
    for i, row in enumerate(results):
        missing = ROW_KEYS - row.keys()
        if missing:
            fail(f"results[{i}] missing keys {sorted(missing)}")
        if row["instructions"] <= 0:
            fail(f"results[{i}] ran zero instructions")
        if row["minstr_per_sec"] <= 0:
            fail(f"results[{i}] reports non-positive throughput")
        if row["path"] not in ("stream", "bulk"):
            fail(f"results[{i}] has unknown path {row['path']!r}")
    summary = doc.get("summary")
    if not isinstance(summary, dict) or SUMMARY_KEYS - summary.keys():
        fail("summary must contain the stream and bulk geomeans")
    for key in SUMMARY_KEYS:
        if summary[key] <= 0:
            fail(f"summary {key} is non-positive")
    print(f"ok: {len(results)} rows, schema {SCHEMA}")


if __name__ == "__main__":
    main()
