#!/usr/bin/env python3
"""Smoke-check the JSON emitted by the repo's tools against their schemas.

Usage:
  check_bench_json.py <bench_hotpath binary> [extra bench args...]
  check_bench_json.py --sweep <paragraph-sweep binary> [sweep args...]
  check_bench_json.py --explore <paragraph-sweep binary> [sweep args...]
  check_bench_json.py --sweep-bench <bench_sweep binary> [bench args...]
  check_bench_json.py --fuzz-report <paragraph-fuzz binary> [fuzz args...]
  check_bench_json.py --serve <paragraph-serve binary>
      [--inputs=A,B] [--windows=16,64] [--max=N]

Default mode runs the benchmark with --json and validates the
paragraph-bench-hotpath-v1 document shape: schema id, timestamp, a
non-empty results array with the per-row fields, and the geomean summary.

--sweep mode runs paragraph-sweep and validates the paragraph-sweep-v3
document: schema id, cell counters that agree with the cells array, an
ok/failed status on every cell, metrics on ok cells, and error/attempts
fields on failed ones.

--explore mode runs paragraph-sweep with --explore and validates the
paragraph-explore-v1 document: schema id, per-trace cell accounting
(executed + pruned == total, executed and pruned config sets disjoint and
jointly exhaustive), the Pareto frontier recomputed independently in
Python from the executed cells' (cost, parallelism) points with the cost
model mirrored from engine/explorer.cpp, and every dominance certificate
re-verified against measured bounding cells: the bound and dominator must
be executed ok cells, their recorded parallelism/cost must match the
cells byte-for-byte (both sides render doubles shortest-round-trip, so
equality is exact), and the dominance inequalities must hold — strictly
somewhere for exact certificates, within knee_tol for approximate ones.

--sweep-bench mode runs bench_sweep with --json and validates the
paragraph-bench-sweep-v4 document: schema id, the source × jobs × group ×
shard matrix rows with positive throughput (sources capture, stream, and
pooled), the solo/fused summary, the single-trace shard-scaling leg
(shard={1,2,4,8} over both the captured buffer and the pooled stream),
the identical_json flag (every run of the matrix produced the same
analysis), and the explore-vs-grid leg: identical_frontier must be true
and the explorer must have executed at most half the grid's cells.

--fuzz-report mode runs paragraph-fuzz with --json and validates the
paragraph-fuzz-v1 summary: schema id, iteration/check counters that are
internally consistent, and — when a violation was found — the failure
object with its stage, property, and reproducer paths.

--serve mode boots a paragraph-serve daemon on an ephemeral socket, runs
the requested grid cold and then warm, and validates the
paragraph-serve-v1 response envelope both times: cell accounting must add
up, the embedded document must itself be a valid paragraph-sweep-v3
document, the warm run must serve every cell from the cache, and its
document must be byte-identical to the cold one. It then validates the
health envelope (durability and load counters, fsync policy) and — by
holding a connection against --max-clients=1 — the busy envelope with
its retry_after_ms hint.
Exit status is non-zero on any mismatch, so all modes double as CTests.
"""

import json
import os
import subprocess
import sys
import tempfile
import time

SCHEMA = "paragraph-bench-hotpath-v1"
ROW_KEYS = {"input", "config", "path", "instructions", "seconds",
            "minstr_per_sec"}
SUMMARY_KEYS = {"stream_geomean_minstr_per_sec",
                "bulk_geomean_minstr_per_sec"}

SWEEP_SCHEMA = "paragraph-sweep-v3"
SWEEP_CELL_KEYS = {"input", "input_index", "config_index", "config",
                   "status"}
SWEEP_OK_KEYS = {"instructions", "critical_path", "available_parallelism"}
SWEEP_FAILED_KEYS = {"error", "attempts"}

FUZZ_SCHEMA = "paragraph-fuzz-v1"
FUZZ_KEYS = {"schema", "iters_requested", "iters_completed",
             "traces_checked", "mutants_checked", "records_analyzed",
             "round_trip_checks", "field_edit_checks", "properties",
             "violations", "failed"}
FUZZ_FAILURE_KEYS = {"iteration", "seed", "stage", "property", "message",
                     "records", "original_records"}

SERVE_SCHEMA = "paragraph-serve-v1"
SERVE_SWEEP_KEYS = {"cells_total", "cells_failed", "cells_cached",
                    "cells_computed", "document"}
SERVE_HEALTH_KEYS = {"pending_cells", "active_sweeps", "workers",
                     "store_entries", "store_disk_bytes", "store_appends",
                     "store_syncs", "store_compactions", "store_sync",
                     "failpoints_active", "failpoint_fires"}
SERVE_BUSY_KEYS = {"error", "retry_after_ms"}

SWEEP_BENCH_SCHEMA = "paragraph-bench-sweep-v4"
SWEEP_BENCH_ROW_KEYS = {"source", "jobs", "group", "shard", "cells",
                        "instructions", "seconds", "cells_per_sec",
                        "minstr_per_sec"}
SWEEP_BENCH_SOURCES = {"capture", "stream", "pooled"}
# The shard-scaling leg runs both split-and-patch paths: the captured
# buffer and the pooled stream (`.ptrz` cells have no block index and
# cannot shard).
SWEEP_BENCH_SHARD_SOURCES = {"capture", "pooled"}
SWEEP_BENCH_SUMMARY_KEYS = {"jobs1_solo_minstr_per_sec",
                            "jobs1_fused_minstr_per_sec",
                            "jobs1_fused_speedup", "shard_threads",
                            "shard1_minstr_per_sec",
                            "shardn_minstr_per_sec", "shard_speedup",
                            "shard_scaling_efficiency",
                            "capture_shard_speedup",
                            "explore_cells_total",
                            "explore_cells_executed",
                            "explore_cells_pruned",
                            "explore_fraction_executed",
                            "explore_grid_seconds", "explore_seconds",
                            "explore_speedup", "identical_frontier",
                            "identical_json"}


def fail(msg):
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_sweep_document(doc):
    """Validate a paragraph-sweep-v3 document dict; returns (cells, failed)."""
    if doc.get("schema") != SWEEP_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {SWEEP_SCHEMA!r}")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        fail("cells must be a non-empty array")
    if doc.get("cells_total") != len(cells):
        fail(f"cells_total is {doc.get('cells_total')}, "
             f"but the document has {len(cells)} cells")
    failed = 0
    for i, cell in enumerate(cells):
        missing = SWEEP_CELL_KEYS - cell.keys()
        if missing:
            fail(f"cells[{i}] missing keys {sorted(missing)}")
        status = cell["status"]
        if status == "ok":
            missing = SWEEP_OK_KEYS - cell.keys()
            if missing:
                fail(f"cells[{i}] is ok but missing {sorted(missing)}")
            if cell["instructions"] <= 0:
                fail(f"cells[{i}] ran zero instructions")
        elif status == "failed":
            failed += 1
            missing = SWEEP_FAILED_KEYS - cell.keys()
            if missing:
                fail(f"cells[{i}] failed but missing {sorted(missing)}")
            if not cell["error"]:
                fail(f"cells[{i}] failed with an empty error")
        else:
            fail(f"cells[{i}] has unknown status {status!r}")
    if doc.get("cells_failed") != failed:
        fail(f"cells_failed is {doc.get('cells_failed')}, "
             f"but {failed} cells report failure")
    return cells, failed


def check_sweep(argv):
    if not argv:
        fail("usage: check_bench_json.py --sweep <paragraph-sweep> [args...]")
    proc = subprocess.run(argv, stdout=subprocess.PIPE)
    if proc.returncode != 0:
        fail(f"paragraph-sweep exited with status {proc.returncode}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail(f"output is not valid JSON: {err}")
    cells, failed = validate_sweep_document(doc)
    print(f"ok: {len(cells)} cells ({failed} failed), schema {SWEEP_SCHEMA}")


EXPLORE_SCHEMA = "paragraph-explore-v1"
EXPLORE_TRACE_KEYS = {"input", "input_index", "cells_total",
                      "cells_executed", "cells_pruned", "cells_failed",
                      "cells", "frontier", "pruned"}
EXPLORE_CERT_KEYS = {"axes", "direction", "bound_config_index",
                     "bound_parallelism", "dominator_config_index",
                     "dominator_cost", "dominator_parallelism",
                     "approximate"}
EXPLORE_AXES = {"window", "rename", "syscalls", "predictor", "fus"}
EXPLORE_PREDICTOR_COST = {"perfect": 8, "bimodal": 2, "always-taken": 1,
                          "never-taken": 1, "always-wrong": 0}


def explore_cost(config):
    """Mirror of engine::exploreCost (explorer.cpp): integer cost so the
    frontier and certificate arithmetic can be re-derived exactly."""
    window = config["window"]
    window_cost = 64 if window == 0 else window.bit_length()
    fus = config["total_fus"]
    fu_cost = 32 if fus == 0 else fus.bit_length()
    rename_cost = 2 * (int(config["rename_regs"]) +
                       int(config["rename_stack"]) +
                       int(config["rename_data"]))
    return (window_cost + fu_cost + rename_cost +
            EXPLORE_PREDICTOR_COST[config["predictor"]])


def explore_frontier(points):
    """Mirror of engine::paretoFrontier over {index: (cost, par)}:
    non-dominated indices sorted by (cost, index)."""
    front = []
    for i, (cost, par) in points.items():
        dominated = any(
            c2 <= cost and p2 >= par and (c2 < cost or p2 > par)
            for j, (c2, p2) in points.items() if j != i)
        if not dominated:
            front.append(i)
    return sorted(front, key=lambda i: (points[i][0], i))


def validate_explore_trace(t, doc, n_configs):
    """Validate one per-trace block; returns (executed, pruned) counts."""
    ti = t["input_index"]
    if t.get("cells_total") != n_configs:
        fail(f"trace {ti}: cells_total is {t.get('cells_total')}, "
             f"expected {n_configs}")
    cells = t["cells"]
    pruned = t["pruned"]
    if t["cells_executed"] != len(cells) or t["cells_pruned"] != len(pruned):
        fail(f"trace {ti}: executed/pruned counters disagree with arrays")
    if len(cells) + len(pruned) != n_configs:
        fail(f"trace {ti}: {len(cells)} executed + {len(pruned)} pruned "
             f"!= {n_configs} configs")

    # Executed cells are full sweep cells; re-derive their cost and
    # parallelism points and the failure count.
    points = {}
    failed = 0
    for i, cell in enumerate(cells):
        missing = SWEEP_CELL_KEYS - cell.keys()
        if missing:
            fail(f"trace {ti} cells[{i}] missing keys {sorted(missing)}")
        j = cell["config_index"]
        if j in points or any(p["config_index"] == j for p in pruned):
            fail(f"trace {ti}: config {j} appears more than once")
        if cell["status"] == "ok":
            points[j] = (explore_cost(cell["config"]),
                         cell["available_parallelism"])
        else:
            failed += 1
            points[j] = None
    if t["cells_failed"] != failed:
        fail(f"trace {ti}: cells_failed is {t['cells_failed']}, "
             f"but {failed} cells report failure")
    ok_points = {j: p for j, p in points.items() if p is not None}

    # The frontier must match an independent Python recomputation.
    front = t["frontier"]
    if [f["config_index"] for f in front] != explore_frontier(ok_points):
        fail(f"trace {ti}: frontier disagrees with the recomputed "
             f"Pareto frontier")
    for f in front:
        cost, par = ok_points[f["config_index"]]
        if f["cost"] != cost or f["parallelism"] != par:
            fail(f"trace {ti}: frontier entry {f['config_index']} "
                 f"disagrees with its executed cell")

    # Every pruned cell carries a certificate that re-verifies against
    # measured bounding cells.
    tol = doc["knee_tol"]
    for p in pruned:
        j = p["config_index"]
        cert = p["certificate"]
        missing = EXPLORE_CERT_KEYS - cert.keys()
        if missing:
            fail(f"trace {ti} pruned {j}: certificate missing "
                 f"{sorted(missing)}")
        if cert["direction"] != "up":
            fail(f"trace {ti} pruned {j}: direction "
                 f"{cert['direction']!r}, expected 'up'")
        bad_axes = set(cert["axes"]) - EXPLORE_AXES
        if bad_axes:
            fail(f"trace {ti} pruned {j}: unknown axes {sorted(bad_axes)}")
        bound = cert["bound_config_index"]
        dom = cert["dominator_config_index"]
        if bound not in ok_points or dom not in ok_points:
            fail(f"trace {ti} pruned {j}: certificate references "
                 f"unmeasured cells ({bound}, {dom})")
        if cert["bound_parallelism"] != ok_points[bound][1]:
            fail(f"trace {ti} pruned {j}: bound_parallelism disagrees "
                 f"with measured cell {bound}")
        if (cert["dominator_cost"] != ok_points[dom][0] or
                cert["dominator_parallelism"] != ok_points[dom][1]):
            fail(f"trace {ti} pruned {j}: dominator fields disagree "
                 f"with measured cell {dom}")
        d_cost, d_par = ok_points[dom]
        b_par = cert["bound_parallelism"]
        if cert["approximate"]:
            if doc["exact"]:
                fail(f"trace {ti} pruned {j}: approximate certificate "
                     f"inside an exact document")
            sound = d_cost < p["cost"] and d_par >= b_par - tol
        else:
            sound = (d_cost <= p["cost"] and d_par >= b_par and
                     (d_cost < p["cost"] or d_par > b_par))
        if not sound:
            fail(f"trace {ti} pruned {j}: dominance does not hold "
                 f"(cost {d_cost} vs {p['cost']}, par {d_par} vs "
                 f"bound {b_par})")
    return len(cells), len(pruned)


def check_explore(argv):
    if not argv:
        fail("usage: check_bench_json.py --explore <paragraph-sweep> "
             "[args...]")
    if "--explore" not in argv:
        argv = argv + ["--explore"]
    proc = subprocess.run(argv, stdout=subprocess.PIPE)
    if proc.returncode != 0:
        fail(f"paragraph-sweep exited with status {proc.returncode}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail(f"output is not valid JSON: {err}")

    if doc.get("schema") != EXPLORE_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {EXPLORE_SCHEMA!r}")
    for key in ("knee_tol", "exact", "inputs", "configs", "cells_total",
                "cells_executed", "cells_pruned", "cells_failed", "rounds",
                "traces"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    if doc["knee_tol"] < 0:
        fail(f"negative knee_tol {doc['knee_tol']}")
    if doc["knee_tol"] == 0 and doc["exact"] is not True:
        fail("knee_tol is 0 but the document is not exact")
    traces = doc["traces"]
    n_configs = doc["configs"]
    if not isinstance(traces, list) or len(traces) != doc["inputs"]:
        fail(f"traces has {len(traces)} entries, inputs says "
             f"{doc['inputs']}")
    if doc["cells_total"] != doc["inputs"] * n_configs:
        fail(f"cells_total is {doc['cells_total']}, expected "
             f"{doc['inputs']} x {n_configs}")

    executed = pruned = failed = 0
    for t in traces:
        missing = EXPLORE_TRACE_KEYS - t.keys()
        if missing:
            fail(f"trace missing keys {sorted(missing)}")
        e, p = validate_explore_trace(t, doc, n_configs)
        executed += e
        pruned += p
        failed += t["cells_failed"]
    if (doc["cells_executed"] != executed or
            doc["cells_pruned"] != pruned or doc["cells_failed"] != failed):
        fail("top-level cell counters disagree with the per-trace sums")
    print(f"ok: {executed}/{doc['cells_total']} cells executed, "
          f"{pruned} pruned with verified certificates, "
          f"{len(traces)} frontiers recomputed, schema {EXPLORE_SCHEMA}")


def serve_round_trip(binary, socket_path, raw_line):
    """One client round trip; returns the parsed response object."""
    proc = subprocess.run(
        [binary, "--client", f"--socket={socket_path}",
         f"--raw={raw_line}", "--quiet"],
        stdout=subprocess.PIPE)
    if proc.returncode != 0:
        fail(f"serve client exited with status {proc.returncode}")
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail(f"serve response is not valid JSON: {err}")


def validate_serve_sweep_response(resp, expected_cells):
    if resp.get("schema") != SERVE_SCHEMA:
        fail(f"response schema is {resp.get('schema')!r}, "
             f"expected {SERVE_SCHEMA!r}")
    if resp.get("status") != "ok":
        fail(f"daemon error: {resp.get('error')!r}")
    if resp.get("op") != "sweep":
        fail(f"response op is {resp.get('op')!r}, expected 'sweep'")
    missing = SERVE_SWEEP_KEYS - resp.keys()
    if missing:
        fail(f"sweep response missing keys {sorted(missing)}")
    total = resp["cells_total"]
    if total != expected_cells:
        fail(f"cells_total is {total}, expected {expected_cells}")
    if resp["cells_cached"] + resp["cells_computed"] + \
            resp["cells_failed"] != total:
        fail("cached + computed + failed does not add up to cells_total")
    if resp["cells_failed"] != 0:
        fail(f"{resp['cells_failed']} cells failed")
    try:
        doc = json.loads(resp["document"])
    except json.JSONDecodeError as err:
        fail(f"embedded document is not valid JSON: {err}")
    cells, _ = validate_sweep_document(doc)
    if len(cells) != expected_cells:
        fail(f"embedded document has {len(cells)} cells, "
             f"expected {expected_cells}")


def validate_serve_health_response(resp, expected_entries, expected_sync):
    if resp.get("schema") != SERVE_SCHEMA:
        fail(f"health schema is {resp.get('schema')!r}")
    if resp.get("status") != "ok" or resp.get("op") != "health":
        fail(f"health probe failed: {resp!r}")
    missing = SERVE_HEALTH_KEYS - resp.keys()
    if missing:
        fail(f"health response missing keys {sorted(missing)}")
    for key in SERVE_HEALTH_KEYS - {"store_sync"}:
        if not isinstance(resp[key], int) or resp[key] < 0:
            fail(f"health field {key} is {resp[key]!r}, "
                 "expected a non-negative integer")
    if resp["store_entries"] != expected_entries:
        fail(f"health reports {resp['store_entries']} store entries, "
             f"expected {expected_entries}")
    if resp["store_sync"] != expected_sync:
        fail(f"health reports store_sync {resp['store_sync']!r}, "
             f"expected {expected_sync!r}")
    if resp["workers"] == 0:
        fail("health reports zero workers")


def raw_unix_round_trip(socket_path, line, hold=None):
    """Send one line over a raw AF_UNIX connection and read one line back.

    The optional held connection (`hold`) stays open across the call so the
    daemon's connection cap can be exercised deterministically.
    """
    import socket as socketlib
    conn = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    conn.settimeout(30)
    conn.connect(socket_path)
    try:
        try:
            conn.sendall(line.encode() + b"\n")
        except BrokenPipeError:
            # A daemon shedding at accept writes its busy line and closes
            # before reading; the response is still queued for us to read.
            pass
        buf = b""
        while b"\n" not in buf:
            chunk = conn.recv(4096)
            if not chunk:
                fail("daemon closed the raw connection mid-response")
            buf += chunk
        return json.loads(buf.split(b"\n", 1)[0])
    finally:
        conn.close()


def validate_serve_busy_response(resp):
    if resp.get("schema") != SERVE_SCHEMA:
        fail(f"busy schema is {resp.get('schema')!r}")
    if resp.get("status") != "busy":
        fail(f"expected a busy response, got {resp!r}")
    missing = SERVE_BUSY_KEYS - resp.keys()
    if missing:
        fail(f"busy response missing keys {sorted(missing)}")
    retry = resp["retry_after_ms"]
    if not isinstance(retry, int) or retry <= 0:
        fail(f"busy retry_after_ms is {retry!r}, expected a positive "
             "integer hint")


def check_serve(argv):
    if not argv:
        fail("usage: check_bench_json.py --serve <paragraph-serve> "
             "[--inputs=A,B] [--windows=16,64] [--max=N]")
    binary = argv[0]
    inputs = ["xlisp"]
    windows = [16, 64]
    max_instructions = 0
    small = False
    for arg in argv[1:]:
        if arg.startswith("--inputs="):
            inputs = [s for s in arg[len("--inputs="):].split(",") if s]
        elif arg.startswith("--windows="):
            windows = [int(s) for s in arg[len("--windows="):].split(",")]
        elif arg.startswith("--max="):
            max_instructions = int(arg[len("--max="):])
        elif arg == "--small":
            small = True
        else:
            fail(f"unknown --serve argument {arg!r}")

    request = {"schema": SERVE_SCHEMA, "op": "sweep", "inputs": inputs,
               "windows": windows}
    if max_instructions:
        request["max"] = max_instructions
    if small:
        request["small"] = True
    raw_line = json.dumps(request)
    expected_cells = len(inputs) * len(windows)

    tmpdir = tempfile.mkdtemp(prefix="para_serve_")
    socket_path = os.path.join(tmpdir, "serve.sock")
    store_path = os.path.join(tmpdir, "store.jsonl")
    daemon_args = [binary, f"--socket={socket_path}",
                   f"--store={store_path}", "--jobs=2", "--quiet",
                   "--store-sync=cell", "--max-clients=1"]
    if small:
        daemon_args.append("--small")
    daemon = subprocess.Popen(daemon_args)
    try:
        for _ in range(1000):
            if os.path.exists(socket_path):
                break
            if daemon.poll() is not None:
                fail(f"daemon exited early with status {daemon.returncode}")
            time.sleep(0.01)
        else:
            fail("daemon never bound its socket")

        cold = serve_round_trip(binary, socket_path, raw_line)
        validate_serve_sweep_response(cold, expected_cells)
        if cold["cells_computed"] != expected_cells:
            fail(f"cold run computed {cold['cells_computed']} cells, "
                 f"expected {expected_cells}")

        warm = serve_round_trip(binary, socket_path, raw_line)
        validate_serve_sweep_response(warm, expected_cells)
        if warm["cells_cached"] != expected_cells:
            fail(f"warm run served {warm['cells_cached']} cells from the "
                 f"cache, expected all {expected_cells}")
        if warm["document"] != cold["document"]:
            fail("warm document differs from the cold one")

        health = serve_round_trip(
            binary, socket_path,
            json.dumps({"schema": SERVE_SCHEMA, "op": "health"}))
        validate_serve_health_response(health, expected_cells, "cell")

        # A connection held open exhausts --max-clients=1; the next
        # client must be shed at accept with a busy envelope.
        import socket as socketlib
        hold = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        hold.settimeout(30)
        hold.connect(socket_path)
        try:
            busy = raw_unix_round_trip(
                socket_path,
                json.dumps({"schema": SERVE_SCHEMA, "op": "ping"}))
            validate_serve_busy_response(busy)
        finally:
            hold.close()

        # The slot frees asynchronously; wait for service to resume.
        for _ in range(100):
            resumed = raw_unix_round_trip(
                socket_path,
                json.dumps({"schema": SERVE_SCHEMA, "op": "ping"}))
            if resumed.get("status") == "ok":
                break
            time.sleep(0.01)
        else:
            fail("daemon never recovered after the held connection closed")

        shutdown = serve_round_trip(
            binary, socket_path,
            json.dumps({"schema": SERVE_SCHEMA, "op": "shutdown"}))
        if shutdown.get("status") != "ok":
            fail("shutdown op was not acknowledged")
        if daemon.wait(timeout=30) != 0:
            fail(f"daemon exited with status {daemon.returncode}")
        daemon = None
    finally:
        if daemon is not None:
            daemon.kill()
            daemon.wait()
        for name in ("serve.sock", "store.jsonl"):
            path = os.path.join(tmpdir, name)
            if os.path.exists(path):
                os.remove(path)
        os.rmdir(tmpdir)
    print(f"ok: {expected_cells} cells cold+warm, warm fully cached, "
          f"health + busy envelopes valid, schema {SERVE_SCHEMA}")


def check_fuzz_report(argv):
    if not argv:
        fail("usage: check_bench_json.py --fuzz-report <paragraph-fuzz> "
             "[args...]")
    proc = subprocess.run(argv + ["--json"], stdout=subprocess.PIPE)
    # 0 = clean run, 1 = violation found; both must emit a valid document.
    if proc.returncode not in (0, 1):
        fail(f"paragraph-fuzz exited with status {proc.returncode}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail(f"output is not valid JSON: {err}")

    if doc.get("schema") != FUZZ_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {FUZZ_SCHEMA!r}")
    missing = FUZZ_KEYS - doc.keys()
    if missing:
        fail(f"missing top-level keys {sorted(missing)}")
    if doc["iters_completed"] > doc["iters_requested"]:
        fail("iters_completed exceeds iters_requested")
    if doc["traces_checked"] <= 0:
        fail("no traces were checked")
    if doc["mutants_checked"] > doc["traces_checked"]:
        fail("more mutants than traces: one mutant per trace at most")
    if doc["records_analyzed"] <= 0:
        fail("no records were analyzed")
    if doc["properties"] < 12:
        fail(f"only {doc['properties']} properties in the catalogue, "
             "expected at least 12")
    failed = doc["failed"]
    if failed != (proc.returncode == 1):
        fail(f"failed={failed} disagrees with exit status "
             f"{proc.returncode}")
    if failed != (doc["violations"] > 0):
        fail(f"failed={failed} but violations={doc['violations']}")
    if not failed and doc["iters_completed"] != doc["iters_requested"]:
        fail("a clean run must complete every requested iteration")
    if failed:
        failure = doc.get("failure")
        if not isinstance(failure, dict):
            fail("failed run without a failure object")
        missing = FUZZ_FAILURE_KEYS - failure.keys()
        if missing:
            fail(f"failure missing keys {sorted(missing)}")
        if not failure["property"] or not failure["stage"]:
            fail("failure must name its property and stage")
        if failure["records"] > failure["original_records"]:
            fail("minimized record count exceeds the original")
    elif "failure" in doc:
        fail("clean run carries a failure object")
    state = "violation found" if failed else "clean"
    print(f"ok: {doc['iters_completed']}/{doc['iters_requested']} "
          f"iterations, {doc['properties']} properties, {state}, "
          f"schema {FUZZ_SCHEMA}")
    sys.exit(proc.returncode)


def check_sweep_bench(argv):
    if not argv:
        fail("usage: check_bench_json.py --sweep-bench <bench_sweep> "
             "[args...]")
    proc = subprocess.run(argv + ["--json"], stdout=subprocess.PIPE)
    if proc.returncode != 0:
        fail(f"bench_sweep exited with status {proc.returncode}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail(f"output is not valid JSON: {err}")

    if doc.get("schema") != SWEEP_BENCH_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, "
             f"expected {SWEEP_BENCH_SCHEMA!r}")
    for key in ("timestamp", "input", "configs", "max_instructions",
                "repeats"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("results must be a non-empty array")
    sources = set()
    shard_points = {}
    for i, row in enumerate(results):
        missing = SWEEP_BENCH_ROW_KEYS - row.keys()
        if missing:
            fail(f"results[{i}] missing keys {sorted(missing)}")
        if row["source"] not in SWEEP_BENCH_SOURCES:
            fail(f"results[{i}] has unknown source {row['source']!r}")
        sources.add(row["source"])
        if row["shard"] <= 0:
            fail(f"results[{i}] has non-positive shard count")
        shard_points.setdefault(row["source"], set()).add(row["shard"])
        if row["cells"] <= 0 or row["instructions"] <= 0:
            fail(f"results[{i}] swept no work")
        if row["minstr_per_sec"] <= 0 or row["cells_per_sec"] <= 0:
            fail(f"results[{i}] reports non-positive throughput")
    if sources != SWEEP_BENCH_SOURCES:
        fail(f"matrix covers sources {sorted(sources)}, "
             f"expected {sorted(SWEEP_BENCH_SOURCES)}")
    for source in sorted(SWEEP_BENCH_SHARD_SOURCES):
        points = shard_points.get(source, set())
        if len(points) < 2 or max(points) <= 1:
            fail(f"source {source!r} has no sharded scaling points "
                 f"(shards seen: {sorted(points)})")
    summary = doc.get("summary")
    if not isinstance(summary, dict) or \
            SWEEP_BENCH_SUMMARY_KEYS - summary.keys():
        fail("summary must contain the solo/fused throughput comparison, "
             "the shard-scaling block, and identical_json")
    if summary["identical_json"] is not True:
        fail("identical_json is not true: the matrix diverged")
    if summary["jobs1_fused_speedup"] <= 0:
        fail("jobs1_fused_speedup is non-positive")
    if summary["shard_threads"] <= 0:
        fail("shard_threads is non-positive")
    # Shard scaling efficiency is reported, not asserted: its magnitude is
    # machine-dependent (on a 1-core runner the sharded legs cannot beat
    # solo), but the measurement must at least exist and be positive.
    if summary["shard1_minstr_per_sec"] <= 0 or \
            summary["shardn_minstr_per_sec"] <= 0:
        fail("shard throughput legs are non-positive")
    if summary["shard_scaling_efficiency"] <= 0:
        fail("shard_scaling_efficiency is non-positive")
    if summary["capture_shard_speedup"] <= 0:
        fail("capture_shard_speedup is non-positive")
    # Explore-vs-grid leg: the frontier identity and the executed-cell
    # fraction are deterministic (seeded exploration over a fixed grid),
    # so both ARE asserted; the wall-time speedup is machine-dependent
    # and only required to exist.
    if summary["identical_frontier"] is not True:
        fail("identical_frontier is not true: the explorer's Pareto "
             "frontier diverged from the full grid's")
    ex_total = summary["explore_cells_total"]
    ex_run = summary["explore_cells_executed"]
    if ex_total <= 0 or ex_run <= 0:
        fail("explore leg ran no cells")
    if ex_run + summary["explore_cells_pruned"] != ex_total:
        fail("explore executed + pruned does not add up to the grid size")
    if ex_run * 2 > ex_total:
        fail(f"explore executed {ex_run}/{ex_total} cells, more than "
             "half the grid — pruning regressed")
    if abs(summary["explore_fraction_executed"] - ex_run / ex_total) > 1e-12:
        fail("explore_fraction_executed disagrees with the cell counts")
    if summary["explore_grid_seconds"] <= 0 or \
            summary["explore_seconds"] <= 0:
        fail("explore timing legs are non-positive")
    print(f"ok: {len(results)} rows, schema {SWEEP_BENCH_SCHEMA}, "
          f"jobs1 fused speedup {summary['jobs1_fused_speedup']:.2f}x, "
          f"pooled shard speedup {summary['shard_speedup']:.2f}x / capture "
          f"{summary['capture_shard_speedup']:.2f}x at "
          f"{summary['shard_threads']} shards, explore {ex_run}/{ex_total} "
          f"cells with an identical frontier")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_bench_json.py [--sweep|--explore|--sweep-bench|"
             "--fuzz-report|--serve] <binary> [args...]")
    if sys.argv[1] == "--sweep":
        check_sweep(sys.argv[2:])
        return
    if sys.argv[1] == "--explore":
        check_explore(sys.argv[2:])
        return
    if sys.argv[1] == "--serve":
        check_serve(sys.argv[2:])
        return
    if sys.argv[1] == "--sweep-bench":
        check_sweep_bench(sys.argv[2:])
        return
    if sys.argv[1] == "--fuzz-report":
        check_fuzz_report(sys.argv[2:])
        return
    cmd = sys.argv[1:] + ["--json"]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE)
    if proc.returncode != 0:
        fail(f"benchmark exited with status {proc.returncode}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail(f"output is not valid JSON: {err}")

    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for key in ("timestamp", "max_instructions", "repeats"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("results must be a non-empty array")
    for i, row in enumerate(results):
        missing = ROW_KEYS - row.keys()
        if missing:
            fail(f"results[{i}] missing keys {sorted(missing)}")
        if row["instructions"] <= 0:
            fail(f"results[{i}] ran zero instructions")
        if row["minstr_per_sec"] <= 0:
            fail(f"results[{i}] reports non-positive throughput")
        if row["path"] not in ("stream", "bulk"):
            fail(f"results[{i}] has unknown path {row['path']!r}")
    summary = doc.get("summary")
    if not isinstance(summary, dict) or SUMMARY_KEYS - summary.keys():
        fail("summary must contain the stream and bulk geomeans")
    for key in SUMMARY_KEYS:
        if summary[key] <= 0:
            fail(f"summary {key} is non-positive")
    print(f"ok: {len(results)} rows, schema {SCHEMA}")


if __name__ == "__main__":
    main()
