#!/usr/bin/env python3
"""Smoke-check the JSON emitted by the repo's tools against their schemas.

Usage:
  check_bench_json.py <bench_hotpath binary> [extra bench args...]
  check_bench_json.py --sweep <paragraph-sweep binary> [sweep args...]

Default mode runs the benchmark with --json and validates the
paragraph-bench-hotpath-v1 document shape: schema id, timestamp, a
non-empty results array with the per-row fields, and the geomean summary.

--sweep mode runs paragraph-sweep and validates the paragraph-sweep-v2
document: schema id, cell counters that agree with the cells array, an
ok/failed status on every cell, metrics on ok cells, and error/attempts
fields on failed ones. Exit status is non-zero on any mismatch, so both
modes double as CTests.
"""

import json
import subprocess
import sys

SCHEMA = "paragraph-bench-hotpath-v1"
ROW_KEYS = {"input", "config", "path", "instructions", "seconds",
            "minstr_per_sec"}
SUMMARY_KEYS = {"stream_geomean_minstr_per_sec",
                "bulk_geomean_minstr_per_sec"}

SWEEP_SCHEMA = "paragraph-sweep-v2"
SWEEP_CELL_KEYS = {"input", "input_index", "config_index", "config",
                   "status"}
SWEEP_OK_KEYS = {"instructions", "critical_path", "available_parallelism"}
SWEEP_FAILED_KEYS = {"error", "attempts"}


def fail(msg):
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def check_sweep(argv):
    if not argv:
        fail("usage: check_bench_json.py --sweep <paragraph-sweep> [args...]")
    proc = subprocess.run(argv, stdout=subprocess.PIPE)
    if proc.returncode != 0:
        fail(f"paragraph-sweep exited with status {proc.returncode}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail(f"output is not valid JSON: {err}")

    if doc.get("schema") != SWEEP_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {SWEEP_SCHEMA!r}")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        fail("cells must be a non-empty array")
    if doc.get("cells_total") != len(cells):
        fail(f"cells_total is {doc.get('cells_total')}, "
             f"but the document has {len(cells)} cells")
    failed = 0
    for i, cell in enumerate(cells):
        missing = SWEEP_CELL_KEYS - cell.keys()
        if missing:
            fail(f"cells[{i}] missing keys {sorted(missing)}")
        status = cell["status"]
        if status == "ok":
            missing = SWEEP_OK_KEYS - cell.keys()
            if missing:
                fail(f"cells[{i}] is ok but missing {sorted(missing)}")
            if cell["instructions"] <= 0:
                fail(f"cells[{i}] ran zero instructions")
        elif status == "failed":
            failed += 1
            missing = SWEEP_FAILED_KEYS - cell.keys()
            if missing:
                fail(f"cells[{i}] failed but missing {sorted(missing)}")
            if not cell["error"]:
                fail(f"cells[{i}] failed with an empty error")
        else:
            fail(f"cells[{i}] has unknown status {status!r}")
    if doc.get("cells_failed") != failed:
        fail(f"cells_failed is {doc.get('cells_failed')}, "
             f"but {failed} cells report failure")
    print(f"ok: {len(cells)} cells ({failed} failed), schema {SWEEP_SCHEMA}")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_bench_json.py [--sweep] <binary> [args...]")
    if sys.argv[1] == "--sweep":
        check_sweep(sys.argv[2:])
        return
    cmd = sys.argv[1:] + ["--json"]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE)
    if proc.returncode != 0:
        fail(f"benchmark exited with status {proc.returncode}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail(f"output is not valid JSON: {err}")

    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for key in ("timestamp", "max_instructions", "repeats"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("results must be a non-empty array")
    for i, row in enumerate(results):
        missing = ROW_KEYS - row.keys()
        if missing:
            fail(f"results[{i}] missing keys {sorted(missing)}")
        if row["instructions"] <= 0:
            fail(f"results[{i}] ran zero instructions")
        if row["minstr_per_sec"] <= 0:
            fail(f"results[{i}] reports non-positive throughput")
        if row["path"] not in ("stream", "bulk"):
            fail(f"results[{i}] has unknown path {row['path']!r}")
    summary = doc.get("summary")
    if not isinstance(summary, dict) or SUMMARY_KEYS - summary.keys():
        fail("summary must contain the stream and bulk geomeans")
    for key in SUMMARY_KEYS:
        if summary[key] <= 0:
            fail(f"summary {key} is non-positive")
    print(f"ok: {len(results)} rows, schema {SCHEMA}")


if __name__ == "__main__":
    main()
