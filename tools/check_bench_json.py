#!/usr/bin/env python3
"""Smoke-check the JSON emitted by the repo's tools against their schemas.

Usage:
  check_bench_json.py <bench_hotpath binary> [extra bench args...]
  check_bench_json.py --sweep <paragraph-sweep binary> [sweep args...]
  check_bench_json.py --sweep-bench <bench_sweep binary> [bench args...]

Default mode runs the benchmark with --json and validates the
paragraph-bench-hotpath-v1 document shape: schema id, timestamp, a
non-empty results array with the per-row fields, and the geomean summary.

--sweep mode runs paragraph-sweep and validates the paragraph-sweep-v2
document: schema id, cell counters that agree with the cells array, an
ok/failed status on every cell, metrics on ok cells, and error/attempts
fields on failed ones.

--sweep-bench mode runs bench_sweep with --json and validates the
paragraph-bench-sweep-v1 document: schema id, the source × jobs × group
matrix rows with positive throughput, the solo/fused summary, and the
identical_json flag (every run of the matrix produced the same analysis).
Exit status is non-zero on any mismatch, so all modes double as CTests.
"""

import json
import subprocess
import sys

SCHEMA = "paragraph-bench-hotpath-v1"
ROW_KEYS = {"input", "config", "path", "instructions", "seconds",
            "minstr_per_sec"}
SUMMARY_KEYS = {"stream_geomean_minstr_per_sec",
                "bulk_geomean_minstr_per_sec"}

SWEEP_SCHEMA = "paragraph-sweep-v2"
SWEEP_CELL_KEYS = {"input", "input_index", "config_index", "config",
                   "status"}
SWEEP_OK_KEYS = {"instructions", "critical_path", "available_parallelism"}
SWEEP_FAILED_KEYS = {"error", "attempts"}

SWEEP_BENCH_SCHEMA = "paragraph-bench-sweep-v1"
SWEEP_BENCH_ROW_KEYS = {"source", "jobs", "group", "cells", "instructions",
                        "seconds", "cells_per_sec", "minstr_per_sec"}
SWEEP_BENCH_SUMMARY_KEYS = {"jobs1_solo_minstr_per_sec",
                            "jobs1_fused_minstr_per_sec",
                            "jobs1_fused_speedup", "identical_json"}


def fail(msg):
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def check_sweep(argv):
    if not argv:
        fail("usage: check_bench_json.py --sweep <paragraph-sweep> [args...]")
    proc = subprocess.run(argv, stdout=subprocess.PIPE)
    if proc.returncode != 0:
        fail(f"paragraph-sweep exited with status {proc.returncode}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail(f"output is not valid JSON: {err}")

    if doc.get("schema") != SWEEP_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {SWEEP_SCHEMA!r}")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        fail("cells must be a non-empty array")
    if doc.get("cells_total") != len(cells):
        fail(f"cells_total is {doc.get('cells_total')}, "
             f"but the document has {len(cells)} cells")
    failed = 0
    for i, cell in enumerate(cells):
        missing = SWEEP_CELL_KEYS - cell.keys()
        if missing:
            fail(f"cells[{i}] missing keys {sorted(missing)}")
        status = cell["status"]
        if status == "ok":
            missing = SWEEP_OK_KEYS - cell.keys()
            if missing:
                fail(f"cells[{i}] is ok but missing {sorted(missing)}")
            if cell["instructions"] <= 0:
                fail(f"cells[{i}] ran zero instructions")
        elif status == "failed":
            failed += 1
            missing = SWEEP_FAILED_KEYS - cell.keys()
            if missing:
                fail(f"cells[{i}] failed but missing {sorted(missing)}")
            if not cell["error"]:
                fail(f"cells[{i}] failed with an empty error")
        else:
            fail(f"cells[{i}] has unknown status {status!r}")
    if doc.get("cells_failed") != failed:
        fail(f"cells_failed is {doc.get('cells_failed')}, "
             f"but {failed} cells report failure")
    print(f"ok: {len(cells)} cells ({failed} failed), schema {SWEEP_SCHEMA}")


def check_sweep_bench(argv):
    if not argv:
        fail("usage: check_bench_json.py --sweep-bench <bench_sweep> "
             "[args...]")
    proc = subprocess.run(argv + ["--json"], stdout=subprocess.PIPE)
    if proc.returncode != 0:
        fail(f"bench_sweep exited with status {proc.returncode}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail(f"output is not valid JSON: {err}")

    if doc.get("schema") != SWEEP_BENCH_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, "
             f"expected {SWEEP_BENCH_SCHEMA!r}")
    for key in ("timestamp", "input", "configs", "max_instructions",
                "repeats"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("results must be a non-empty array")
    sources = set()
    for i, row in enumerate(results):
        missing = SWEEP_BENCH_ROW_KEYS - row.keys()
        if missing:
            fail(f"results[{i}] missing keys {sorted(missing)}")
        if row["source"] not in ("capture", "stream"):
            fail(f"results[{i}] has unknown source {row['source']!r}")
        sources.add(row["source"])
        if row["cells"] <= 0 or row["instructions"] <= 0:
            fail(f"results[{i}] swept no work")
        if row["minstr_per_sec"] <= 0 or row["cells_per_sec"] <= 0:
            fail(f"results[{i}] reports non-positive throughput")
    if sources != {"capture", "stream"}:
        fail(f"matrix covers sources {sorted(sources)}, "
             "expected capture and stream")
    summary = doc.get("summary")
    if not isinstance(summary, dict) or \
            SWEEP_BENCH_SUMMARY_KEYS - summary.keys():
        fail("summary must contain the solo/fused throughput comparison "
             "and identical_json")
    if summary["identical_json"] is not True:
        fail("identical_json is not true: the fused matrix diverged")
    if summary["jobs1_fused_speedup"] <= 0:
        fail("jobs1_fused_speedup is non-positive")
    print(f"ok: {len(results)} rows, schema {SWEEP_BENCH_SCHEMA}, "
          f"jobs1 fused speedup {summary['jobs1_fused_speedup']:.2f}x")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_bench_json.py [--sweep|--sweep-bench] "
             "<binary> [args...]")
    if sys.argv[1] == "--sweep":
        check_sweep(sys.argv[2:])
        return
    if sys.argv[1] == "--sweep-bench":
        check_sweep_bench(sys.argv[2:])
        return
    cmd = sys.argv[1:] + ["--json"]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE)
    if proc.returncode != 0:
        fail(f"benchmark exited with status {proc.returncode}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail(f"output is not valid JSON: {err}")

    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for key in ("timestamp", "max_instructions", "repeats"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("results must be a non-empty array")
    for i, row in enumerate(results):
        missing = ROW_KEYS - row.keys()
        if missing:
            fail(f"results[{i}] missing keys {sorted(missing)}")
        if row["instructions"] <= 0:
            fail(f"results[{i}] ran zero instructions")
        if row["minstr_per_sec"] <= 0:
            fail(f"results[{i}] reports non-positive throughput")
        if row["path"] not in ("stream", "bulk"):
            fail(f"results[{i}] has unknown path {row['path']!r}")
    summary = doc.get("summary")
    if not isinstance(summary, dict) or SUMMARY_KEYS - summary.keys():
        fail("summary must contain the stream and bulk geomeans")
    for key in SUMMARY_KEYS:
        if summary[key] <= 0:
            fail(f"summary {key} is non-positive")
    print(f"ok: {len(results)} rows, schema {SCHEMA}")


if __name__ == "__main__":
    main()
