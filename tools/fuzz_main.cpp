// paragraph-fuzz — seeded trace fuzzing against the invariant oracle.
//
// Generates deterministic adversarial traces (src/fuzz/trace_fuzzer.hpp),
// checks the full metamorphic-invariant catalogue against each one and each
// structured mutant (src/fuzz/invariant_oracle.hpp), and stops at the first
// violation with a reproducer dump.
//
// Usage:
//   paragraph-fuzz [options]
//   paragraph-fuzz --replay=repro-SEED.ptrc --config=repro-SEED.json
//
// Fuzzing:
//   --seed=N          run seed (default 1; PARAGRAPH_TEST_SEED overrides)
//   --iters=N         iterations, one trace + one mutant each (default 1000)
//   --min-length=N    shortest generated trace (default 64)
//   --max-length=N    longest generated trace (default 512)
//   --minimize        ddmin the failing trace before dumping it
//   --repro-dir=DIR   where repro-<seed>.ptrc/.json land (default ".")
//   --force-failure   oracle self-test: fail every check (exercises the
//                     dump/replay/minimize machinery end to end)
//
// Output:
//   --json[=FILE]     paragraph-fuzz-v1 summary JSON (stdout or FILE)
//   --quiet           suppress the stderr progress line
//
// Replay:
//   --replay=TRACE --config=JSON
//                     re-check a reproducer dump; exits 1 if the violation
//                     reproduces (the expected outcome for a real dump)
//
// Chaos (daemon failure injection, src/fuzz/chaos_harness.hpp):
//   --chaos           run the serve chaos harness instead of trace fuzzing
//   --input=PATH      trace input for chaos grids (repeatable, required)
//   --serve-bin=PATH  paragraph-serve binary (default: next to this binary)
//   --work-dir=DIR    socket/store scratch directory (default ".")
//   --round-length=N  sweeps between restarts + verification (default 50)
//   --kill-prob=P     per-sweep mid-job SIGKILL probability (default 0.1)
//   --chaos-verbose   per-round progress on stderr
//   (--seed, --iters, --json, --quiet apply; schema paragraph-chaos-v1)
//
// Exit codes: 0 = no violations, 1 = violation found (or reproduced),
// 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/chaos_harness.hpp"
#include "fuzz/harness.hpp"
#include "support/panic.hpp"
#include "support/string_utils.hpp"
#include "support/test_seed.hpp"

using namespace paragraph;

namespace {

struct Options
{
    fuzz::HarnessOptions harness;
    std::string jsonPath; ///< "-" = stdout
    bool json = false;
    bool quiet = false;
    std::string replayTrace;
    std::string replayConfig;
    bool chaos = false;
    fuzz::ChaosOptions chaosOpt;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: paragraph-fuzz [options]\n"
        "       paragraph-fuzz --replay=TRACE --config=JSON\n"
        "       paragraph-fuzz --chaos --input=TRACE [options]\n"
        "  --seed=N  --iters=N  --min-length=N  --max-length=N\n"
        "  --minimize  --repro-dir=DIR  --force-failure\n"
        "  --chaos  --input=PATH  --serve-bin=PATH  --work-dir=DIR\n"
        "  --round-length=N  --kill-prob=P  --chaos-verbose\n"
        "  --json[=FILE]  --quiet\n");
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    opt.harness.seed = testSeed(1);
    opt.chaosOpt.seed = opt.harness.seed;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        int64_t n = 0;
        if (startsWith(arg, "--seed=") && parseInt(arg.substr(7), n) &&
            n >= 0) {
            opt.harness.seed = static_cast<uint64_t>(n);
            opt.chaosOpt.seed = opt.harness.seed;
        } else if (startsWith(arg, "--iters=") &&
                   parseInt(arg.substr(8), n) && n > 0) {
            opt.harness.iters = static_cast<uint64_t>(n);
            opt.chaosOpt.iterations = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--min-length=") &&
                   parseInt(arg.substr(13), n) && n > 0) {
            opt.harness.minLength = static_cast<size_t>(n);
        } else if (startsWith(arg, "--max-length=") &&
                   parseInt(arg.substr(13), n) && n > 0) {
            opt.harness.maxLength = static_cast<size_t>(n);
        } else if (arg == "--minimize") {
            opt.harness.minimize = true;
        } else if (startsWith(arg, "--repro-dir=")) {
            opt.harness.reproDir = arg.substr(12);
        } else if (arg == "--force-failure") {
            opt.harness.oracle.forceFailure = true;
        } else if (arg == "--json") {
            opt.json = true;
            opt.jsonPath = std::string("-");
        } else if (startsWith(arg, "--json=")) {
            opt.json = true;
            opt.jsonPath = arg.substr(7);
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (startsWith(arg, "--replay=")) {
            opt.replayTrace = arg.substr(9);
        } else if (startsWith(arg, "--config=")) {
            opt.replayConfig = arg.substr(9);
        } else if (arg == "--chaos") {
            opt.chaos = true;
        } else if (startsWith(arg, "--input=")) {
            opt.chaosOpt.inputs.push_back(arg.substr(8));
        } else if (startsWith(arg, "--serve-bin=")) {
            opt.chaosOpt.serveBinary = arg.substr(12);
        } else if (startsWith(arg, "--work-dir=")) {
            opt.chaosOpt.workDir = arg.substr(11);
        } else if (startsWith(arg, "--round-length=") &&
                   parseInt(arg.substr(15), n) && n > 0) {
            opt.chaosOpt.roundLength = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--kill-prob=")) {
            char *end = nullptr;
            double p = std::strtod(arg.c_str() + 12, &end);
            if (!end || *end != '\0' || p < 0.0 || p > 1.0)
                usage();
            opt.chaosOpt.killProbability = p;
        } else if (arg == "--chaos-verbose") {
            opt.chaosOpt.verbose = true;
        } else {
            std::fprintf(stderr, "paragraph-fuzz: bad argument '%s'\n",
                         arg.c_str());
            usage();
        }
    }
    if (opt.replayTrace.empty() != opt.replayConfig.empty()) {
        std::fprintf(stderr,
                     "paragraph-fuzz: --replay and --config go together\n");
        usage();
    }
    if (opt.chaos) {
        if (opt.chaosOpt.inputs.empty()) {
            std::fprintf(stderr,
                         "paragraph-fuzz: --chaos needs at least one "
                         "--input=TRACE\n");
            usage();
        }
        if (opt.chaosOpt.serveBinary.empty()) {
            // Default to the paragraph-serve built next to this binary.
            std::string self = argv[0];
            size_t slash = self.rfind('/');
            opt.chaosOpt.serveBinary =
                (slash == std::string::npos ? std::string(".")
                                            : self.substr(0, slash)) +
                "/paragraph-serve";
        }
        if (opt.chaosOpt.workDir.empty())
            opt.chaosOpt.workDir.assign(1, '.');
    }
    return opt;
}

void
writeJson(const Options &opt, const std::string &doc)
{
    if (opt.jsonPath == "-") {
        std::fputs(doc.c_str(), stdout);
        return;
    }
    std::FILE *f = std::fopen(opt.jsonPath.c_str(), "w");
    if (!f)
        PARA_FATAL("cannot open %s", opt.jsonPath.c_str());
    std::fputs(doc.c_str(), f);
    std::fclose(f);
    if (!opt.quiet)
        std::fprintf(stderr, "fuzz: wrote %s\n", opt.jsonPath.c_str());
}

int
replayMain(const Options &opt)
{
    fuzz::FuzzHarness harness(opt.harness);
    std::string stage, property;
    fuzz::OracleReport report =
        harness.replay(opt.replayTrace, opt.replayConfig, &stage, &property);
    if (report.ok()) {
        std::fprintf(stderr,
                     "fuzz: replay of %s is clean — the dumped '%s' "
                     "violation did not reproduce\n",
                     opt.replayTrace.c_str(), property.c_str());
        return 0;
    }
    std::fprintf(stderr, "fuzz: replay of %s (stage %s) reproduced:\n",
                 opt.replayTrace.c_str(), stage.c_str());
    for (const fuzz::Violation &v : report.violations)
        std::fprintf(stderr, "  %s: %s\n", v.property.c_str(),
                     v.message.c_str());
    bool matches = false;
    for (const fuzz::Violation &v : report.violations)
        matches = matches || v.property == property;
    if (!property.empty() && !matches)
        std::fprintf(stderr,
                     "fuzz: warning: dumped property '%s' is not among the "
                     "reproduced violations\n",
                     property.c_str());
    return 1;
}

int
chaosMain(const Options &opt)
{
    fuzz::ChaosReport report = fuzz::runChaos(opt.chaosOpt);
    if (opt.json)
        writeJson(opt, fuzz::chaosReportJson(opt.chaosOpt, report) + "\n");
    if (report.ok()) {
        if (!opt.quiet)
            std::fprintf(
                stderr,
                "chaos: %u sweeps (%u clean, %u faulted, %u errors, %u "
                "busy), %u kills, %u restarts, %llu failpoint fires, "
                "%u grids verified — no violations\n",
                report.iterations, report.cleanSweeps, report.faultedSweeps,
                report.requestErrors, report.busyResponses, report.kills,
                report.restarts,
                static_cast<unsigned long long>(report.failpointFires),
                report.verifiedGrids);
        return 0;
    }
    std::fprintf(stderr,
                 "chaos: VIOLATION (seed %llu): %s\n"
                 "chaos: %u mismatches, %u lost entries, %u corrupt "
                 "restarts after %u sweeps\n"
                 "chaos: replay with: paragraph-fuzz --chaos --seed=%llu\n",
                 static_cast<unsigned long long>(opt.chaosOpt.seed),
                 report.firstFailure.c_str(), report.mismatches,
                 report.lostEntries, report.corruptRestarts,
                 report.iterations,
                 static_cast<unsigned long long>(opt.chaosOpt.seed));
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Options opt = parseArgs(argc, argv);
        if (!opt.replayTrace.empty())
            return replayMain(opt);
        if (opt.chaos)
            return chaosMain(opt);

        if (!opt.quiet) {
            opt.harness.progress = [](uint64_t done, uint64_t total) {
                if (done % 100 == 0 || done == total) {
                    std::fprintf(stderr, "\rfuzz: %llu/%llu iterations%s",
                                 static_cast<unsigned long long>(done),
                                 static_cast<unsigned long long>(total),
                                 done == total ? "\n" : "");
                    std::fflush(stderr);
                }
            };
        }

        fuzz::FuzzHarness harness(opt.harness);
        fuzz::FuzzSummary summary = harness.run();

        if (opt.json)
            writeJson(opt, summary.toJson());

        if (!summary.failed) {
            if (!opt.quiet)
                std::fprintf(stderr,
                             "fuzz: %llu iterations, %llu traces + %llu "
                             "mutants, %llu records, %zu properties — no "
                             "violations\n",
                             static_cast<unsigned long long>(
                                 summary.itersCompleted),
                             static_cast<unsigned long long>(
                                 summary.tracesChecked),
                             static_cast<unsigned long long>(
                                 summary.mutantsChecked),
                             static_cast<unsigned long long>(
                                 summary.recordsAnalyzed),
                             summary.propertiesChecked);
            return 0;
        }

        const fuzz::FailureCase &f = summary.failure;
        std::fprintf(stderr,
                     "\nfuzz: VIOLATION at iteration %llu (seed %llu, "
                     "stage %s)\n",
                     static_cast<unsigned long long>(f.iteration),
                     static_cast<unsigned long long>(f.iterationSeed),
                     f.stage.c_str());
        for (const fuzz::Violation &v : f.report.violations)
            std::fprintf(stderr, "  %s: %s\n", v.property.c_str(),
                         v.message.c_str());
        if (f.trace.size() != f.originalRecords)
            std::fprintf(stderr, "fuzz: minimized %zu -> %zu records\n",
                         f.originalRecords, f.trace.size());
        if (!f.reproTracePath.empty())
            std::fprintf(stderr,
                         "fuzz: reproducer: %s + %s\n"
                         "fuzz: replay with: paragraph-fuzz --replay=%s "
                         "--config=%s\n",
                         f.reproTracePath.c_str(),
                         f.reproConfigPath.c_str(),
                         f.reproTracePath.c_str(),
                         f.reproConfigPath.c_str());
        return 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "paragraph-fuzz: %s\n", e.what());
        return 1;
    }
}
