// paragraph — the command-line DDG analysis tool, mirroring the original
// Paragraph's parameterization (paper Section 3.2).
//
// Usage:
//   paragraph [options] <workload-name | trace-file.ptrc | program.s | program.mc>
//
// Input selection (by extension):
//   name of a bundled workload  analog suite (cc1, fpppp, matrix300, ...)
//   *.ptrc                      binary trace file (captured earlier)
//   *.s                         assembly program, simulated for its trace
//   *.mc                        MiniC program, compiled then simulated
//
// Paper switches:
//   --syscalls=stall|ignore     conservative firewall vs. optimistic (stall)
//   --no-rename-regs            keep register storage dependencies
//   --no-rename-stack           keep stack-segment storage dependencies
//   --no-rename-data            keep non-stack memory storage dependencies
//   --window=N                  instruction window size (0 = unlimited)
//   --fus=N                     total functional units (0 = unlimited)
//   --pipelined-fus             units occupied in issue level only
//   --predictor=perfect|bimodal|taken|nottaken|wrong
//                               branch-prediction model (misses firewall)
//   --max=N                     analyze at most N instructions
//   --small                     use the workload's reduced test input
//
// Outputs:
//   --profile                   print the bucketed parallelism profile
//   --plot                      print the ASCII profile plot
//   --distributions             print lifetime / sharing distributions
//   --storage-profile           print the live-values-per-level plot
//   --hot[=N]                   print the N hottest static instructions
//   --baseline                  also run the critical-path-only baseline
//   --save-trace=FILE           capture the input trace to FILE
//                               (.ptrc fixed-size, .ptrz compressed)
//   --dot[=N]                   print Graphviz DDG of the first N records
//   --no-timing                 omit the analysis-time line (the only
//                               nondeterministic output; golden tests)
//   --list                      list the bundled workload analogs
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "casm/assembler.hpp"
#include "core/baseline.hpp"
#include "core/ddg_builder.hpp"
#include "core/paragraph.hpp"
#include "core/report.hpp"
#include "minic/compiler.hpp"
#include "sim/exec_profile.hpp"
#include "sim/machine.hpp"
#include "support/ascii_table.hpp"
#include "support/panic.hpp"
#include "support/string_utils.hpp"
#include "trace/buffer.hpp"
#include "trace/compressed_io.hpp"
#include "trace/file_io.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;

namespace {

struct Options
{
    core::AnalysisConfig cfg;
    std::string input;
    bool small = false;
    bool profile = false;
    bool plot = false;
    bool distributions = false;
    bool storage = false;
    uint64_t hot = 0;
    bool baseline = false;
    bool timing = true;
    std::string saveTrace;
    uint64_t dotRecords = 0;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: paragraph [options] <workload | file.ptrc | file.ptrz | "
        "file.s | file.mc>\n"
        "  switches: --syscalls=stall|ignore  --no-rename-regs\n"
        "            --no-rename-stack  --no-rename-data  --window=N\n"
        "            --fus=N  --pipelined-fus  --max=N  --small\n"
        "            --predictor=perfect|bimodal|taken|nottaken|wrong\n"
        "  outputs:  --profile  --plot  --distributions  "
        "--storage-profile\n"
        "            --hot[=N]  --baseline  --save-trace=FILE  --dot[=N]\n"
        "            --no-timing  --list\n");
    std::exit(2);
}

bool
hasSuffix(const std::string &s, const char *suffix)
{
    size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        PARA_FATAL("cannot open %s", path.c_str());
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        int64_t n = 0;
        if (arg == "--list") {
            for (const auto &w :
                 workloads::WorkloadSuite::instance().all()) {
                std::printf("%-10s %-8s %-10s %s\n", w.name.c_str(),
                            w.language.c_str(), w.benchType.c_str(),
                            w.description.c_str());
            }
            std::exit(0);
        } else if (arg == "--syscalls=stall") {
            opt.cfg.sysCallsStall = true;
        } else if (arg == "--syscalls=ignore") {
            opt.cfg.sysCallsStall = false;
        } else if (arg == "--no-rename-regs") {
            opt.cfg.renameRegisters = false;
        } else if (arg == "--no-rename-stack") {
            opt.cfg.renameStack = false;
        } else if (arg == "--no-rename-data") {
            opt.cfg.renameData = false;
        } else if (startsWith(arg, "--window=") &&
                   parseInt(arg.substr(9), n) && n >= 0) {
            opt.cfg.windowSize = static_cast<uint64_t>(n);
        } else if (startsWith(arg, "--fus=") && parseInt(arg.substr(6), n) &&
                   n >= 0) {
            opt.cfg.totalFuLimit = static_cast<uint32_t>(n);
        } else if (startsWith(arg, "--predictor=")) {
            std::string kind = arg.substr(12);
            if (kind == "perfect") {
                opt.cfg.branchPredictor = core::PredictorKind::Perfect;
            } else if (kind == "bimodal") {
                opt.cfg.branchPredictor = core::PredictorKind::Bimodal;
            } else if (kind == "taken") {
                opt.cfg.branchPredictor = core::PredictorKind::AlwaysTaken;
            } else if (kind == "nottaken") {
                opt.cfg.branchPredictor = core::PredictorKind::NeverTaken;
            } else if (kind == "wrong") {
                opt.cfg.branchPredictor = core::PredictorKind::AlwaysWrong;
            } else {
                usage();
            }
        } else if (arg == "--pipelined-fus") {
            opt.cfg.pipelinedFus = true;
        } else if (startsWith(arg, "--max=") && parseInt(arg.substr(6), n) &&
                   n >= 0) {
            opt.cfg.maxInstructions = static_cast<uint64_t>(n);
        } else if (arg == "--small") {
            opt.small = true;
        } else if (arg == "--profile") {
            opt.profile = true;
        } else if (arg == "--plot") {
            opt.plot = true;
        } else if (arg == "--distributions") {
            opt.distributions = true;
        } else if (arg == "--storage-profile") {
            opt.storage = true;
        } else if (startsWith(arg, "--hot=") && parseInt(arg.substr(6), n) &&
                   n > 0) {
            opt.hot = static_cast<uint64_t>(n);
        } else if (arg == "--hot") {
            opt.hot = 16;
        } else if (arg == "--baseline") {
            opt.baseline = true;
        } else if (arg == "--no-timing") {
            opt.timing = false;
        } else if (startsWith(arg, "--save-trace=")) {
            opt.saveTrace = arg.substr(13);
        } else if (arg == "--dot") {
            opt.dotRecords = 64;
        } else if (startsWith(arg, "--dot=") && parseInt(arg.substr(6), n) &&
                   n > 0) {
            opt.dotRecords = static_cast<uint64_t>(n);
        } else if (!startsWith(arg, "--") && opt.input.empty()) {
            opt.input = arg;
        } else {
            std::fprintf(stderr, "paragraph: bad argument '%s'\n",
                         arg.c_str());
            usage();
        }
    }
    if (opt.input.empty())
        usage();
    return opt;
}

/** Owns whatever combination of program/machine/file backs the source. */
struct InputBundle
{
    std::unique_ptr<casm::Program> program;
    std::unique_ptr<trace::TraceSource> source;
    std::string description;
};

InputBundle
openInput(const Options &opt)
{
    InputBundle bundle;
    if (hasSuffix(opt.input, ".ptrc") || hasSuffix(opt.input, ".ptrz")) {
        bundle.source = trace::openTraceFile(opt.input);
        bundle.description = "trace file " + opt.input;
        return bundle;
    }
    if (hasSuffix(opt.input, ".s")) {
        bundle.program = std::make_unique<casm::Program>(
            casm::assemble(readFile(opt.input)));
        bundle.source =
            std::make_unique<sim::MachineTraceSource>(*bundle.program);
        bundle.description = "assembly program " + opt.input;
        return bundle;
    }
    if (hasSuffix(opt.input, ".mc") || hasSuffix(opt.input, ".c")) {
        bundle.program = std::make_unique<casm::Program>(
            minic::compile(readFile(opt.input)));
        bundle.source =
            std::make_unique<sim::MachineTraceSource>(*bundle.program);
        bundle.description = "MiniC program " + opt.input;
        return bundle;
    }
    auto &suite = workloads::WorkloadSuite::instance();
    const workloads::Workload &w = suite.find(opt.input);
    bundle.source = suite.makeSource(w, opt.small
                                            ? workloads::Scale::Small
                                            : workloads::Scale::Full);
    bundle.description = "workload " + w.name + " (" + w.description + ")";
    return bundle;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Options opt = parseArgs(argc, argv);
        InputBundle input = openInput(opt);
        std::printf("paragraph: analyzing %s\n",
                    input.description.c_str());

        if (!opt.saveTrace.empty()) {
            uint64_t n = 0;
            if (hasSuffix(opt.saveTrace, ".ptrz")) {
                trace::CompressedTraceWriter writer(opt.saveTrace);
                n = writer.writeAll(*input.source);
                writer.close();
            } else {
                trace::TraceFileWriter writer(opt.saveTrace);
                n = writer.writeAll(*input.source);
                writer.close();
            }
            std::printf("captured %s records to %s\n",
                        AsciiTable::withCommas(n).c_str(),
                        opt.saveTrace.c_str());
            input.source->reset();
        }

        if (opt.dotRecords > 0) {
            trace::TraceBuffer head;
            trace::TraceRecord rec;
            while (head.size() < opt.dotRecords &&
                   input.source->next(rec)) {
                head.push(rec);
            }
            std::cout << core::buildDdg(head, opt.cfg).toDot();
            return 0;
        }

        core::Paragraph engine(opt.cfg);
        core::AnalysisResult res = engine.analyze(*input.source);
        core::printSummary(std::cout, input.source->name(), opt.cfg, res);
        if (opt.cfg.branchPredictor != core::PredictorKind::Perfect) {
            std::printf("  branches            %20s (%s mispredicted, "
                        "%s model)\n",
                        AsciiTable::withCommas(res.condBranches).c_str(),
                        AsciiTable::withCommas(res.branchMispredictions)
                            .c_str(),
                        core::predictorKindName(opt.cfg.branchPredictor));
        }
        if (opt.timing) {
            std::printf("  analysis time       %17.2f s (%.1f M "
                        "records/s)\n",
                        res.analysisSeconds,
                        res.analysisSeconds > 0
                            ? static_cast<double>(res.instructions) / 1e6 /
                                  res.analysisSeconds
                            : 0.0);
        }
        if (opt.profile) {
            std::printf("\n");
            core::printProfile(std::cout, res);
        }
        if (opt.plot) {
            std::printf("\n");
            core::printProfilePlot(std::cout, res);
        }
        if (opt.distributions) {
            std::printf("\n");
            core::printDistributions(std::cout, res);
        }
        if (opt.storage) {
            std::printf("\n");
            core::printStorageProfile(std::cout, res);
        }
        if (opt.hot > 0) {
            const casm::Program *prog = input.program.get();
            if (!prog && !opt.input.empty()) {
                // Bundled workloads keep their compiled program cached.
                auto &suite = workloads::WorkloadSuite::instance();
                for (const auto &w : suite.all()) {
                    if (w.name == opt.input)
                        prog = &suite.program(w);
                }
            }
            if (prog) {
                std::printf("\nhot instructions (Pixie-style profile):\n");
                input.source->reset();
                sim::ExecutionProfile profile = sim::ExecutionProfile::collect(
                    *input.source, prog->text.size());
                profile.printHot(std::cout, *prog, opt.hot);
            } else {
                std::printf("\n--hot needs a program input (workload, .mc, "
                            ".s); trace files carry no text segment\n");
            }
        }
        if (opt.baseline) {
            input.source->reset();
            core::CriticalPathAnalyzer fast(opt.cfg);
            core::BaselineResult base = fast.analyze(*input.source);
            std::printf("\nbaseline (critical-path-only): cp %s, "
                        "parallelism %.2f\n",
                        AsciiTable::withCommas(base.criticalPathLength)
                            .c_str(),
                        base.availableParallelism);
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "paragraph: %s\n", e.what());
        return 1;
    }
}
