// paragraph-serve — a sweep daemon with a content-addressed result cache.
//
// Daemon mode (default) listens on an AF_UNIX socket, runs every client's
// grid cells through one shared trace-major scheduler (cells from
// different clients fuse when they share a trace), and remembers every
// completed cell in an append-only JSONL result store keyed by content:
// (trace CRC-32, canonical-config CRC-32, profiles flag). Any cell ever
// computed — by any client, before any restart — is served back
// byte-identically without re-analysis.
//
// Daemon usage:
//   paragraph-serve --socket=PATH [options]
//     --store=FILE           persistent result store (strongly recommended;
//                            omitting it caches nothing across requests)
//     --jobs=N               analysis worker threads (default: hardware)
//     --group=N              configs fused per pass (default: 8)
//     --retries=N            extra attempts for ordinarily-failed cells
//     --deadline=SECONDS     per-attempt cell deadline
//     --small                serve workload inputs at reduced scale
//     --trace-budget=BYTES   LRU byte budget for cached trace captures
//     --store-budget=BYTES   byte budget for hot result text (the on-disk
//                            store itself is unbounded; cold entries are
//                            re-read on demand)
//     --store-sync=POLICY    none (default) | interval | cell: when store
//                            appends are fsynced to the device (every
//                            policy still flushes per entry, so a daemon
//                            crash loses nothing; the policy bounds what a
//                            machine crash can take)
//     --store-sync-interval=SECONDS
//                            minimum seconds between fsyncs under
//                            --store-sync=interval (default: 5)
//     --store-compact-every=N
//                            rewrite the store (dropping superseded and
//                            damaged lines) after every N appends, via
//                            tmp file + fsync + atomic rename
//     --io-timeout=SECONDS   per-connection read/write deadline; a client
//                            that stalls mid-line is disconnected
//     --max-request=BYTES    reject request lines larger than this
//     --max-pending=N        sweeps admitted concurrently; one more gets
//                            a "busy" response with a retry_after_ms hint
//     --max-clients=N        concurrent connections; one more is turned
//                            away at accept with a "busy" line
//     --allow-failpoints     honor failpoint-control requests (chaos
//                            tests only; never on a shared daemon)
//     --quiet                suppress per-request stderr lines
//   SIGINT/SIGTERM shut the daemon down gracefully: queued cells fail
//   fast, in-flight analyses stop at their next checkpoint, and the store
//   (flushed per completed cell) loses nothing. Exit status is 0.
//
// Client mode sends one request and prints the response:
//   paragraph-serve --client --socket=PATH --inputs=A,B --windows=16,64 ...
//     sweep axes as in paragraph-sweep: --inputs/--windows/--rename/
//     --syscalls/--predictors/--fus/--max/--small/--no-profiles
//     --explore              adaptive exploration instead of the full
//                            grid (engine::Explorer): the daemon measures
//                            only the cells the frontier needs, re-serving
//                            previously computed ones from the result
//                            store, and returns a "paragraph-explore-v1"
//                            document with dominance certificates
//     --knee-tol=T           explore knee tolerance (0 = exact frontier)
//     --out=FILE             write the sweep JSON document to FILE
//                            (default: stdout)
//     --ping | --stats | --health | --shutdown
//                            liveness / counters / queue+store+failpoint
//                            probe / graceful stop
//     --failpoint=SPEC       arm "site=policy;..." failpoints in the
//                            daemon (empty SPEC resets); needs a daemon
//                            started with --allow-failpoints
//     --timeout=SECONDS      client-side socket deadline; a wedged daemon
//                            fails the request instead of hanging forever
//     --raw=LINE             send LINE verbatim, print the raw response
//     --quiet                suppress the stderr summary line
//   A "busy" response (daemon over --max-pending/--max-clients) prints
//   the daemon's retry hint and exits 3.
//
// Example (cold, then warm — the second run answers from the cache):
//   paragraph-serve --socket=/tmp/para.sock --store=/tmp/para-store.jsonl &
//   paragraph-serve --client --socket=/tmp/para.sock --inputs=xlisp
//       --windows=16,64 --max=200000 --out=cold.json
//   paragraph-serve --client --socket=/tmp/para.sock --inputs=xlisp
//       --windows=16,64 --max=200000 --out=warm.json
//   cmp cold.json warm.json   # byte-identical; warm run computed 0 cells
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/panic.hpp"
#include "support/string_utils.hpp"

using namespace paragraph;

namespace {

serve::ServeServer *g_server = nullptr;
volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
    if (g_server)
        g_server->requestStop(); // async-signal-safe: atomic stores only
}

void
installSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: poll() must wake on the signal
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: paragraph-serve --socket=PATH [daemon options]\n"
        "       paragraph-serve --client --socket=PATH [request options]\n"
        "  daemon: --store=FILE  --jobs=N  --group=N  --retries=N\n"
        "          --deadline=SECONDS  --small  --trace-budget=BYTES\n"
        "          --store-budget=BYTES  --store-sync=none|interval|cell\n"
        "          --store-sync-interval=SECONDS  --store-compact-every=N\n"
        "          --io-timeout=SECONDS  --max-request=BYTES\n"
        "          --max-pending=N  --max-clients=N  --allow-failpoints\n"
        "          --quiet\n"
        "  client: sweep axes as paragraph-sweep (--inputs/--windows/\n"
        "          --rename/--syscalls/--predictors/--fus/--max/--small/\n"
        "          --no-profiles), --explore, --knee-tol=T,\n"
        "          --out=FILE, --timeout=SECONDS,\n"
        "          or one of --ping --stats --health --shutdown\n"
        "          --failpoint=SPEC --raw=LINE\n");
    std::exit(2);
}

struct ServeCliArgs
{
    bool client = false;
    std::string socketPath;
    std::string rawLine;
    std::string outPath;
    bool ping = false;
    bool stats = false;
    bool health = false;
    bool shutdown = false;
    bool quiet = false;
    bool explore = false;
    bool hasFailpointSpec = false;
    std::string failpointSpec;
    double clientTimeout = 0.0;
    serve::ServeRequest request;       // client sweep axes
    serve::ServeServer::Options server; // daemon options
};

bool
parseBytes(const std::string &value, size_t &out)
{
    int64_t n = 0;
    if (!parseInt(value, n) || n < 0)
        return false;
    out = static_cast<size_t>(n);
    return true;
}

bool
parseSeconds(const std::string &value, double &out)
{
    char *end = nullptr;
    out = std::strtod(value.c_str(), &end);
    return end && *end == '\0' && !value.empty() && out >= 0.0;
}

ServeCliArgs
parseArgs(int argc, char **argv)
{
    ServeCliArgs opt;
    std::vector<std::string> args(argv + 1, argv + argc);
    for (const std::string &arg : args) {
        int64_t n = 0;
        if (arg == "--client") {
            opt.client = true;
        } else if (startsWith(arg, "--socket=")) {
            opt.socketPath = arg.substr(9);
        } else if (startsWith(arg, "--store=")) {
            opt.server.storePath = arg.substr(8);
        } else if (startsWith(arg, "--jobs=") &&
                   parseInt(arg.substr(7), n) && n > 0) {
            opt.server.jobs = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--group=") &&
                   parseInt(arg.substr(8), n) && n > 0) {
            opt.server.groupSize = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--retries=") &&
                   parseInt(arg.substr(10), n) && n >= 0) {
            opt.server.maxRetries = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--deadline=")) {
            char *end = nullptr;
            opt.server.cellDeadlineSeconds =
                std::strtod(arg.c_str() + 11, &end);
            if (!end || *end != '\0' ||
                opt.server.cellDeadlineSeconds < 0.0) {
                std::fprintf(stderr,
                             "paragraph-serve: bad --deadline value\n");
                usage();
            }
        } else if (startsWith(arg, "--trace-budget=")) {
            if (!parseBytes(arg.substr(15), opt.server.traceMemoryBudget)) {
                std::fprintf(stderr,
                             "paragraph-serve: bad --trace-budget value\n");
                usage();
            }
        } else if (startsWith(arg, "--store-budget=")) {
            if (!parseBytes(arg.substr(15), opt.server.storeMemoryBudget)) {
                std::fprintf(stderr,
                             "paragraph-serve: bad --store-budget value\n");
                usage();
            }
        } else if (startsWith(arg, "--store-sync-interval=")) {
            if (!parseSeconds(arg.substr(22),
                              opt.server.storeSyncIntervalSeconds)) {
                std::fprintf(
                    stderr,
                    "paragraph-serve: bad --store-sync-interval value\n");
                usage();
            }
        } else if (startsWith(arg, "--store-sync=")) {
            std::string policy = arg.substr(13);
            if (policy == "none") {
                opt.server.storeSyncPolicy = serve::SyncPolicy::None;
            } else if (policy == "interval") {
                opt.server.storeSyncPolicy = serve::SyncPolicy::Interval;
            } else if (policy == "cell") {
                opt.server.storeSyncPolicy = serve::SyncPolicy::Cell;
            } else {
                std::fprintf(stderr,
                             "paragraph-serve: bad --store-sync value "
                             "'%s' (none|interval|cell)\n",
                             policy.c_str());
                usage();
            }
        } else if (startsWith(arg, "--store-compact-every=")) {
            if (!parseBytes(arg.substr(22), opt.server.storeCompactEvery)) {
                std::fprintf(
                    stderr,
                    "paragraph-serve: bad --store-compact-every value\n");
                usage();
            }
        } else if (startsWith(arg, "--io-timeout=")) {
            if (!parseSeconds(arg.substr(13),
                              opt.server.ioTimeoutSeconds)) {
                std::fprintf(stderr,
                             "paragraph-serve: bad --io-timeout value\n");
                usage();
            }
        } else if (startsWith(arg, "--max-request=")) {
            if (!parseBytes(arg.substr(14), opt.server.maxRequestBytes)) {
                std::fprintf(stderr,
                             "paragraph-serve: bad --max-request value\n");
                usage();
            }
        } else if (startsWith(arg, "--max-pending=") &&
                   parseInt(arg.substr(14), n) && n >= 0) {
            opt.server.maxPendingSweeps = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--max-clients=") &&
                   parseInt(arg.substr(14), n) && n >= 0) {
            opt.server.maxClients = static_cast<unsigned>(n);
        } else if (arg == "--allow-failpoints") {
            opt.server.allowFailpoints = true;
        } else if (startsWith(arg, "--timeout=")) {
            if (!parseSeconds(arg.substr(10), opt.clientTimeout)) {
                std::fprintf(stderr,
                             "paragraph-serve: bad --timeout value\n");
                usage();
            }
        } else if (arg == "--small") {
            opt.server.small = true;
            opt.request.small = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
            opt.server.quiet = true;
        } else if (arg == "--ping") {
            opt.ping = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--health") {
            opt.health = true;
        } else if (arg == "--shutdown") {
            opt.shutdown = true;
        } else if (startsWith(arg, "--failpoint=")) {
            opt.hasFailpointSpec = true;
            opt.failpointSpec = arg.substr(12);
        } else if (startsWith(arg, "--raw=")) {
            opt.rawLine = arg.substr(6);
        } else if (startsWith(arg, "--out=")) {
            opt.outPath = arg.substr(6);
        } else if (startsWith(arg, "--inputs=")) {
            for (const std::string &s : splitAndTrim(arg.substr(9), ','))
                if (!s.empty())
                    opt.request.inputs.push_back(s);
        } else if (startsWith(arg, "--windows=")) {
            for (const std::string &s : splitAndTrim(arg.substr(10), ',')) {
                if (!parseInt(s, n) || n < 0) {
                    std::fprintf(stderr,
                                 "paragraph-serve: bad --windows value "
                                 "'%s'\n",
                                 s.c_str());
                    usage();
                }
                opt.request.windows.push_back(static_cast<uint64_t>(n));
            }
        } else if (startsWith(arg, "--rename=")) {
            opt.request.renames = splitAndTrim(arg.substr(9), ',');
        } else if (startsWith(arg, "--syscalls=")) {
            opt.request.syscalls = splitAndTrim(arg.substr(11), ',');
        } else if (startsWith(arg, "--predictors=")) {
            opt.request.predictors = splitAndTrim(arg.substr(13), ',');
        } else if (startsWith(arg, "--fus=")) {
            for (const std::string &s : splitAndTrim(arg.substr(6), ',')) {
                if (!parseInt(s, n) || n < 0) {
                    std::fprintf(stderr,
                                 "paragraph-serve: bad --fus value '%s'\n",
                                 s.c_str());
                    usage();
                }
                opt.request.fus.push_back(static_cast<uint64_t>(n));
            }
        } else if (startsWith(arg, "--max=") && parseInt(arg.substr(6), n) &&
                   n >= 0) {
            opt.request.maxInstructions = static_cast<uint64_t>(n);
        } else if (arg == "--explore") {
            opt.explore = true;
        } else if (startsWith(arg, "--knee-tol=")) {
            char *end = nullptr;
            double v = std::strtod(arg.c_str() + 11, &end);
            if (!end || *end != '\0' || v < 0.0 || v != v) {
                std::fprintf(stderr,
                             "paragraph-serve: bad --knee-tol value\n");
                usage();
            }
            opt.request.kneeTol = v;
        } else if (arg == "--no-profiles") {
            opt.request.profiles = false;
        } else if (!startsWith(arg, "--")) {
            opt.request.inputs.push_back(arg);
        } else {
            std::fprintf(stderr, "paragraph-serve: bad argument '%s'\n",
                         arg.c_str());
            usage();
        }
    }
    if (opt.socketPath.empty()) {
        std::fprintf(stderr, "paragraph-serve: --socket=PATH is required\n");
        usage();
    }
    opt.server.socketPath = opt.socketPath;
    return opt;
}

int
runDaemon(const ServeCliArgs &opt)
{
    serve::ServeServer server(opt.server);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "paragraph-serve: %s\n", error.c_str());
        return 1;
    }
    g_server = &server;
    installSignalHandlers();
    if (!opt.quiet) {
        std::fprintf(stderr, "paragraph-serve: listening on %s%s%s\n",
                     opt.socketPath.c_str(),
                     opt.server.storePath.empty() ? ""
                                                  : ", result store ",
                     opt.server.storePath.c_str());
    }
    server.run();
    g_server = nullptr;
    if (!opt.quiet) {
        std::fprintf(stderr, "paragraph-serve: %s\n",
                     g_signal ? "shut down on signal" : "shut down");
    }
    return 0; // a graceful shutdown — signalled or client-requested — is ok
}

int
runClient(const ServeCliArgs &opt)
{
    serve::ServeClient client(opt.socketPath);
    client.setTimeout(opt.clientTimeout);
    std::string error;
    if (!client.connect(error)) {
        std::fprintf(stderr, "paragraph-serve: %s\n", error.c_str());
        return 1;
    }

    std::string requestLine;
    if (!opt.rawLine.empty()) {
        requestLine = opt.rawLine;
    } else {
        serve::ServeRequest req = opt.request;
        if (opt.ping)
            req.op = serve::ServeRequest::Op::Ping;
        else if (opt.stats)
            req.op = serve::ServeRequest::Op::Stats;
        else if (opt.health)
            req.op = serve::ServeRequest::Op::Health;
        else if (opt.hasFailpointSpec) {
            req.op = serve::ServeRequest::Op::Failpoint;
            req.failpointSpec = opt.failpointSpec;
        } else if (opt.shutdown)
            req.op = serve::ServeRequest::Op::Shutdown;
        else if (!req.inputs.empty())
            req.op = opt.explore ? serve::ServeRequest::Op::Explore
                                 : serve::ServeRequest::Op::Sweep;
        else {
            std::fprintf(stderr,
                         "paragraph-serve: nothing to request (give inputs "
                         "or one of --ping --stats --health --shutdown "
                         "--failpoint --raw)\n");
            usage();
        }
        requestLine = serve::renderServeRequest(req);
    }

    std::string responseLine;
    if (!client.roundTrip(requestLine, responseLine, error)) {
        std::fprintf(stderr, "paragraph-serve: %s\n", error.c_str());
        return 1;
    }

    if (!opt.rawLine.empty()) {
        std::printf("%s\n", responseLine.c_str());
        return 0;
    }

    serve::ServeResponse response;
    if (!serve::parseServeResponse(responseLine, response, error)) {
        std::fprintf(stderr, "paragraph-serve: %s\n", error.c_str());
        return 1;
    }
    if (response.busy()) {
        std::fprintf(stderr,
                     "paragraph-serve: daemon busy, retry in ~%llums\n",
                     static_cast<unsigned long long>(
                         response.retryAfterMs));
        return 3;
    }
    if (!response.ok()) {
        std::fprintf(stderr, "paragraph-serve: daemon error: %s\n",
                     response.error.c_str());
        return 1;
    }

    if (response.op == "sweep" || response.op == "explore") {
        if (opt.outPath.empty()) {
            std::fwrite(response.document.data(), 1,
                        response.document.size(), stdout);
        } else {
            std::ofstream out(opt.outPath);
            if (!out) {
                std::fprintf(stderr, "paragraph-serve: cannot open %s\n",
                             opt.outPath.c_str());
                return 1;
            }
            out << response.document;
        }
        if (!opt.quiet && response.op == "explore") {
            std::fprintf(stderr,
                         "serve: explore %llu/%llu cells (%llu cached, "
                         "%llu computed, %llu pruned, %llu failed)\n",
                         static_cast<unsigned long long>(
                             response.cellsExecuted),
                         static_cast<unsigned long long>(
                             response.cellsTotal),
                         static_cast<unsigned long long>(
                             response.cellsCached),
                         static_cast<unsigned long long>(
                             response.cellsComputed),
                         static_cast<unsigned long long>(
                             response.cellsPruned),
                         static_cast<unsigned long long>(
                             response.cellsFailed));
        } else if (!opt.quiet) {
            std::fprintf(stderr,
                         "serve: %llu cells (%llu cached, %llu computed, "
                         "%llu failed)\n",
                         static_cast<unsigned long long>(
                             response.cellsTotal),
                         static_cast<unsigned long long>(
                             response.cellsCached),
                         static_cast<unsigned long long>(
                             response.cellsComputed),
                         static_cast<unsigned long long>(
                             response.cellsFailed));
        }
    } else {
        std::printf("%s\n", responseLine.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        ServeCliArgs opt = parseArgs(argc, argv);
        return opt.client ? runClient(opt) : runDaemon(opt);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "paragraph-serve: %s\n", e.what());
        return 1;
    }
}
