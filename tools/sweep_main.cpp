// paragraph-sweep — threaded (trace × config) grid runner with JSON output.
//
// Executes the cross product of the input axis and every config axis across
// a worker thread pool (engine::SweepEngine). Each input is captured once
// into a shared immutable trace buffer (engine::TraceRepository); each grid
// cell is one independent core::Paragraph analysis. Results stream to
// stdout (or --out=FILE) as one JSON object per cell, in grid order, so the
// document is identical for any --jobs value (modulo the "timing" fields,
// which --no-timing omits).
//
// Usage:
//   paragraph-sweep [options] --inputs=A,B,... [more inputs...]
//
// Input axis (same resolution as the `paragraph` CLI):
//   --inputs=a,b,c         workload names, *.ptrc/*.ptrz traces,
//                          *.s assembly, *.mc MiniC (positional args too)
//   --small                use each workload's reduced test input
//
// Config axes (grid = cross product of all axes):
//   --windows=16,64,0      window sizes (0 = unlimited)
//   --rename=none,regs,stack,data
//                          Table 4 renaming conditions: none | regs |
//                          stack (= regs+stack) | data (= regs+all memory)
//   --syscalls=stall,ignore
//   --predictors=perfect,bimodal,taken,nottaken,wrong
//   --fus=0,2,8            total functional-unit limits (0 = unlimited)
//
// Execution and output:
//   --jobs=N               worker threads (default: hardware concurrency)
//   --group=N              configs fused into one pass over a shared trace
//                          (trace-major scheduling); 1 = no fusion, 0 =
//                          auto, each worker's share of the grid becomes a
//                          single pass (default: auto)
//   --stream               stream *.ptrc/*.ptrz inputs per pass instead of
//                          capturing them in memory; `.ptrc` files are then
//                          mmapped into a shared decode pool (each block
//                          decoded once across all workers), fused groups
//                          pay one decode for the whole group
//   --shard=N              split each solo cell (captured or pooled
//                          .ptrc stream) into up to N trace segments
//                          analyzed on N threads and patched into the
//                          exact single-threaded result — how ONE trace x
//                          ONE config uses more than one core; works for
//                          every config (firewall cuts under
//                          --syscalls=stall + perfect prediction,
//                          validate-or-replay split-and-patch otherwise;
//                          .ptrz cells run solo)
//   --max=N                analyze at most N instructions per cell
//                          (also caps the shared trace capture)
//   --out=FILE             write the JSON document to FILE
//   --stats                add decode/analyze wall-time split and shard
//                          segment/splice/replay counts to the "timing"
//                          fields
//   --no-timing            omit wall-clock fields (deterministic output)
//   --no-profiles          omit per-cell parallelism-profile buckets
//   --quiet                suppress the stderr progress line
//
// Adaptive exploration (engine::Explorer, src/engine/explorer.hpp):
//   --explore              instead of running the full grid, locate each
//                          trace's Pareto frontier (parallelism vs. cost)
//                          with window-knee bisection, successive halving,
//                          and provably sound dominance pruning; emits a
//                          "paragraph-explore-v1" document where every
//                          executed cell is byte-identical to its
//                          full-grid twin and every skipped cell carries
//                          a dominance certificate
//   --knee-tol=T           parallelism tolerance for bracket collapse
//                          (default 0 = exact: the frontier equals the
//                          full grid's frontier cell-for-cell)
//
// Fault tolerance (failed cells are reported in the JSON; the exit code
// stays 0 unless every cell failed, which exits 1):
//   --retries=N            re-run a failed cell up to N extra times
//   --deadline=SECONDS     per-cell deadline; a cell past it fails with a
//                          timeout error instead of hanging the sweep
//   --journal=FILE         append a JSONL checkpoint line per finished cell
//   --resume=FILE          skip cells already ok in FILE, splicing their
//                          journaled results into the output (implies
//                          --no-timing so the document is byte-identical
//                          to an uninterrupted --no-timing run)
//
// Example — the paper's Figure 8 window sweep in one command:
//   paragraph-sweep --inputs=cc1,espresso --windows=16,64,256,1024,0
//       --max=2000000 --jobs=8 --out=figure8.json
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/cancel_token.hpp"
#include "engine/explorer.hpp"
#include "engine/journal.hpp"
#include "engine/sweep.hpp"
#include "engine/sweep_args.hpp"
#include "engine/sweep_json.hpp"
#include "engine/trace_repository.hpp"
#include "support/panic.hpp"
#include "support/string_utils.hpp"
#include "support/test_seed.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;

namespace {

using engine::SweepArgs;

// SIGINT/SIGTERM turn into a cooperative cancellation: every cell's config
// chains this token, so in-flight analyses stop at their next checkpoint
// (a few tens of thousands of records away), their cells journal as failed,
// and the process exits 128+signal with the journal and output flushed —
// a `--resume` of the same journal then redoes only what was cut short.
core::CancelToken g_interrupt;
volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
    g_interrupt.cancelFromSignal(); // async-signal-safe: one atomic store
}

void
installSignalHandlers()
{
    g_interrupt.setReason("interrupted by signal");
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: blocking calls must see the signal
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: paragraph-sweep [options] --inputs=A,B,... [inputs...]\n"
        "  inputs: workload names, *.ptrc/*.ptrz traces, *.s, *.mc\n"
        "  axes:   --windows=16,64,0  --rename=none,regs,stack,data\n"
        "          --syscalls=stall,ignore\n"
        "          --predictors=perfect,bimodal,taken,nottaken,wrong\n"
        "          --fus=0,2,8\n"
        "  run:    --jobs=N  --group=N (0=auto)  --shard=N  --max=N\n"
        "          --small  --stream  --out=FILE\n"
        "          --stats  --no-timing  --no-profiles  --quiet  --list\n"
        "  explore: --explore  --knee-tol=T (0 = exact frontier)\n"
        "  fault:  --retries=N  --deadline=SECONDS\n"
        "          --journal=FILE  --resume=FILE\n");
    std::exit(2);
}

SweepArgs
parseArgs(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    SweepArgs opt;
    std::string error;
    if (!engine::parseSweepArgs(args, opt, error)) {
        std::fprintf(stderr, "paragraph-sweep: %s\n", error.c_str());
        usage();
    }
    if (opt.listRequested) {
        for (const auto &w : workloads::WorkloadSuite::instance().all()) {
            std::printf("%-10s %-8s %-10s %s\n", w.name.c_str(),
                        w.language.c_str(), w.benchType.c_str(),
                        w.description.c_str());
        }
        std::exit(0);
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        SweepArgs opt = parseArgs(argc, argv);
        installSignalHandlers();

        std::vector<core::AnalysisConfig> configs;
        std::vector<std::string> labels;
        std::string error;
        if (!engine::buildSweepConfigAxis(opt, configs, labels, error)) {
            std::fprintf(stderr, "paragraph-sweep: %s\n", error.c_str());
            usage();
        }
        for (core::AnalysisConfig &cfg : configs)
            cfg.cancel = &g_interrupt;

        engine::TraceRepository::Options repoOpt;
        repoOpt.scale = opt.small ? workloads::Scale::Small
                                  : workloads::Scale::Full;
        repoOpt.maxRecords = opt.maxInstructions;
        repoOpt.streamFiles = opt.stream;
        engine::TraceRepository repo(repoOpt);

        engine::SweepEngine::Options engineOpt;
        engineOpt.jobs = opt.jobs;
        engineOpt.groupSize = opt.group;
        engineOpt.shards = opt.shards;
        engineOpt.maxRetries = opt.retries;
        engineOpt.cellDeadlineSeconds = opt.deadlineSeconds;
        engineOpt.journalPath = opt.journalPath;
        engineOpt.journalProfiles = opt.json.profiles;

        if (opt.explore &&
            (!opt.journalPath.empty() || !opt.resumePath.empty())) {
            PARA_FATAL("--explore chooses its own cells round by round and "
                       "cannot journal or resume a fixed grid; drop "
                       "--journal/--resume");
        }

        engine::JournalData resume;
        if (!opt.resumePath.empty()) {
            resume = engine::loadJournal(opt.resumePath);
            if (resume.profiles != opt.json.profiles) {
                PARA_FATAL("journal %s was written with profiles=%s; rerun "
                           "with the matching --no-profiles setting",
                           opt.resumePath.c_str(),
                           resume.profiles ? "true" : "false");
            }
            // Journaled cells carry no timing, so the merged document only
            // stays byte-identical to a clean run without timing fields.
            opt.json.timing = false;
            engineOpt.resume = &resume;
        }
        if (!opt.quiet) {
            engineOpt.progress = [](size_t done, size_t total,
                                    double minstrPerSec) {
                std::fprintf(stderr,
                             "\rsweep: %zu/%zu jobs  %.1f Minstr/s%s", done,
                             total, minstrPerSec,
                             done == total ? "\n" : "");
                std::fflush(stderr);
            };
        }
        engine::SweepEngine sweeper(engineOpt);

        if (opt.explore) {
            engine::Explorer::Options exOpt;
            exOpt.kneeTol = opt.kneeTol;
            // PARAGRAPH_TEST_SEED steers the (frontier-invariant)
            // measurement order, so golden snapshots stay byte-stable.
            exOpt.seed = testSeed(exOpt.seed);
            engine::Explorer explorer(exOpt);

            engine::SweepAxes axes = engine::defaultedSweepAxes(opt);
            if (!opt.quiet) {
                std::fprintf(stderr,
                             "explore: %zu inputs x %zu configs on "
                             "%u worker(s), knee-tol %g\n",
                             opt.inputs.size(), configs.size(),
                             sweeper.jobs(), opt.kneeTol);
            }
            engine::ExploreResult explored = explorer.explore(
                opt.inputs, axes, configs, labels,
                [&](std::vector<engine::SweepJob> jobs) {
                    return sweeper.runJobs(repo, std::move(jobs)).cells;
                });
            explored.jobs = sweeper.jobs();

            if (!opt.quiet) {
                std::fprintf(stderr,
                             "explore: %zu/%zu cells executed (%zu pruned "
                             "with certificates, %zu failed) in %zu "
                             "round(s)\n",
                             explored.cellsExecuted, explored.cellsTotal,
                             explored.cellsPruned, explored.cellsFailed,
                             explored.rounds);
            }

            if (opt.outPath.empty()) {
                engine::writeExploreJson(std::cout, explored, opt.json);
            } else {
                std::ofstream out(opt.outPath);
                if (!out)
                    PARA_FATAL("cannot open %s", opt.outPath.c_str());
                engine::writeExploreJson(out, explored, opt.json);
                if (!opt.quiet)
                    std::fprintf(stderr, "sweep: wrote %s\n",
                                 opt.outPath.c_str());
            }
            if (g_signal != 0) {
                std::fprintf(stderr,
                             "paragraph-sweep: interrupted by signal %d\n",
                             static_cast<int>(g_signal));
                return 128 + static_cast<int>(g_signal);
            }
            bool totalLoss = explored.cellsExecuted > 0 &&
                             explored.cellsFailed == explored.cellsExecuted;
            return totalLoss ? 1 : 0;
        }

        if (!opt.quiet) {
            std::fprintf(stderr,
                         "sweep: %zu inputs x %zu configs = %zu cells on "
                         "%u worker(s)\n",
                         opt.inputs.size(), configs.size(),
                         opt.inputs.size() * configs.size(),
                         sweeper.jobs());
        }

        engine::SweepResult result =
            sweeper.run(repo, opt.inputs, configs, labels);

        if (!opt.quiet && result.cellsSkipped > 0)
            std::fprintf(stderr, "sweep: %zu cell(s) resumed from %s\n",
                         result.cellsSkipped, opt.resumePath.c_str());
        if (!opt.quiet && result.cellsFailed > 0)
            std::fprintf(stderr,
                         "sweep: %zu cell(s) failed (see \"error\" fields "
                         "in the JSON)\n",
                         result.cellsFailed);

        if (opt.outPath.empty()) {
            engine::writeSweepJson(std::cout, result, opt.json);
        } else {
            std::ofstream out(opt.outPath);
            if (!out)
                PARA_FATAL("cannot open %s", opt.outPath.c_str());
            engine::writeSweepJson(out, result, opt.json);
            if (!opt.quiet)
                std::fprintf(stderr, "sweep: wrote %s\n",
                             opt.outPath.c_str());
        }
        // An interrupted sweep still writes its (partial) document and
        // journal, but the exit status says so: 128+signal, the shell
        // convention for death-by-signal.
        if (g_signal != 0) {
            std::fprintf(stderr,
                         "paragraph-sweep: interrupted by signal %d "
                         "(journal and output flushed)\n",
                         static_cast<int>(g_signal));
            return 128 + static_cast<int>(g_signal);
        }
        // Partial failure is a success with failed cells in the JSON; a
        // sweep where nothing at all completed is an error.
        bool totalLoss = !result.cells.empty() &&
                         result.cellsFailed == result.cells.size();
        return totalLoss ? 1 : 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "paragraph-sweep: %s\n", e.what());
        return 1;
    }
}
