// paragraph-sweep — threaded (trace × config) grid runner with JSON output.
//
// Executes the cross product of the input axis and every config axis across
// a worker thread pool (engine::SweepEngine). Each input is captured once
// into a shared immutable trace buffer (engine::TraceRepository); each grid
// cell is one independent core::Paragraph analysis. Results stream to
// stdout (or --out=FILE) as one JSON object per cell, in grid order, so the
// document is identical for any --jobs value (modulo the "timing" fields,
// which --no-timing omits).
//
// Usage:
//   paragraph-sweep [options] --inputs=A,B,... [more inputs...]
//
// Input axis (same resolution as the `paragraph` CLI):
//   --inputs=a,b,c         workload names, *.ptrc/*.ptrz traces,
//                          *.s assembly, *.mc MiniC (positional args too)
//   --small                use each workload's reduced test input
//
// Config axes (grid = cross product of all axes):
//   --windows=16,64,0      window sizes (0 = unlimited)
//   --rename=none,regs,stack,data
//                          Table 4 renaming conditions: none | regs |
//                          stack (= regs+stack) | data (= regs+all memory)
//   --syscalls=stall,ignore
//   --predictors=perfect,bimodal,taken,nottaken,wrong
//   --fus=0,2,8            total functional-unit limits (0 = unlimited)
//
// Execution and output:
//   --jobs=N               worker threads (default: hardware concurrency)
//   --group=N              configs fused into one pass over a shared trace
//                          (trace-major scheduling); 1 = no fusion, 0 =
//                          auto, each worker's share of the grid becomes a
//                          single pass (default: auto)
//   --stream               stream *.ptrc/*.ptrz inputs per pass instead of
//                          capturing them in memory; fused groups then pay
//                          one pipelined decode for the whole group
//   --max=N                analyze at most N instructions per cell
//                          (also caps the shared trace capture)
//   --out=FILE             write the JSON document to FILE
//   --no-timing            omit wall-clock fields (deterministic output)
//   --no-profiles          omit per-cell parallelism-profile buckets
//   --quiet                suppress the stderr progress line
//
// Fault tolerance (failed cells are reported in the JSON; the exit code
// stays 0 unless every cell failed, which exits 1):
//   --retries=N            re-run a failed cell up to N extra times
//   --deadline=SECONDS     per-cell deadline; a cell past it fails with a
//                          timeout error instead of hanging the sweep
//   --journal=FILE         append a JSONL checkpoint line per finished cell
//   --resume=FILE          skip cells already ok in FILE, splicing their
//                          journaled results into the output (implies
//                          --no-timing so the document is byte-identical
//                          to an uninterrupted --no-timing run)
//
// Example — the paper's Figure 8 window sweep in one command:
//   paragraph-sweep --inputs=cc1,espresso --windows=16,64,256,1024,0
//       --max=2000000 --jobs=8 --out=figure8.json
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/journal.hpp"
#include "engine/sweep.hpp"
#include "engine/sweep_json.hpp"
#include "engine/trace_repository.hpp"
#include "support/panic.hpp"
#include "support/string_utils.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;

namespace {

struct Options
{
    std::vector<std::string> inputs;
    std::vector<uint64_t> windows;
    std::vector<std::string> renames;
    std::vector<std::string> syscalls;
    std::vector<std::string> predictors;
    std::vector<uint32_t> fus;
    uint64_t maxInstructions = 0;
    unsigned jobs = 0;
    unsigned group = 0; // 0 = auto (one fused pass per worker share)
    unsigned retries = 0;
    double deadlineSeconds = 0.0;
    bool small = false;
    bool stream = false;
    bool quiet = false;
    std::string outPath;
    std::string journalPath;
    std::string resumePath;
    engine::SweepJsonOptions json;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: paragraph-sweep [options] --inputs=A,B,... [inputs...]\n"
        "  inputs: workload names, *.ptrc/*.ptrz traces, *.s, *.mc\n"
        "  axes:   --windows=16,64,0  --rename=none,regs,stack,data\n"
        "          --syscalls=stall,ignore\n"
        "          --predictors=perfect,bimodal,taken,nottaken,wrong\n"
        "          --fus=0,2,8\n"
        "  run:    --jobs=N  --group=N (0=auto)  --max=N  --small\n"
        "          --stream  --out=FILE\n"
        "          --no-timing  --no-profiles  --quiet  --list\n"
        "  fault:  --retries=N  --deadline=SECONDS\n"
        "          --journal=FILE  --resume=FILE\n");
    std::exit(2);
}

std::vector<uint64_t>
parseIntList(const std::string &list, const char *flag)
{
    std::vector<uint64_t> out;
    for (const std::string &piece : splitAndTrim(list, ',')) {
        int64_t n = 0;
        if (!parseInt(piece, n) || n < 0) {
            std::fprintf(stderr, "paragraph-sweep: bad %s value '%s'\n",
                         flag, piece.c_str());
            usage();
        }
        out.push_back(static_cast<uint64_t>(n));
    }
    if (out.empty())
        usage();
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        int64_t n = 0;
        if (arg == "--list") {
            for (const auto &w :
                 workloads::WorkloadSuite::instance().all()) {
                std::printf("%-10s %-8s %-10s %s\n", w.name.c_str(),
                            w.language.c_str(), w.benchType.c_str(),
                            w.description.c_str());
            }
            std::exit(0);
        } else if (startsWith(arg, "--inputs=")) {
            for (const std::string &s : splitAndTrim(arg.substr(9), ','))
                if (!s.empty())
                    opt.inputs.push_back(s);
        } else if (startsWith(arg, "--windows=")) {
            opt.windows = parseIntList(arg.substr(10), "--windows");
        } else if (startsWith(arg, "--rename=")) {
            opt.renames = splitAndTrim(arg.substr(9), ',');
        } else if (startsWith(arg, "--syscalls=")) {
            opt.syscalls = splitAndTrim(arg.substr(11), ',');
        } else if (startsWith(arg, "--predictors=")) {
            opt.predictors = splitAndTrim(arg.substr(13), ',');
        } else if (startsWith(arg, "--fus=")) {
            for (uint64_t v : parseIntList(arg.substr(6), "--fus"))
                opt.fus.push_back(static_cast<uint32_t>(v));
        } else if (startsWith(arg, "--jobs=") &&
                   parseInt(arg.substr(7), n) && n > 0) {
            opt.jobs = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--group=") &&
                   parseInt(arg.substr(8), n) && n >= 0) {
            opt.group = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--max=") && parseInt(arg.substr(6), n) &&
                   n >= 0) {
            opt.maxInstructions = static_cast<uint64_t>(n);
        } else if (startsWith(arg, "--out=")) {
            opt.outPath = arg.substr(6);
        } else if (startsWith(arg, "--retries=") &&
                   parseInt(arg.substr(10), n) && n >= 0) {
            opt.retries = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--deadline=")) {
            char *end = nullptr;
            opt.deadlineSeconds = std::strtod(arg.c_str() + 11, &end);
            if (!end || *end != '\0' || opt.deadlineSeconds < 0.0) {
                std::fprintf(stderr,
                             "paragraph-sweep: bad --deadline value '%s'\n",
                             arg.c_str() + 11);
                usage();
            }
        } else if (startsWith(arg, "--journal=")) {
            opt.journalPath = arg.substr(10);
        } else if (startsWith(arg, "--resume=")) {
            opt.resumePath = arg.substr(9);
        } else if (arg == "--small") {
            opt.small = true;
        } else if (arg == "--stream") {
            opt.stream = true;
        } else if (arg == "--no-timing") {
            opt.json.timing = false;
        } else if (arg == "--no-profiles") {
            opt.json.profiles = false;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (!startsWith(arg, "--")) {
            opt.inputs.push_back(arg);
        } else {
            std::fprintf(stderr, "paragraph-sweep: bad argument '%s'\n",
                         arg.c_str());
            usage();
        }
    }
    if (opt.inputs.empty()) {
        std::fprintf(stderr, "paragraph-sweep: no inputs given\n");
        usage();
    }
    return opt;
}

/** Expand one point of the rename axis into config switches. */
void
applyRename(core::AnalysisConfig &cfg, const std::string &value)
{
    if (value == "none") {
        cfg.renameRegisters = false;
        cfg.renameStack = false;
        cfg.renameData = false;
    } else if (value == "regs") {
        cfg.renameRegisters = true;
        cfg.renameStack = false;
        cfg.renameData = false;
    } else if (value == "stack") { // regs + stack (Table 4 column 3)
        cfg.renameRegisters = true;
        cfg.renameStack = true;
        cfg.renameData = false;
    } else if (value == "data" || value == "all") { // regs + all memory
        cfg.renameRegisters = true;
        cfg.renameStack = true;
        cfg.renameData = true;
    } else {
        std::fprintf(stderr, "paragraph-sweep: bad --rename value '%s'\n",
                     value.c_str());
        usage();
    }
}

void
applyPredictor(core::AnalysisConfig &cfg, const std::string &value)
{
    if (value == "perfect")
        cfg.branchPredictor = core::PredictorKind::Perfect;
    else if (value == "bimodal")
        cfg.branchPredictor = core::PredictorKind::Bimodal;
    else if (value == "taken")
        cfg.branchPredictor = core::PredictorKind::AlwaysTaken;
    else if (value == "nottaken")
        cfg.branchPredictor = core::PredictorKind::NeverTaken;
    else if (value == "wrong")
        cfg.branchPredictor = core::PredictorKind::AlwaysWrong;
    else {
        std::fprintf(stderr,
                     "paragraph-sweep: bad --predictors value '%s'\n",
                     value.c_str());
        usage();
    }
}

/**
 * Build the config axis as the cross product of every specified axis.
 * Unspecified axes contribute their single default point, so a plain
 * window sweep stays one-dimensional.
 */
void
buildConfigAxis(const Options &opt,
                std::vector<core::AnalysisConfig> &configs,
                std::vector<std::string> &labels)
{
    std::vector<uint64_t> windows =
        opt.windows.empty() ? std::vector<uint64_t>{0} : opt.windows;
    std::vector<std::string> renames =
        opt.renames.empty() ? std::vector<std::string>{"data"} : opt.renames;
    std::vector<std::string> syscalls =
        opt.syscalls.empty() ? std::vector<std::string>{"stall"}
                             : opt.syscalls;
    std::vector<std::string> predictors =
        opt.predictors.empty() ? std::vector<std::string>{"perfect"}
                               : opt.predictors;
    std::vector<uint32_t> fus =
        opt.fus.empty() ? std::vector<uint32_t>{0} : opt.fus;

    for (uint64_t w : windows) {
        for (const std::string &ren : renames) {
            for (const std::string &sys : syscalls) {
                for (const std::string &pred : predictors) {
                    for (uint32_t fu : fus) {
                        core::AnalysisConfig cfg;
                        cfg.windowSize = w;
                        applyRename(cfg, ren);
                        cfg.sysCallsStall = (sys == "stall");
                        if (sys != "stall" && sys != "ignore") {
                            std::fprintf(stderr,
                                         "paragraph-sweep: bad --syscalls "
                                         "value '%s'\n",
                                         sys.c_str());
                            usage();
                        }
                        applyPredictor(cfg, pred);
                        cfg.totalFuLimit = fu;
                        cfg.maxInstructions = opt.maxInstructions;
                        configs.push_back(cfg);

                        std::string label = "window=" +
                                            (w ? std::to_string(w)
                                               : std::string("unlimited"));
                        label += " rename=" + ren;
                        if (syscalls.size() > 1 || sys != "stall")
                            label += " syscalls=" + sys;
                        if (predictors.size() > 1 || pred != "perfect")
                            label += " predictor=" + pred;
                        if (fus.size() > 1 || fu != 0)
                            label += " fus=" + std::to_string(fu);
                        labels.push_back(label);
                    }
                }
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Options opt = parseArgs(argc, argv);

        std::vector<core::AnalysisConfig> configs;
        std::vector<std::string> labels;
        buildConfigAxis(opt, configs, labels);

        engine::TraceRepository::Options repoOpt;
        repoOpt.scale = opt.small ? workloads::Scale::Small
                                  : workloads::Scale::Full;
        repoOpt.maxRecords = opt.maxInstructions;
        repoOpt.streamFiles = opt.stream;
        engine::TraceRepository repo(repoOpt);

        engine::SweepEngine::Options engineOpt;
        engineOpt.jobs = opt.jobs;
        engineOpt.groupSize = opt.group;
        engineOpt.maxRetries = opt.retries;
        engineOpt.cellDeadlineSeconds = opt.deadlineSeconds;
        engineOpt.journalPath = opt.journalPath;
        engineOpt.journalProfiles = opt.json.profiles;

        engine::JournalData resume;
        if (!opt.resumePath.empty()) {
            resume = engine::loadJournal(opt.resumePath);
            if (resume.profiles != opt.json.profiles) {
                PARA_FATAL("journal %s was written with profiles=%s; rerun "
                           "with the matching --no-profiles setting",
                           opt.resumePath.c_str(),
                           resume.profiles ? "true" : "false");
            }
            // Journaled cells carry no timing, so the merged document only
            // stays byte-identical to a clean run without timing fields.
            opt.json.timing = false;
            engineOpt.resume = &resume;
        }
        if (!opt.quiet) {
            engineOpt.progress = [](size_t done, size_t total,
                                    double minstrPerSec) {
                std::fprintf(stderr,
                             "\rsweep: %zu/%zu jobs  %.1f Minstr/s%s", done,
                             total, minstrPerSec,
                             done == total ? "\n" : "");
                std::fflush(stderr);
            };
        }
        engine::SweepEngine sweeper(engineOpt);

        if (!opt.quiet) {
            std::fprintf(stderr,
                         "sweep: %zu inputs x %zu configs = %zu cells on "
                         "%u worker(s)\n",
                         opt.inputs.size(), configs.size(),
                         opt.inputs.size() * configs.size(),
                         sweeper.jobs());
        }

        engine::SweepResult result =
            sweeper.run(repo, opt.inputs, configs, labels);

        if (!opt.quiet && result.cellsSkipped > 0)
            std::fprintf(stderr, "sweep: %zu cell(s) resumed from %s\n",
                         result.cellsSkipped, opt.resumePath.c_str());
        if (!opt.quiet && result.cellsFailed > 0)
            std::fprintf(stderr,
                         "sweep: %zu cell(s) failed (see \"error\" fields "
                         "in the JSON)\n",
                         result.cellsFailed);

        if (opt.outPath.empty()) {
            engine::writeSweepJson(std::cout, result, opt.json);
        } else {
            std::ofstream out(opt.outPath);
            if (!out)
                PARA_FATAL("cannot open %s", opt.outPath.c_str());
            engine::writeSweepJson(out, result, opt.json);
            if (!opt.quiet)
                std::fprintf(stderr, "sweep: wrote %s\n",
                             opt.outPath.c_str());
        }
        // Partial failure is a success with failed cells in the JSON; a
        // sweep where nothing at all completed is an error.
        bool totalLoss = !result.cells.empty() &&
                         result.cellsFailed == result.cells.size();
        return totalLoss ? 1 : 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "paragraph-sweep: %s\n", e.what());
        return 1;
    }
}
