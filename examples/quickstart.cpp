// Quickstart: the five-minute tour of the library.
//
// Assembles a small program, executes it on the functional simulator to get
// a serial trace, and runs Paragraph over that trace to obtain the critical
// path, available parallelism, and parallelism profile.
//
//   $ ./quickstart
#include <iostream>

#include "casm/assembler.hpp"
#include "core/paragraph.hpp"
#include "core/report.hpp"
#include "sim/machine.hpp"

using namespace paragraph;

int
main()
{
    // 1. An "ordinary program": sum the elements of a small vector.
    casm::Program program = casm::assemble(R"(
        .data
vec:    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3
        .text
main:   la   t0, vec       # element pointer
        li   t1, 10        # remaining count
        li   t2, 0         # accumulator
loop:   lw   t3, 0(t0)
        add  t2, t2, t3
        addi t0, t0, 4
        addi t1, t1, -1
        bgtz t1, loop
        move a0, t2        # print the sum
        li   v0, 1
        syscall
        li   a0, 0         # exit(0)
        li   v0, 5
        syscall
)");

    // 2. Execute it; the machine doubles as a streaming trace source.
    sim::MachineTraceSource source(program);

    // 3. Analyze the serial trace under the paper's dataflow-limit
    //    configuration (all renaming, conservative system calls).
    core::AnalysisConfig config =
        core::AnalysisConfig::dataflowConservative();
    core::Paragraph engine(config);
    core::AnalysisResult result = engine.analyze(source);

    std::cout << "program output: " << source.machine().intOutput()[0]
              << " (expected 39)\n\n";
    core::printSummary(std::cout, "quickstart", config, result);
    std::cout << "\nParallelism profile (ops available per DDG level):\n";
    core::printProfile(std::cout, result);

    // 4. The same trace through a 4-instruction window: a realistic
    //    machine sees far less of this parallelism.
    source.reset();
    core::Paragraph narrow(core::AnalysisConfig::windowed(4));
    core::AnalysisResult windowed = narrow.analyze(source);
    std::cout << "\nwith a 4-instruction window: parallelism "
              << windowed.availableParallelism << " (vs "
              << result.availableParallelism << " unlimited)\n";
    return 0;
}
