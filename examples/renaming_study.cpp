// Renaming study: how much parallelism each storage-renaming step exposes
// for one workload — a single row of the paper's Table 4, with extra
// diagnostics (storage-delayed op counts and live-well sizes).
//
//   $ ./renaming_study [workload] [--small]     (default: fpppp)
#include <cstring>
#include <iostream>

#include "core/paragraph.hpp"
#include "support/ascii_table.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;

int
main(int argc, char **argv)
{
    std::string name = "fpppp";
    workloads::Scale scale = workloads::Scale::Full;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--small") == 0)
            scale = workloads::Scale::Small;
        else
            name = argv[i];
    }

    auto &suite = workloads::WorkloadSuite::instance();
    const workloads::Workload &w = suite.find(name);
    std::cout << "Renaming study for '" << w.name << "': " << w.description
              << "\n\n";

    struct Row
    {
        const char *label;
        core::AnalysisConfig cfg;
    } rows[] = {
        {"no renaming", core::AnalysisConfig::noRenaming()},
        {"registers renamed", core::AnalysisConfig::regsRenamed()},
        {"registers + stack", core::AnalysisConfig::regsStackRenamed()},
        {"registers + all memory", core::AnalysisConfig::regsMemRenamed()},
    };

    AsciiTable table;
    table.addColumn("Condition", AsciiTable::Align::Left);
    table.addColumn("Critical Path");
    table.addColumn("Avail Parallelism");
    table.addColumn("Storage-Delayed Ops");
    table.addColumn("Live-Well Peak");

    for (const Row &row : rows) {
        auto src = suite.makeSource(w, scale);
        core::AnalysisResult res = core::Paragraph(row.cfg).analyze(*src);
        table.beginRow();
        table.cell(std::string(row.label));
        table.cell(res.criticalPathLength);
        table.cell(res.availableParallelism, 2);
        table.cell(res.storageDelayedOps);
        table.cell(res.liveWellPeak);
    }
    table.print(std::cout);

    std::cout << "\nReading the table: every condition places the same "
                 "operations; renaming only\nremoves storage (WAR/WAW) "
                 "edges, so parallelism can only grow downwards the "
                 "table.\n";
    return 0;
}
