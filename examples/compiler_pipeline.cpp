// The full ordinary-program pipeline: MiniC source -> assembly -> simulated
// execution -> DDG analysis -> Graphviz export of the dependency graph.
//
//   $ ./compiler_pipeline            # prints analysis + DOT to stdout
#include <iostream>

#include "casm/assembler.hpp"
#include "core/ddg_builder.hpp"
#include "core/paragraph.hpp"
#include "core/report.hpp"
#include "minic/compiler.hpp"
#include "minic/parser.hpp"
#include "sim/machine.hpp"
#include "trace/buffer.hpp"

using namespace paragraph;

namespace {

const char *const kSource = R"(
// Dot product with a scaling pass: enough structure to show true, storage,
// and control dependencies in one small graph.
float a[8];
float b[8];

float dot(float* x, float* y, int n) {
    int i;
    float s;
    s = 0.0;
    for (i = 0; i < n; i = i + 1) {
        s = s + x[i] * y[i];
    }
    return s;
}

void main() {
    int i;
    for (i = 0; i < 8; i = i + 1) {
        a[i] = itof(i) * 0.5;
        b[i] = itof(8 - i) * 0.25;
    }
    print_float(dot(a, b, 8));
}
)";

} // namespace

int
main(int argc, char **argv)
{
    bool emit_dot = argc > 1 && std::string(argv[1]) == "--dot";

    // Compile and show the generated assembly.
    minic::Module module = minic::parse(kSource);
    std::string assembly = minic::generateAssembly(module);
    if (!emit_dot) {
        std::cout << "---- generated assembly (excerpt) ----\n"
                  << assembly.substr(0, 1200) << "...\n\n";
    }

    casm::Program program = casm::assemble(assembly);
    sim::MachineTraceSource source(program);

    // Capture the trace so it can be analyzed twice and graphed.
    trace::TraceBuffer trace;
    trace.capture(source);

    core::AnalysisConfig cfg = core::AnalysisConfig::dataflowConservative();
    trace::BufferSource replay(trace);
    core::AnalysisResult res = core::Paragraph(cfg).analyze(replay);

    if (emit_dot) {
        // Export the explicit DDG of the first 60 instructions: pipe to
        // `dot -Tsvg` to see levels, true edges, and storage edges.
        trace::TraceBuffer head;
        for (size_t i = 0; i < std::min<size_t>(60, trace.size()); ++i)
            head.push(trace[i]);
        core::AnalysisConfig no_rename = cfg;
        no_rename.renameRegisters = false;
        std::cout << core::buildDdg(head, no_rename).toDot();
        return 0;
    }

    std::cout << "program output: " << source.machine().fpOutput()[0]
              << "\n\n";
    core::printSummary(std::cout, "dot-product", cfg, res);
    core::printDistributions(std::cout, res);

    std::cout << "\nRun with --dot to emit the Graphviz DDG of the first 60 "
                 "instructions.\n";
    return 0;
}
