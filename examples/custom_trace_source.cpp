// Bringing your own trace: Paragraph analyzes anything that implements
// trace::TraceSource, so traces can come from other simulators, binary
// instrumentation, or synthetic models — not just the bundled machine.
//
// This example defines a synthetic "vector triad" trace generator
// (a(i) = b(i) + s * c(i), the STREAM triad) with a configurable recurrence
// every Kth element, and shows how the injected serial chain throttles the
// available parallelism.
//
//   $ ./custom_trace_source
#include <iostream>

#include "core/paragraph.hpp"
#include "support/ascii_table.hpp"
#include "trace/source.hpp"

using namespace paragraph;

namespace {

/** Synthetic STREAM-triad trace: load, load, fmul, fadd, store per element,
 *  plus a true-dependence recurrence chaining every Kth element. */
class TriadSource : public trace::TraceSource
{
  public:
    TriadSource(uint64_t elements, uint64_t recurrence_stride)
        : elements_(elements), stride_(recurrence_stride)
    {
    }

    bool
    next(trace::TraceRecord &rec) override
    {
        uint64_t element = pos_ / 5;
        if (element >= elements_)
            return false;
        uint64_t phase = pos_ % 5;
        ++pos_;

        using trace::Operand;
        using trace::Segment;
        uint64_t b_addr = 0x100000 + element * 8;
        uint64_t c_addr = 0x200000 + element * 8;
        uint64_t a_addr = 0x300000 + element * 8;

        rec = trace::TraceRecord{};
        rec.createsValue = true;
        rec.pc = phase;
        switch (phase) {
          case 0: // f1 <- b[i]
            rec.cls = isa::OpClass::Load;
            rec.addSrc(Operand::mem(b_addr, Segment::Data));
            rec.dest = Operand::fpReg(1);
            break;
          case 1: // f2 <- c[i]
            rec.cls = isa::OpClass::Load;
            rec.addSrc(Operand::mem(c_addr, Segment::Data));
            rec.dest = Operand::fpReg(2);
            break;
          case 2: // f3 <- s * f2
            rec.cls = isa::OpClass::FpMul;
            rec.addSrc(Operand::fpReg(0)); // the scalar s (pre-existing)
            rec.addSrc(Operand::fpReg(2));
            rec.dest = Operand::fpReg(3);
            break;
          case 3: // f4 <- f1 + f3   (with a recurrence every stride_)
            rec.cls = isa::OpClass::FpAddSub;
            rec.addSrc(Operand::fpReg(1));
            rec.addSrc(Operand::fpReg(3));
            if (stride_ && element % stride_ == 0 && element > 0) {
                // couple to the previous chained element's result
                rec.addSrc(Operand::mem(
                    0x300000 + (element - stride_) * 8, Segment::Data));
            }
            rec.dest = Operand::fpReg(4);
            break;
          default: // a[i] <- f4
            rec.cls = isa::OpClass::Store;
            rec.addSrc(Operand::fpReg(4));
            rec.dest = Operand::mem(a_addr, Segment::Data);
            break;
        }
        return true;
    }

    void reset() override { pos_ = 0; }

    std::string
    name() const override
    {
        return "triad/" + std::to_string(stride_);
    }

  private:
    uint64_t elements_;
    uint64_t stride_;
    uint64_t pos_ = 0;
};

} // namespace

int
main()
{
    std::cout << "Synthetic STREAM-triad traces through Paragraph: the "
                 "denser the injected\nrecurrence, the longer the critical "
                 "path.\n\n";
    AsciiTable table;
    table.addColumn("Recurrence stride", AsciiTable::Align::Left);
    table.addColumn("Critical Path");
    table.addColumn("Avail Parallelism");

    for (uint64_t stride : {0u, 512u, 64u, 8u, 1u}) {
        TriadSource src(100000, stride);
        core::Paragraph engine(
            core::AnalysisConfig::dataflowConservative());
        core::AnalysisResult res = engine.analyze(src);
        table.beginRow();
        table.cell(stride == 0 ? std::string("none (fully parallel)")
                               : "every " + std::to_string(stride));
        table.cell(res.criticalPathLength);
        table.cell(res.availableParallelism, 2);
    }
    table.print(std::cout);
    return 0;
}
