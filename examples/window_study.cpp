// Window study: one benchmark's slice of the paper's Figure 8 — how much of
// the total available parallelism a fixed-size contiguous instruction
// window exposes.
//
//   $ ./window_study [workload] [--small]       (default: eqntott)
#include <cstring>
#include <iostream>

#include "core/paragraph.hpp"
#include "support/ascii_table.hpp"
#include "support/string_utils.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;

int
main(int argc, char **argv)
{
    std::string name = "eqntott";
    workloads::Scale scale = workloads::Scale::Full;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--small") == 0)
            scale = workloads::Scale::Small;
        else
            name = argv[i];
    }

    auto &suite = workloads::WorkloadSuite::instance();
    const workloads::Workload &w = suite.find(name);
    std::cout << "Window-size study for '" << w.name << "'\n\n";

    auto ref_src = suite.makeSource(w, scale);
    core::AnalysisResult ref =
        core::Paragraph(core::AnalysisConfig::dataflowConservative())
            .analyze(*ref_src);
    std::cout << "unlimited-window parallelism: "
              << AsciiTable::withCommas(ref.availableParallelism, 2)
              << " over " << AsciiTable::withCommas(ref.instructions)
              << " instructions\n\n";

    AsciiTable table;
    table.addColumn("Window Size");
    table.addColumn("Avail Parallelism");
    table.addColumn("% of Total");
    table.addColumn("Firewalls");
    for (uint64_t win = 1; win <= (1u << 18); win *= 4) {
        auto src = suite.makeSource(w, scale);
        core::AnalysisResult res =
            core::Paragraph(core::AnalysisConfig::windowed(win))
                .analyze(*src);
        table.beginRow();
        table.cell(win);
        table.cell(res.availableParallelism, 2);
        table.cell(strFormat(
            "%.2f%%",
            100.0 * res.availableParallelism / ref.availableParallelism));
        table.cell(res.firewalls);
    }
    table.print(std::cout);

    std::cout << "\n\"If we are interested in only small amounts of "
                 "fine-grain parallelism ... then\nwindow sizes of a few "
                 "hundred instructions are sufficient, but for larger "
                 "levels\nof parallelism, much larger window sizes are "
                 "required.\" (paper, Section 5)\n";
    return 0;
}
