// Tests for the MiniC lexer and parser/semantic analysis.
#include <gtest/gtest.h>

#include "minic/lexer.hpp"
#include "minic/parser.hpp"
#include "support/panic.hpp"

using namespace paragraph;
using namespace paragraph::minic;

TEST(Lexer, BasicTokens)
{
    auto toks = tokenize("int x = 42;");
    ASSERT_EQ(toks.size(), 6u); // int x = 42 ; <end>
    EXPECT_EQ(toks[0].kind, Tok::KwInt);
    EXPECT_EQ(toks[1].kind, Tok::Ident);
    EXPECT_EQ(toks[1].text, "x");
    EXPECT_EQ(toks[2].kind, Tok::Assign);
    EXPECT_EQ(toks[3].kind, Tok::IntLit);
    EXPECT_EQ(toks[3].intValue, 42);
    EXPECT_EQ(toks[4].kind, Tok::Semicolon);
    EXPECT_EQ(toks[5].kind, Tok::End);
}

TEST(Lexer, NumericLiterals)
{
    auto toks = tokenize("0x1F 3.5 2e3 1.5e-2 0");
    EXPECT_EQ(toks[0].intValue, 31);
    EXPECT_EQ(toks[1].kind, Tok::FloatLit);
    EXPECT_DOUBLE_EQ(toks[1].floatValue, 3.5);
    EXPECT_DOUBLE_EQ(toks[2].floatValue, 2000.0);
    EXPECT_DOUBLE_EQ(toks[3].floatValue, 0.015);
    EXPECT_EQ(toks[4].intValue, 0);
}

TEST(Lexer, OperatorsTwoChar)
{
    auto toks = tokenize("== != <= >= && || << >> = < >");
    EXPECT_EQ(toks[0].kind, Tok::Eq);
    EXPECT_EQ(toks[1].kind, Tok::Ne);
    EXPECT_EQ(toks[2].kind, Tok::Le);
    EXPECT_EQ(toks[3].kind, Tok::Ge);
    EXPECT_EQ(toks[4].kind, Tok::AndAnd);
    EXPECT_EQ(toks[5].kind, Tok::OrOr);
    EXPECT_EQ(toks[6].kind, Tok::Shl);
    EXPECT_EQ(toks[7].kind, Tok::Shr);
    EXPECT_EQ(toks[8].kind, Tok::Assign);
    EXPECT_EQ(toks[9].kind, Tok::Lt);
    EXPECT_EQ(toks[10].kind, Tok::Gt);
}

TEST(Lexer, CommentsSkipped)
{
    auto toks = tokenize("a // line\n b /* block\n comment */ c");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
    EXPECT_EQ(toks[2].line, 3);
}

TEST(Lexer, LineNumbersTracked)
{
    auto toks = tokenize("a\nb\n\nc");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, Errors)
{
    EXPECT_THROW(tokenize("@"), FatalError);
    EXPECT_THROW(tokenize("/* unterminated"), FatalError);
}

TEST(Lexer, DoubleIsFloatSynonym)
{
    auto toks = tokenize("double x;");
    EXPECT_EQ(toks[0].kind, Tok::KwFloat);
}

TEST(Parser, GlobalsAndTypes)
{
    Module mod = parse(R"(
int g;
float f = 2.5;
int arr[10];
float m[3][4];
int* p;
int init[3] = {1, -2, 3};
void main() {}
)");
    ASSERT_EQ(mod.globals.size(), 6u);
    EXPECT_EQ(mod.globals[0].type.toString(), "int");
    EXPECT_EQ(mod.globals[1].type.toString(), "float");
    EXPECT_DOUBLE_EQ(mod.globals[1].initFloats[0], 2.5);
    EXPECT_EQ(mod.globals[2].type.toString(), "int[10]");
    EXPECT_EQ(mod.globals[3].type.toString(), "float[3][4]");
    EXPECT_EQ(mod.globals[3].type.byteSize(), 3 * 4 * 8);
    EXPECT_EQ(mod.globals[4].type.toString(), "int*");
    ASSERT_EQ(mod.globals[5].initInts.size(), 3u);
    EXPECT_EQ(mod.globals[5].initInts[1], -2);
}

TEST(Parser, FunctionsAndParams)
{
    Module mod = parse(R"(
int add(int a, int b) { return a + b; }
float scale(float x, int k) { return x * itof(k); }
void uses_array_param(int a[], float* f) {}
void main() {}
)");
    int fi = mod.findFunction("add");
    ASSERT_GE(fi, 0);
    const Function &add = mod.functions[static_cast<size_t>(fi)];
    EXPECT_EQ(add.params.size(), 2u);
    EXPECT_TRUE(add.returnType.isScalarInt());

    int ai = mod.findFunction("uses_array_param");
    const Function &uap = mod.functions[static_cast<size_t>(ai)];
    EXPECT_TRUE(uap.locals[0].type.isPointer()); // int a[] decays
}

TEST(Parser, ImplicitConversionsInsertCasts)
{
    Module mod = parse(R"(
void main() {
    float f;
    int i;
    f = 3;        // literal folded to float
    f = i;        // cast node
    i = f;        // cast node
}
)");
    // Walk main's body: stmt 2 (f = 3) rhs is FloatLit (folded).
    const Function &fn = mod.functions[0];
    const Stmt &assign1 = *fn.body[2];
    EXPECT_EQ(assign1.expr->kids[1]->kind, ExprKind::FloatLit);
    const Stmt &assign2 = *fn.body[3];
    EXPECT_EQ(assign2.expr->kids[1]->kind, ExprKind::Cast);
    const Stmt &assign3 = *fn.body[4];
    EXPECT_EQ(assign3.expr->kids[1]->kind, ExprKind::Cast);
}

TEST(Parser, MixedArithmeticPromotesToFloat)
{
    Module mod = parse(R"(
void main() {
    float f;
    int i;
    f = f + i;
}
)");
    const Stmt &assign = *mod.functions[0].body[2];
    const Expr &add = *assign.expr->kids[1];
    EXPECT_EQ(add.kind, ExprKind::Binary);
    EXPECT_TRUE(add.type.isScalarFloat());
    EXPECT_EQ(add.kids[1]->kind, ExprKind::Cast);
}

TEST(Parser, ComparisonYieldsInt)
{
    Module mod = parse(R"(
void main() {
    float a;
    int r;
    r = a < 2.0;
}
)");
    const Stmt &assign = *mod.functions[0].body[2];
    EXPECT_TRUE(assign.expr->kids[1]->type.isScalarInt());
}

TEST(Parser, RecursionWithoutPrototype)
{
    EXPECT_NO_THROW(parse(R"(
int fact(int n) {
    if (n < 2) { return 1; }
    return n * fact(n - 1);
}
void main() { fact(5); }
)"));
}

TEST(Parser, MutualRecursionNeedsPrototype)
{
    EXPECT_NO_THROW(parse(R"(
int odd(int n);
int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
void main() {}
)"));
}

TEST(ParserErrors, UndeclaredIdentifier)
{
    EXPECT_THROW(parse("void main() { x = 1; }"), FatalError);
}

TEST(ParserErrors, MissingMain)
{
    EXPECT_THROW(parse("int f() { return 1; }"), FatalError);
}

TEST(ParserErrors, UndefinedPrototype)
{
    EXPECT_THROW(parse("int f(int x);\nvoid main() {}"), FatalError);
}

TEST(ParserErrors, ArityMismatch)
{
    EXPECT_THROW(parse(R"(
int f(int a, int b) { return a; }
void main() { f(1); }
)"),
                 FatalError);
}

TEST(ParserErrors, Redeclarations)
{
    EXPECT_THROW(parse("int g; int g; void main() {}"), FatalError);
    EXPECT_THROW(parse("void main() { int x; int x; }"), FatalError);
    EXPECT_THROW(parse(R"(
void f() {}
void f() {}
void main() {}
)"),
                 FatalError);
}

TEST(ParserErrors, BreakOutsideLoop)
{
    EXPECT_THROW(parse("void main() { break; }"), FatalError);
    EXPECT_THROW(parse("void main() { continue; }"), FatalError);
}

TEST(ParserErrors, AssignToArray)
{
    EXPECT_THROW(parse("int a[4];\nvoid main() { a = 0; }"), FatalError);
}

TEST(ParserErrors, IndexNonArray)
{
    EXPECT_THROW(parse("void main() { int x; x[0] = 1; }"), FatalError);
}

TEST(ParserErrors, FloatCondition)
{
    EXPECT_THROW(parse("void main() { float f; if (f) {} }"), FatalError);
}

TEST(ParserErrors, ModuloOnFloat)
{
    EXPECT_THROW(parse("void main() { float f; f = f % 2.0; }"), FatalError);
}

TEST(ParserErrors, ReturnValueMismatch)
{
    EXPECT_THROW(parse("void f() { return 3; }\nvoid main() {}"), FatalError);
    EXPECT_THROW(parse("int f() { return; }\nvoid main() {}"), FatalError);
}

TEST(ParserErrors, VoidVariable)
{
    EXPECT_THROW(parse("void main() { void x; }"), FatalError);
}

TEST(Parser, ScopeShadowing)
{
    EXPECT_NO_THROW(parse(R"(
int x;
void main() {
    int x;
    {
        int x;
        x = 1;
    }
    x = 2;
}
)"));
}

TEST(Parser, ForScopedDeclaration)
{
    EXPECT_NO_THROW(parse(R"(
void main() {
    for (int i = 0; i < 3; i = i + 1) {}
    for (int i = 0; i < 3; i = i + 1) {}
}
)"));
}
