// Differential testing: the AST interpreter (reference semantics) against
// the compile → assemble → simulate pipeline. Any divergence pinpoints a
// bug in the code generator, assembler, or machine.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "minic/compiler.hpp"
#include "minic/interpreter.hpp"
#include "minic/parser.hpp"
#include "sim/machine.hpp"
#include "support/prng.hpp"
#include "support/string_utils.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;

namespace {

struct BothResults
{
    minic::InterpResult interp;
    std::vector<int64_t> machInts;
    std::vector<double> machFloats;
    int32_t machExit;
};

BothResults
runBoth(const std::string &src, std::vector<int32_t> int_input = {},
        std::vector<double> fp_input = {})
{
    BothResults r;
    minic::Module module = minic::parse(src);
    r.interp = minic::interpret(module, int_input, fp_input, 200000000);

    casm::Program prog = minic::compile(src);
    sim::Machine machine(prog);
    machine.setIntInput(int_input);
    machine.setFpInput(fp_input);
    machine.run();
    EXPECT_TRUE(machine.exited());
    r.machInts = machine.intOutput();
    r.machFloats = machine.fpOutput();
    r.machExit = machine.exitCode();
    return r;
}

void
expectSame(const BothResults &r)
{
    ASSERT_EQ(r.interp.intOutput.size(), r.machInts.size());
    for (size_t i = 0; i < r.machInts.size(); ++i)
        ASSERT_EQ(r.interp.intOutput[i], r.machInts[i]) << "int output " << i;
    ASSERT_EQ(r.interp.fpOutput.size(), r.machFloats.size());
    for (size_t i = 0; i < r.machFloats.size(); ++i) {
        // NaN compares unequal to itself; agreeing on NaN is agreement.
        if (std::isnan(r.interp.fpOutput[i]) &&
            std::isnan(r.machFloats[i])) {
            continue;
        }
        ASSERT_DOUBLE_EQ(r.interp.fpOutput[i], r.machFloats[i])
            << "fp output " << i;
    }
}

} // namespace

TEST(Differential, HandWrittenPrograms)
{
    const char *programs[] = {
        R"(
void main() {
    int i;
    int acc;
    acc = -17;
    for (i = 1; i <= 30; i = i + 1) {
        acc = acc * 3 + i;
        if ((acc & 255) > 128) {
            acc = acc - (i << 3);
        }
    }
    print_int(acc);
}
)",
        R"(
int squares[32];
int fill(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        squares[i] = i * i - 7;
    }
    return n;
}
void main() {
    int k;
    k = fill(32);
    print_int(squares[k - 1]);
    print_int(squares[0]);
}
)",
        R"(
float series(int terms) {
    int k;
    float s;
    float sign;
    s = 0.0;
    sign = 1.0;
    for (k = 1; k <= terms; k = k + 1) {
        s = s + sign / itof(k);
        sign = -sign;
    }
    return s;
}
void main() {
    print_float(series(40) * 1000.0);
    print_int(ftoi(series(40) * 1000.0));
}
)",
        R"(
int* make(int n) {
    int* p;
    int i;
    p = alloc_int(n);
    for (i = 0; i < n; i = i + 1) {
        p[i] = i * 3 + 1;
    }
    return p;
}
void main() {
    int* a;
    int* b;
    a = make(10);
    b = a + 4;
    print_int(a[0] + b[0] + b[5]);
}
)",
        R"(
void main() {
    int x;
    x = read_int() * read_int() - read_int();
    print_int(x);
    print_int(x / ((x & 3) + 1));
    print_int(x % 7);
    print_int(-x >> 2);
}
)",
    };
    int which = 0;
    for (const char *src : programs) {
        SCOPED_TRACE(which++);
        expectSame(runBoth(src, {12, -5, 100}, {}));
    }
}

TEST(Differential, WrappingArithmetic)
{
    expectSame(runBoth(R"(
void main() {
    int big;
    big = 2000000000;
    print_int(big + big);
    print_int(big * 3);
    print_int((0 - big) - big);
    print_int(1 << 31);
    print_int((1 << 31) >> 31);
}
)"));
}

TEST(Differential, IntMinDivision)
{
    expectSame(runBoth(R"(
void main() {
    int m;
    m = 1 << 31;
    print_int(m / (0 - 1));
    print_int(m % (0 - 1));
}
)"));
}

TEST(Differential, FloatToIntClamping)
{
    expectSame(runBoth(R"(
void main() {
    print_int(ftoi(3000000000.5));
    print_int(ftoi(-3000000000.5));
    print_int(ftoi(0.0 / 1.0));
    print_int(ftoi(1e18));
}
)"));
}

// ---------------------------------------------------------------------------
// Randomized differential fuzzing, swept over seeds.
// ---------------------------------------------------------------------------

namespace {

/** Generates random MiniC programs whose behaviour is fully defined under
 *  both engines (bounded loops, guarded divisors, masked shifts). */
class ProgramGen
{
  public:
    explicit ProgramGen(uint64_t seed) : prng_(seed) {}

    std::string
    generate()
    {
        std::string src;
        src += "int g0; int g1; int g2; int g3;\n";
        src += "int tab[16];\n";
        // helper sees only its params, the globals, and the table.
        src += "int helper(int a, int b) {\n";
        src += "    int t;\n";
        src += strFormat("    t = (a %s b) %s g0 %s %d;\n", pickOp(),
                         pickOp(), pickOp(),
                         static_cast<int>(prng_.nextInRange(-99, 99)));
        src += strFormat("    if (t < 0) { t = t %s g1; }\n", pickOp());
        src += strFormat("    return t %s tab[(a ^ b) & 15];\n", pickOp());
        src += "}\n";
        src += "void main() {\n";
        src += "    int i;\n    int j;\n    int x;\n    int y;\n";
        src += "    x = 1; y = 2;\n";
        for (int s = 0; s < 12; ++s)
            src += statement(1);
        src += "    print_int(g0); print_int(g1); print_int(g2); "
               "print_int(g3);\n";
        src += "    print_int(x); print_int(y);\n";
        src += "    for (i = 0; i < 16; i = i + 1) { "
               "print_int(tab[i]); }\n";
        src += "}\n";
        return src;
    }

  private:
    Prng prng_;

    const char *
    pickOp()
    {
        static const char *ops[] = {"+", "-", "*", "&", "|", "^"};
        return ops[prng_.nextBelow(6)];
    }

    std::string
    scalar()
    {
        static const char *vars[] = {"g0", "g1", "g2", "g3", "x", "y", "i",
                                     "j"};
        return vars[prng_.nextBelow(8)];
    }

    /** Loop counters are never assignment targets, so loops stay bounded. */
    std::string
    assignTarget()
    {
        static const char *vars[] = {"g0", "g1", "g2", "g3", "x", "y"};
        return vars[prng_.nextBelow(6)];
    }

    std::string
    expr(int depth)
    {
        if (depth <= 0 || prng_.nextBelow(3) == 0) {
            switch (prng_.nextBelow(3)) {
              case 0:
                return std::to_string(prng_.nextInRange(-1000, 1000));
              case 1:
                return scalar();
              default:
                return strFormat("tab[(%s) & 15]", scalar().c_str());
            }
        }
        switch (prng_.nextBelow(8)) {
          case 0:
            return strFormat("(%s %s %s)", expr(depth - 1).c_str(), pickOp(),
                             expr(depth - 1).c_str());
          case 1:
            return strFormat("(%s / ((%s & 7) + 1))", expr(depth - 1).c_str(),
                             expr(depth - 1).c_str());
          case 2:
            return strFormat("(%s %% ((%s & 7) + 1))",
                             expr(depth - 1).c_str(),
                             expr(depth - 1).c_str());
          case 3:
            return strFormat("(%s << (%s & 15))", expr(depth - 1).c_str(),
                             expr(depth - 1).c_str());
          case 4:
            return strFormat("(%s >> (%s & 15))", expr(depth - 1).c_str(),
                             expr(depth - 1).c_str());
          case 5:
            return strFormat("(%s < %s)", expr(depth - 1).c_str(),
                             expr(depth - 1).c_str());
          case 6:
            return strFormat("helper(%s, %s)", expr(depth - 1).c_str(),
                             expr(depth - 1).c_str());
          default:
            return strFormat("(~%s)", expr(depth - 1).c_str());
        }
    }

    std::string
    statement(int depth)
    {
        switch (prng_.nextBelow(depth > 0 ? 5 : 3)) {
          case 0:
            return strFormat("    %s = %s;\n", assignTarget().c_str(),
                             expr(2).c_str());
          case 1:
            return strFormat("    tab[(%s) & 15] = %s;\n", scalar().c_str(),
                             expr(2).c_str());
          case 2:
            return strFormat("    if (%s != 0) { %s = %s; } else { %s = %s; "
                             "}\n",
                             expr(1).c_str(), assignTarget().c_str(),
                             expr(2).c_str(), assignTarget().c_str(),
                             expr(1).c_str());
          case 3:
            return strFormat(
                "    for (j = 0; j < %d; j = j + 1) {\n    %s    }\n",
                static_cast<int>(prng_.nextBelow(6) + 1),
                statement(depth - 1).c_str());
          default:
            // The j guard bounds the loop even when the body rewrites x/y.
            return strFormat("    j = 0;\n    while (j < %d && (x & 63) != "
                             "17) {\n        j = j + 1;\n        x = x + "
                             "1;\n    %s    }\n",
                             static_cast<int>(prng_.nextBelow(40) + 2),
                             statement(depth - 1).c_str());
        }
    }
};

} // namespace

class DifferentialFuzz : public ::testing::TestWithParam<uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range<uint64_t>(1, 26));

TEST_P(DifferentialFuzz, RandomProgramsAgree)
{
    ProgramGen gen(GetParam() * 7919);
    std::string src = gen.generate();
    SCOPED_TRACE(src);
    expectSame(runBoth(src));
}

namespace {

/** FP-flavoured random programs: exercises FP codegen (register homes,
 *  temp spilling, constant pools, conversions) against the interpreter.
 *  Both engines evaluate the same IEEE double operations in the same AST
 *  order, so outputs must match bit-for-bit. */
class FpProgramGen
{
  public:
    explicit FpProgramGen(uint64_t seed) : prng_(seed) {}

    std::string
    generate()
    {
        std::string src;
        src += "float fg0; float fg1;\n";
        src += "float vec[8];\n";
        src += strFormat("float blend(float a, float b) {\n"
                         "    float t;\n"
                         "    t = a %s b %s %s;\n"
                         "    if (t < 0.0) { t = t * -0.5; }\n"
                         "    return t %s fg0;\n"
                         "}\n",
                         fpOp(), fpOp(), fpLit().c_str(), fpOp());
        src += "void main() {\n";
        src += "    int i;\n    float x;\n    float y;\n";
        src += "    x = 1.25; y = -0.75;\n";
        src += "    for (i = 0; i < 8; i = i + 1) { "
               "vec[i] = itof(i * 3 - 4) * 0.125; }\n";
        for (int s = 0; s < 8; ++s) {
            switch (prng_.nextBelow(3)) {
              case 0:
                src += strFormat("    %s = %s;\n", fpTarget(),
                                 fpExpr(2).c_str());
                break;
              case 1:
                src += strFormat("    vec[%d] = %s;\n",
                                 static_cast<int>(prng_.nextBelow(8)),
                                 fpExpr(2).c_str());
                break;
              default:
                src += strFormat(
                    "    for (i = 0; i < %d; i = i + 1) {\n"
                    "        vec[i & 7] = vec[i & 7] %s %s;\n    }\n",
                    static_cast<int>(prng_.nextBelow(5) + 1), fpOp(),
                    fpExpr(1).c_str());
                break;
            }
        }
        src += "    print_float(x); print_float(y);\n";
        src += "    print_float(fg0); print_float(fg1);\n";
        src += "    for (i = 0; i < 8; i = i + 1) { "
               "print_float(vec[i]); }\n";
        src += "    print_int(ftoi(x * 100.0) + (x < y) + (fg0 >= fg1));\n";
        src += "}\n";
        return src;
    }

  private:
    Prng prng_;

    const char *
    fpOp()
    {
        static const char *ops[] = {"+", "-", "*"};
        return ops[prng_.nextBelow(3)];
    }

    std::string
    fpLit()
    {
        return strFormat("%d.%02d",
                         static_cast<int>(prng_.nextInRange(-20, 20)),
                         static_cast<int>(prng_.nextBelow(100)));
    }

    const char *
    fpTarget()
    {
        static const char *vars[] = {"x", "y", "fg0", "fg1"};
        return vars[prng_.nextBelow(4)];
    }

    std::string
    fpExpr(int depth)
    {
        if (depth <= 0 || prng_.nextBelow(3) == 0) {
            switch (prng_.nextBelow(4)) {
              case 0:
                return fpLit();
              case 1:
                return fpTarget();
              case 2:
                return strFormat("vec[%d]",
                                 static_cast<int>(prng_.nextBelow(8)));
              default:
                return strFormat("itof(i + %d)",
                                 static_cast<int>(prng_.nextBelow(10)));
            }
        }
        switch (prng_.nextBelow(4)) {
          case 0:
            return strFormat("(%s %s %s)", fpExpr(depth - 1).c_str(), fpOp(),
                             fpExpr(depth - 1).c_str());
          case 1:
            return strFormat("(%s / (%s * %s + 3.0))",
                             fpExpr(depth - 1).c_str(),
                             fpExpr(depth - 1).c_str(),
                             fpExpr(depth - 1).c_str());
          case 2:
            return strFormat("sqrt(%s * %s + 1.0)",
                             fpExpr(depth - 1).c_str(),
                             fpExpr(depth - 1).c_str());
          default:
            return strFormat("blend(%s, %s)", fpExpr(depth - 1).c_str(),
                             fpExpr(depth - 1).c_str());
        }
    }
};

} // namespace

class FpDifferentialFuzz : public ::testing::TestWithParam<uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Seeds, FpDifferentialFuzz,
                         ::testing::Range<uint64_t>(1, 13));

TEST_P(FpDifferentialFuzz, RandomFloatProgramsAgree)
{
    FpProgramGen gen(GetParam() * 104729);
    std::string src = gen.generate();
    SCOPED_TRACE(src);
    expectSame(runBoth(src));
}

// ---------------------------------------------------------------------------
// The ten workload analogs, interpreted vs simulated (small scale).
// ---------------------------------------------------------------------------

class WorkloadDifferential : public ::testing::TestWithParam<const char *>
{
};

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadDifferential,
                         ::testing::Values("cc1", "doduc", "eqntott",
                                           "espresso", "fpppp", "matrix300",
                                           "nasker", "spice2g6", "tomcatv",
                                           "xlisp"));

TEST_P(WorkloadDifferential, InterpreterMatchesSimulator)
{
    auto &suite = workloads::WorkloadSuite::instance();
    const workloads::Workload &w = suite.find(GetParam());

    minic::Module module = minic::parse(w.source);
    minic::InterpResult ref =
        minic::interpret(module, w.smallInput, {}, 500000000);

    auto src = suite.makeSource(w, workloads::Scale::Small);
    trace::TraceRecord rec;
    while (src->next(rec)) {
    }
    const auto &machine = src->machine();

    ASSERT_EQ(ref.intOutput.size(), machine.intOutput().size());
    for (size_t i = 0; i < ref.intOutput.size(); ++i)
        ASSERT_EQ(ref.intOutput[i], machine.intOutput()[i]) << "out " << i;
    ASSERT_EQ(ref.fpOutput.size(), machine.fpOutput().size());
    for (size_t i = 0; i < ref.fpOutput.size(); ++i) {
        ASSERT_DOUBLE_EQ(ref.fpOutput[i], machine.fpOutput()[i])
            << "fp out " << i;
    }
    EXPECT_EQ(ref.exitCode, machine.exitCode());
}
