// Differential execution tests for the MiniC compiler: compile, simulate,
// and check program outputs against values computed directly in C++.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "minic/compiler.hpp"
#include "minic/parser.hpp"
#include "sim/machine.hpp"
#include "support/panic.hpp"

using namespace paragraph;

namespace {

struct RunResult
{
    std::vector<int64_t> ints;
    std::vector<double> floats;
    int32_t exitCode;
};

RunResult
runMiniC(const std::string &src, std::vector<int32_t> int_input = {},
         std::vector<double> fp_input = {})
{
    casm::Program prog = minic::compile(src);
    sim::Machine machine(prog);
    machine.setIntInput(std::move(int_input));
    machine.setFpInput(std::move(fp_input));
    machine.run();
    EXPECT_TRUE(machine.exited());
    return RunResult{machine.intOutput(), machine.fpOutput(),
                     machine.exitCode()};
}

} // namespace

TEST(MiniC, ArithmeticAndPrecedence)
{
    auto r = runMiniC(R"(
void main() {
    print_int(2 + 3 * 4);
    print_int((2 + 3) * 4);
    print_int(10 - 4 - 3);
    print_int(17 / 5);
    print_int(17 % 5);
    print_int(-7 + 2);
    print_int(1 << 4);
    print_int(256 >> 3);
    print_int(0xF0 & 0x3C);
    print_int(0xF0 | 0x0C);
    print_int(0xF0 ^ 0xFF);
    print_int(~0);
}
)");
    std::vector<int64_t> expect = {14, 20, 3, 3, 2, -5, 16, 32,
                                   0x30, 0xFC, 0x0F, -1};
    EXPECT_EQ(r.ints, expect);
}

TEST(MiniC, ComparisonsAndLogic)
{
    auto r = runMiniC(R"(
void main() {
    print_int(3 < 4);
    print_int(4 < 3);
    print_int(4 <= 4);
    print_int(5 > 2);
    print_int(5 >= 6);
    print_int(7 == 7);
    print_int(7 != 7);
    print_int(1 && 2);
    print_int(1 && 0);
    print_int(0 || 3);
    print_int(0 || 0);
    print_int(!5);
    print_int(!0);
}
)");
    std::vector<int64_t> expect = {1, 0, 1, 1, 0, 1, 0, 1, 0, 1, 0, 0, 1};
    EXPECT_EQ(r.ints, expect);
}

TEST(MiniC, ShortCircuitSkipsSideEffects)
{
    auto r = runMiniC(R"(
int count;
int bump() {
    count = count + 1;
    return 1;
}
void main() {
    count = 0;
    if (0 && bump()) {}
    print_int(count);
    if (1 || bump()) {}
    print_int(count);
    if (1 && bump()) {}
    print_int(count);
}
)");
    std::vector<int64_t> expect = {0, 0, 1};
    EXPECT_EQ(r.ints, expect);
}

TEST(MiniC, ControlFlow)
{
    auto r = runMiniC(R"(
void main() {
    int i;
    int sum;
    sum = 0;
    for (i = 1; i <= 10; i = i + 1) {
        sum = sum + i;
    }
    print_int(sum);

    i = 0;
    while (i < 100) {
        i = i + 7;
        if (i > 50) {
            break;
        }
    }
    print_int(i);

    sum = 0;
    for (i = 0; i < 10; i = i + 1) {
        if (i % 2 == 0) {
            continue;
        }
        sum = sum + i;
    }
    print_int(sum);

    if (sum > 20) {
        print_int(1);
    } else {
        print_int(2);
    }
}
)");
    std::vector<int64_t> expect = {55, 56, 25, 1};
    EXPECT_EQ(r.ints, expect);
}

TEST(MiniC, RecursionFibAndAckermann)
{
    auto r = runMiniC(R"(
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int ack(int m, int n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}
void main() {
    print_int(fib(15));
    print_int(ack(2, 3));
}
)");
    std::vector<int64_t> expect = {610, 9};
    EXPECT_EQ(r.ints, expect);
}

TEST(MiniC, GlobalArraysAndInitializers)
{
    auto r = runMiniC(R"(
int primes[5] = {2, 3, 5, 7, 11};
int grid[4][4];
void main() {
    int i;
    int j;
    int sum;
    sum = 0;
    for (i = 0; i < 5; i = i + 1) {
        sum = sum + primes[i];
    }
    print_int(sum);

    for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 4; j = j + 1) {
            grid[i][j] = i * 10 + j;
        }
    }
    print_int(grid[2][3]);
    print_int(grid[3][0]);
}
)");
    std::vector<int64_t> expect = {28, 23, 30};
    EXPECT_EQ(r.ints, expect);
}

TEST(MiniC, LocalArraysLiveOnStack)
{
    auto r = runMiniC(R"(
void main() {
    int local[8];
    float flocal[4];
    int i;
    for (i = 0; i < 8; i = i + 1) {
        local[i] = i * i;
    }
    print_int(local[7]);
    flocal[2] = 1.5;
    print_float(flocal[2] * 2.0);
    print_int(local[0]); // untouched after init
}
)");
    EXPECT_EQ(r.ints, (std::vector<int64_t>{49, 0}));
    ASSERT_EQ(r.floats.size(), 1u);
    EXPECT_DOUBLE_EQ(r.floats[0], 3.0);
}

TEST(MiniC, PointersAndHeap)
{
    auto r = runMiniC(R"(
void fill(int* p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        p[i] = 100 + i;
    }
}
void main() {
    int* a;
    int* b;
    a = alloc_int(10);
    b = alloc_int(10);
    fill(a, 10);
    fill(b, 5);
    print_int(a[9]);
    print_int(b[4]);
    b = a + 3;          // pointer arithmetic, scaled by 4 bytes
    print_int(b[0]);
    print_int(b[2]);
}
)");
    std::vector<int64_t> expect = {109, 104, 103, 105};
    EXPECT_EQ(r.ints, expect);
}

TEST(MiniC, ArrayDecayToFunctionParam)
{
    auto r = runMiniC(R"(
float total(float* v, int n) {
    int i;
    float s;
    s = 0.0;
    for (i = 0; i < n; i = i + 1) {
        s = s + v[i];
    }
    return s;
}
float rows[2][3];
void main() {
    rows[0][0] = 1.0;
    rows[0][1] = 2.0;
    rows[0][2] = 3.0;
    rows[1][0] = 10.0;
    print_float(total(rows[0], 3));
    print_float(total(rows[1], 3));
}
)");
    ASSERT_EQ(r.floats.size(), 2u);
    EXPECT_DOUBLE_EQ(r.floats[0], 6.0);
    EXPECT_DOUBLE_EQ(r.floats[1], 10.0);
}

TEST(MiniC, FloatMath)
{
    auto r = runMiniC(R"(
void main() {
    float a;
    float b;
    a = 2.25;
    b = 0.75;
    print_float(a + b);
    print_float(a - b);
    print_float(a * b);
    print_float(a / b);
    print_float(-a);
    print_float(sqrt(16.0));
    print_float(itof(7) / 2.0);
    print_int(ftoi(3.99));
    print_int(ftoi(-1.5));
    print_int(a < b);
    print_int(a > b);
    print_int(a == a);
    print_int(a != b);
    print_int(a >= b);
    print_int(b <= a);
}
)");
    ASSERT_EQ(r.floats.size(), 7u);
    EXPECT_DOUBLE_EQ(r.floats[0], 3.0);
    EXPECT_DOUBLE_EQ(r.floats[1], 1.5);
    EXPECT_DOUBLE_EQ(r.floats[2], 1.6875);
    EXPECT_DOUBLE_EQ(r.floats[3], 3.0);
    EXPECT_DOUBLE_EQ(r.floats[4], -2.25);
    EXPECT_DOUBLE_EQ(r.floats[5], 4.0);
    EXPECT_DOUBLE_EQ(r.floats[6], 3.5);
    EXPECT_EQ(r.ints, (std::vector<int64_t>{3, -1, 0, 1, 1, 1, 1, 1}));
}

TEST(MiniC, MixedIntFloatPromotion)
{
    auto r = runMiniC(R"(
void main() {
    float f;
    int i;
    i = 3;
    f = i + 0.5;
    print_float(f);
    f = 2 * f;
    print_float(f);
    i = 1;
    print_int(i < f);
}
)");
    EXPECT_DOUBLE_EQ(r.floats[0], 3.5);
    EXPECT_DOUBLE_EQ(r.floats[1], 7.0);
    EXPECT_EQ(r.ints[0], 1);
}

TEST(MiniC, ReadInputs)
{
    auto r = runMiniC(R"(
void main() {
    int a;
    float x;
    a = read_int();
    x = read_float();
    print_int(a * 2);
    print_float(x + 1.0);
}
)",
                      {21}, {2.5});
    EXPECT_EQ(r.ints[0], 42);
    EXPECT_DOUBLE_EQ(r.floats[0], 3.5);
}

TEST(MiniC, ExitCodeFromMain)
{
    auto r = runMiniC(R"(
int main() {
    return 7;
}
)");
    EXPECT_EQ(r.exitCode, 7);
}

TEST(MiniC, ExplicitExitBuiltin)
{
    auto r = runMiniC(R"(
void main() {
    print_int(1);
    exit(3);
    print_int(2);
}
)");
    EXPECT_EQ(r.exitCode, 3);
    EXPECT_EQ(r.ints, (std::vector<int64_t>{1}));
}

TEST(MiniC, DeepExpressionSpillsAcrossCalls)
{
    // Temps held across calls must be spilled and restored.
    auto r = runMiniC(R"(
int f(int x) { return x * 2; }
void main() {
    print_int(1 + f(2) + f(3) * f(4) + f(f(5)));
    print_int(f(1) + (f(2) + (f(3) + (f(4) + f(5)))));
}
)");
    EXPECT_EQ(r.ints[0], 1 + 4 + 6 * 8 + 20);
    EXPECT_EQ(r.ints[1], 2 + 4 + 6 + 8 + 10);
}

TEST(MiniC, ManyLocalsOverflowToFrame)
{
    // More scalars than callee-saved home registers.
    auto r = runMiniC(R"(
void main() {
    int a; int b; int c; int d; int e; int f; int g; int h;
    int i; int j; int k; int l;
    a = 1; b = 2; c = 3; d = 4; e = 5; f = 6; g = 7; h = 8;
    i = 9; j = 10; k = 11; l = 12;
    print_int(a + b + c + d + e + f + g + h + i + j + k + l);
}
)");
    EXPECT_EQ(r.ints[0], 78);
}

TEST(MiniC, FourIntAndFourFloatParams)
{
    auto r = runMiniC(R"(
float combine(int a, float w, int b, float x, int c, float y, int d, float z) {
    return itof(a * 1000 + b * 100 + c * 10 + d) + w + x + y + z;
}
void main() {
    print_float(combine(1, 0.1, 2, 0.02, 3, 0.003, 4, 0.0004));
}
)");
    EXPECT_NEAR(r.floats[0], 1234.1234, 1e-9);
}

TEST(MiniC, ParamsBeyondFourRejected)
{
    EXPECT_THROW(runMiniC(R"(
int f(int a, int b, int c, int d, int e) { return e; }
void main() { print_int(f(1,2,3,4,5)); }
)"),
                 FatalError);
}

TEST(MiniC, GlobalScalarReadModifyWrite)
{
    auto r = runMiniC(R"(
int counter = 5;
void tick() { counter = counter + 1; }
void main() {
    tick();
    tick();
    tick();
    print_int(counter);
}
)");
    EXPECT_EQ(r.ints[0], 8);
}

TEST(MiniC, AssignmentIsAnExpression)
{
    auto r = runMiniC(R"(
void main() {
    int a;
    int b;
    a = b = 4;
    print_int(a + b);
}
)");
    EXPECT_EQ(r.ints[0], 8);
}

TEST(MiniC, WhileWithComplexCondition)
{
    auto r = runMiniC(R"(
void main() {
    int i;
    int j;
    i = 0;
    j = 10;
    while (i < 5 && j > 7) {
        i = i + 1;
        j = j - 1;
    }
    print_int(i);
    print_int(j);
}
)");
    EXPECT_EQ(r.ints, (std::vector<int64_t>{3, 7}));
}

TEST(MiniC, GcdIterative)
{
    auto r = runMiniC(R"(
int gcd(int a, int b) {
    int t;
    while (b != 0) {
        t = b;
        b = a % b;
        a = t;
    }
    return a;
}
void main() {
    print_int(gcd(1071, 462));
    print_int(gcd(17, 5));
}
)");
    EXPECT_EQ(r.ints, (std::vector<int64_t>{21, 1}));
}

TEST(MiniC, LeafFunctionsHaveNoFrameTraffic)
{
    // A leaf with few scalars must not touch sp at all.
    auto module = minic::parse(R"(
int square(int x) { return x * x; }
void main() { print_int(square(9)); }
)");
    std::string assembly = minic::generateAssembly(module);
    size_t fn = assembly.find("fn_square:");
    size_t fn_end = assembly.find("fn_main:");
    ASSERT_NE(fn, std::string::npos);
    std::string body = assembly.substr(fn, fn_end - fn);
    EXPECT_EQ(body.find("addi sp"), std::string::npos) << body;
    EXPECT_EQ(body.find("sw ra"), std::string::npos) << body;
}

TEST(MiniC, NonLeafSavesAndRestoresRa)
{
    auto module = minic::parse(R"(
int helper(int x) { return x + 1; }
int caller(int x) { return helper(x) * 2; }
void main() { print_int(caller(3)); }
)");
    std::string assembly = minic::generateAssembly(module);
    size_t fn = assembly.find("fn_caller:");
    size_t fn_end = assembly.find("fn_main:");
    std::string body = assembly.substr(fn, fn_end - fn);
    EXPECT_NE(body.find("sw ra"), std::string::npos);
    EXPECT_NE(body.find("lw ra"), std::string::npos);
    EXPECT_NE(body.find("jal fn_helper"), std::string::npos);
}

TEST(MiniC, CalleeSavedRegistersSurviveCalls)
{
    auto r = runMiniC(R"(
int clobber() {
    int a; int b; int c; int d; int e; int f;
    a = 91; b = 92; c = 93; d = 94; e = 95; f = 96;
    return a + b + c + d + e + f;
}
void main() {
    int x;
    int y;
    x = 5;
    y = clobber();
    print_int(x);
    print_int(y - 555);
}
)");
    EXPECT_EQ(r.ints, (std::vector<int64_t>{5, 6}));
}

TEST(MiniC, FloatLocalsAcrossCalls)
{
    auto r = runMiniC(R"(
float noisy() {
    float p; float q; float s;
    p = 9.0; q = 8.0; s = 7.0;
    return p + q + s;
}
void main() {
    float keep;
    keep = 1.25;
    noisy();
    print_float(keep);
}
)");
    EXPECT_DOUBLE_EQ(r.floats[0], 1.25);
}
