// Direct unit tests for the MiniC AST interpreter (the reference
// semantics; pipeline agreement is covered by differential_test.cpp).
#include <gtest/gtest.h>

#include "minic/interpreter.hpp"
#include "minic/parser.hpp"
#include "support/panic.hpp"

using namespace paragraph;
using namespace paragraph::minic;

namespace {

InterpResult
run(const char *src, std::vector<int32_t> ints = {},
    std::vector<double> floats = {}, uint64_t max_steps = 10000000)
{
    return interpret(parse(src), std::move(ints), std::move(floats),
                     max_steps);
}

} // namespace

TEST(Interpreter, ReturnsMainExitCode)
{
    EXPECT_EQ(run("int main() { return 42; }").exitCode, 42);
    EXPECT_EQ(run("void main() { }").exitCode, 0);
}

TEST(Interpreter, ExplicitExitWins)
{
    InterpResult r = run(R"(
int main() {
    print_int(1);
    exit(9);
    print_int(2);
    return 5;
}
)");
    EXPECT_EQ(r.exitCode, 9);
    EXPECT_EQ(r.intOutput, (std::vector<int64_t>{1}));
}

TEST(Interpreter, ExitInsideCalleeStopsCaller)
{
    InterpResult r = run(R"(
int die() { exit(3); return 7; }
void main() {
    print_int(1);
    die();
    print_int(2);
}
)");
    EXPECT_EQ(r.exitCode, 3);
    EXPECT_EQ(r.intOutput, (std::vector<int64_t>{1}));
}

TEST(Interpreter, InputQueuesAndExhaustion)
{
    InterpResult r = run(R"(
void main() {
    print_int(read_int());
    print_int(read_int());
    print_int(read_int());
    print_float(read_float());
    print_float(read_float());
}
)",
                         {5, 6}, {1.5});
    EXPECT_EQ(r.intOutput, (std::vector<int64_t>{5, 6, 0}));
    ASSERT_EQ(r.fpOutput.size(), 2u);
    EXPECT_DOUBLE_EQ(r.fpOutput[0], 1.5);
    EXPECT_DOUBLE_EQ(r.fpOutput[1], 0.0);
}

TEST(Interpreter, StepLimitGuardsRunaways)
{
    EXPECT_THROW(run(R"(
void main() {
    int i;
    i = 1;
    while (i > 0) { i = i | 1; }
}
)",
                     {}, {}, 5000),
                 FatalError);
}

TEST(Interpreter, CallDepthGuardsInfiniteRecursion)
{
    EXPECT_THROW(run(R"(
int down(int n) { return down(n + 1); }
void main() { print_int(down(0)); }
)"),
                 FatalError);
}

TEST(Interpreter, DivisionByZeroIsFatal)
{
    EXPECT_THROW(run(R"(
void main() {
    int z;
    z = 0;
    print_int(5 / z);
}
)"),
                 FatalError);
    EXPECT_THROW(run(R"(
void main() {
    int z;
    z = 0;
    print_int(5 % z);
}
)"),
                 FatalError);
}

TEST(Interpreter, GlobalInitializersApply)
{
    InterpResult r = run(R"(
int a = 7;
float b = 2.5;
int arr[4] = {10, 20, 30};
void main() {
    print_int(a + arr[0] + arr[2] + arr[3]);
    print_float(b);
}
)");
    EXPECT_EQ(r.intOutput, (std::vector<int64_t>{47}));
    EXPECT_DOUBLE_EQ(r.fpOutput[0], 2.5);
}

TEST(Interpreter, LocalArraysAreZeroed)
{
    // Two calls reuse the same stack region; the second must see zeros.
    InterpResult r = run(R"(
int probe(int fill) {
    int buf[8];
    int i;
    int sum;
    if (fill == 1) {
        for (i = 0; i < 8; i = i + 1) { buf[i] = 99; }
    }
    sum = 0;
    for (i = 0; i < 8; i = i + 1) { sum = sum + buf[i]; }
    return sum;
}
void main() {
    print_int(probe(1));
    print_int(probe(0));
}
)");
    EXPECT_EQ(r.intOutput, (std::vector<int64_t>{8 * 99, 0}));
}

TEST(Interpreter, PointerAliasing)
{
    InterpResult r = run(R"(
int g[8];
void main() {
    int* p;
    p = g;
    p[3] = 11;
    g[4] = 22;
    print_int(g[3] + p[4]);
    p = p + 3;
    p[0] = 33;
    print_int(g[3]);
}
)");
    EXPECT_EQ(r.intOutput, (std::vector<int64_t>{33, 33}));
}

TEST(Interpreter, StepsAreCounted)
{
    InterpResult r = run("void main() { print_int(1 + 2); }");
    EXPECT_GT(r.steps, 3u);
    EXPECT_LT(r.steps, 100u);
}
