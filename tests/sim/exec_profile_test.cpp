// Tests for the Pixie-style execution profile.
#include <gtest/gtest.h>

#include <sstream>

#include "casm/assembler.hpp"
#include "sim/exec_profile.hpp"
#include "sim/machine.hpp"

using namespace paragraph;
using namespace paragraph::sim;

TEST(ExecutionProfile, CountsAndTotals)
{
    ExecutionProfile prof(4);
    prof.record(0);
    prof.record(2);
    prof.record(2);
    prof.record(99); // out of range: ignored
    EXPECT_EQ(prof.count(0), 1u);
    EXPECT_EQ(prof.count(1), 0u);
    EXPECT_EQ(prof.count(2), 2u);
    EXPECT_EQ(prof.total(), 3u);
    EXPECT_EQ(prof.touched(), 2u);
}

TEST(ExecutionProfile, HottestOrderingAndTies)
{
    ExecutionProfile prof(5);
    for (int i = 0; i < 5; ++i)
        prof.record(3);
    for (int i = 0; i < 2; ++i)
        prof.record(1);
    for (int i = 0; i < 2; ++i)
        prof.record(4);
    auto hot = prof.hottest(10);
    ASSERT_EQ(hot.size(), 3u); // zero-count entries dropped
    EXPECT_EQ(hot[0], 3u);
    EXPECT_EQ(hot[1], 1u); // tie broken by lower pc
    EXPECT_EQ(hot[2], 4u);
    EXPECT_DOUBLE_EQ(prof.coverage(1), 5.0 / 9.0);
    EXPECT_DOUBLE_EQ(prof.coverage(3), 1.0);
}

TEST(ExecutionProfile, LoopDominatesAProgram)
{
    casm::Program prog = casm::assemble(R"(
main:   li t0, 100
        li t1, 0
loop:   add t1, t1, t0
        addi t0, t0, -1
        bgtz t0, loop
        move a0, t1
        li v0, 5
        syscall
)");
    MachineTraceSource src(prog);
    ExecutionProfile prof =
        ExecutionProfile::collect(src, prog.text.size());
    // Loop body (pcs 2,3,4) executes 100x; straight-line code once.
    EXPECT_EQ(prof.count(2), 100u);
    EXPECT_EQ(prof.count(3), 100u);
    EXPECT_EQ(prof.count(4), 100u);
    EXPECT_EQ(prof.count(0), 1u);
    auto hot = prof.hottest(3);
    ASSERT_EQ(hot.size(), 3u);
    EXPECT_EQ(hot[0], 2u);
    EXPECT_GT(prof.coverage(3), 0.95);

    std::ostringstream oss;
    prof.printHot(oss, prog, 3);
    EXPECT_NE(oss.str().find("add t1, t1, t0"), std::string::npos);
    EXPECT_NE(oss.str().find("bgtz"), std::string::npos);
}

TEST(ExecutionProfile, EmptyProfile)
{
    ExecutionProfile prof(8);
    EXPECT_EQ(prof.total(), 0u);
    EXPECT_TRUE(prof.hottest(4).empty());
    EXPECT_DOUBLE_EQ(prof.coverage(4), 0.0);
}
