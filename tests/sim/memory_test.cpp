// Tests for the sparse paged memory.
#include <gtest/gtest.h>

#include "sim/memory.hpp"

using namespace paragraph;
using namespace paragraph::sim;
using paragraph::trace::Segment;

TEST(Memory, ZeroFilledOnFirstTouch)
{
    Memory mem;
    EXPECT_EQ(mem.read32(0x1000), 0u);
    EXPECT_EQ(mem.read64(0x7fffff00), 0u);
}

TEST(Memory, Word32RoundTrip)
{
    Memory mem;
    mem.write32(0x2000, 0xdeadbeef);
    EXPECT_EQ(mem.read32(0x2000), 0xdeadbeefu);
    // Adjacent word untouched.
    EXPECT_EQ(mem.read32(0x2004), 0u);
}

TEST(Memory, Word64RoundTrip)
{
    Memory mem;
    mem.write64(0x3000, 0x0123456789abcdefULL);
    EXPECT_EQ(mem.read64(0x3000), 0x0123456789abcdefULL);
}

TEST(Memory, DoubleRoundTrip)
{
    Memory mem;
    mem.writeDouble(0x4000, 3.14159);
    EXPECT_DOUBLE_EQ(mem.readDouble(0x4000), 3.14159);
}

TEST(Memory, LittleEndianLayout)
{
    Memory mem;
    mem.write32(0x100, 0x04030201);
    EXPECT_EQ(mem.read32(0x100) & 0xff, 0x01u);
}

TEST(Memory, CrossPageAccess)
{
    Memory mem;
    uint64_t addr = Memory::pageSize - 2; // straddles the page boundary
    mem.write32(addr, 0xa1b2c3d4);
    EXPECT_EQ(mem.read32(addr), 0xa1b2c3d4u);
    uint64_t addr64 = 2 * Memory::pageSize - 4;
    mem.write64(addr64, 0x1122334455667788ULL);
    EXPECT_EQ(mem.read64(addr64), 0x1122334455667788ULL);
}

TEST(Memory, LoadImage)
{
    Memory mem;
    std::vector<uint8_t> image = {1, 2, 3, 4, 5};
    mem.loadImage(0x10000000, image);
    EXPECT_EQ(mem.read32(0x10000000), 0x04030201u);
    EXPECT_EQ(mem.read32(0x10000004) & 0xff, 5u);
}

TEST(Memory, PageCountGrowsOnDemand)
{
    Memory mem;
    EXPECT_EQ(mem.pageCount(), 0u);
    mem.write32(0, 1);
    mem.write32(Memory::pageSize * 10, 1);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(Memory, ClearDropsEverything)
{
    Memory mem;
    mem.write32(0x500, 42);
    mem.clear();
    EXPECT_EQ(mem.pageCount(), 0u);
    EXPECT_EQ(mem.read32(0x500), 0u);
}

TEST(Memory, SegmentClassification)
{
    uint64_t heap_base = 0x10002000;
    EXPECT_EQ(Memory::classify(0x10000000, heap_base), Segment::Data);
    EXPECT_EQ(Memory::classify(0x10001fff, heap_base), Segment::Data);
    EXPECT_EQ(Memory::classify(0x10002000, heap_base), Segment::Heap);
    EXPECT_EQ(Memory::classify(0x20000000, heap_base), Segment::Heap);
    EXPECT_EQ(Memory::classify(Memory::stackFloor, heap_base),
              Segment::Stack);
    EXPECT_EQ(Memory::classify(0x7fffff00, heap_base), Segment::Stack);
}
