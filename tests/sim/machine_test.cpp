// Functional tests for the simulator: opcode semantics, syscalls, and the
// trace records it emits.
#include <gtest/gtest.h>

#include <cmath>

#include "casm/assembler.hpp"
#include "isa/registers.hpp"
#include "sim/machine.hpp"
#include "support/panic.hpp"
#include "trace/buffer.hpp"
#include "trace/stats.hpp"

using namespace paragraph;
using namespace paragraph::sim;
using paragraph::trace::Operand;
using paragraph::trace::Segment;
using paragraph::trace::TraceRecord;

namespace {

/** Assemble, run to completion, return the machine for inspection. */
Machine
runProgram(const std::string &asm_text, const casm::Program *&prog_out,
           std::vector<int32_t> int_input = {})
{
    static std::vector<std::unique_ptr<casm::Program>> keep_alive;
    keep_alive.push_back(
        std::make_unique<casm::Program>(casm::assemble(asm_text)));
    prog_out = keep_alive.back().get();
    Machine m(*keep_alive.back());
    m.setIntInput(std::move(int_input));
    m.run();
    return m;
}

Machine
runProgram(const std::string &asm_text, std::vector<int32_t> int_input = {})
{
    const casm::Program *ignored;
    return runProgram(asm_text, ignored, std::move(int_input));
}

} // namespace

TEST(Machine, IntegerArithmetic)
{
    Machine m = runProgram(R"(
        li t0, 21
        li t1, 4
        add t2, t0, t1
        sub t3, t0, t1
        mul t4, t0, t1
        div t5, t0, t1
        rem t6, t0, t1
)");
    EXPECT_EQ(m.intReg(isa::regT2), 25);
    EXPECT_EQ(m.intReg(isa::regT3), 17);
    EXPECT_EQ(m.intReg(isa::regT4), 84);
    EXPECT_EQ(m.intReg(isa::regT5), 5);
    EXPECT_EQ(m.intReg(isa::regT6), 1);
}

TEST(Machine, NegativeDivisionTruncatesTowardZero)
{
    Machine m = runProgram(R"(
        li t0, -7
        li t1, 2
        div t2, t0, t1
        rem t3, t0, t1
)");
    EXPECT_EQ(m.intReg(isa::regT2), -3);
    EXPECT_EQ(m.intReg(isa::regT3), -1);
}

TEST(Machine, LogicalAndShifts)
{
    Machine m = runProgram(R"(
        li t0, 0xF0
        li t1, 0x3C
        and t2, t0, t1
        or t3, t0, t1
        xor t4, t0, t1
        nor t5, t0, t1
        sll t6, t0, 4
        srl t7, t0, 4
        li t8, -16
        sra t9, t8, 2
)");
    EXPECT_EQ(m.intReg(isa::regT2), 0x30);
    EXPECT_EQ(m.intReg(isa::regT3), 0xFC);
    EXPECT_EQ(m.intReg(isa::regT4), 0xCC);
    EXPECT_EQ(m.intReg(isa::regT5), ~0xFC);
    EXPECT_EQ(m.intReg(isa::regT6), 0xF00);
    EXPECT_EQ(m.intReg(isa::regT7), 0x0F);
    EXPECT_EQ(m.intReg(isa::regT9), -4);
}

TEST(Machine, VariableShiftsMask5Bits)
{
    Machine m = runProgram(R"(
        li t0, 1
        li t1, 33
        sllv t2, t0, t1
)");
    EXPECT_EQ(m.intReg(isa::regT2), 2); // 33 & 31 == 1
}

TEST(Machine, SetLessThan)
{
    Machine m = runProgram(R"(
        li t0, -1
        li t1, 1
        slt t2, t0, t1
        sltu t3, t0, t1
        slti t4, t0, 0
)");
    EXPECT_EQ(m.intReg(isa::regT2), 1);
    EXPECT_EQ(m.intReg(isa::regT3), 0); // 0xffffffff unsigned > 1
    EXPECT_EQ(m.intReg(isa::regT4), 1);
}

TEST(Machine, ZeroRegisterIsImmutable)
{
    Machine m = runProgram(R"(
        li zero, 55
        addi zero, zero, 3
        move t0, zero
)");
    EXPECT_EQ(m.intReg(0), 0);
    EXPECT_EQ(m.intReg(isa::regT0), 0);
}

TEST(Machine, MemoryWordRoundTrip)
{
    Machine m = runProgram(R"(
        .data
var:    .word 123
        .text
        lw t0, var
        addi t0, t0, 1
        sw t0, var
        lw t1, var
)");
    EXPECT_EQ(m.intReg(isa::regT1), 124);
}

TEST(Machine, StackMemory)
{
    Machine m = runProgram(R"(
        addi sp, sp, -16
        li t0, 77
        sw t0, 4(sp)
        lw t1, 4(sp)
        lw t2, 8(sp)       # untouched stack reads as zero
        addi sp, sp, 16
)");
    EXPECT_EQ(m.intReg(isa::regT1), 77);
    EXPECT_EQ(m.intReg(isa::regT2), 0);
}

TEST(Machine, FloatingPoint)
{
    Machine m = runProgram(R"(
        .data
a:      .double 2.5
b:      .double 0.5
        .text
        l.d f0, a
        l.d f1, b
        add.d f2, f0, f1
        sub.d f3, f0, f1
        mul.d f4, f0, f1
        div.d f5, f0, f1
        neg.d f6, f0
        sqrt.d f7, f0
        mov.d f8, f0
        c.lt.d t0, f1, f0
        c.le.d t1, f0, f0
        c.eq.d t2, f0, f1
)");
    EXPECT_DOUBLE_EQ(m.fpReg(2), 3.0);
    EXPECT_DOUBLE_EQ(m.fpReg(3), 2.0);
    EXPECT_DOUBLE_EQ(m.fpReg(4), 1.25);
    EXPECT_DOUBLE_EQ(m.fpReg(5), 5.0);
    EXPECT_DOUBLE_EQ(m.fpReg(6), -2.5);
    EXPECT_DOUBLE_EQ(m.fpReg(7), std::sqrt(2.5));
    EXPECT_DOUBLE_EQ(m.fpReg(8), 2.5);
    EXPECT_EQ(m.intReg(isa::regT0), 1);
    EXPECT_EQ(m.intReg(isa::regT1), 1);
    EXPECT_EQ(m.intReg(isa::regT2), 0);
}

TEST(Machine, Conversions)
{
    Machine m = runProgram(R"(
        li t0, -3
        cvt.d.w f0, t0
        .data
x:      .double 7.9
        .text
        l.d f1, x
        cvt.w.d t1, f1
)");
    EXPECT_DOUBLE_EQ(m.fpReg(0), -3.0);
    EXPECT_EQ(m.intReg(isa::regT1), 7); // truncation
}

TEST(Machine, BranchesAndLoop)
{
    Machine m = runProgram(R"(
        li t0, 5
        li t1, 0
loop:   add t1, t1, t0
        addi t0, t0, -1
        bgtz t0, loop
)");
    EXPECT_EQ(m.intReg(isa::regT1), 15);
    EXPECT_TRUE(m.exited()); // ran off the end cleanly
}

TEST(Machine, AllBranchConditions)
{
    Machine m = runProgram(R"(
        li t0, -1
        li t1, 1
        li t9, 0
        beq t0, t0, L1
        li t9, 99
L1:     bne t0, t1, L2
        li t9, 99
L2:     blez t0, L3
        li t9, 99
L3:     bgtz t1, L4
        li t9, 99
L4:     bltz t0, L5
        li t9, 99
L5:     bgez t1, L6
        li t9, 99
L6:     nop
)");
    EXPECT_EQ(m.intReg(isa::regT9), 0);
}

TEST(Machine, JalAndJr)
{
    Machine m = runProgram(R"(
main:   jal func
        li t1, 2
        j end
func:   li t0, 1
        jr ra
end:    nop
)");
    EXPECT_EQ(m.intReg(isa::regT0), 1);
    EXPECT_EQ(m.intReg(isa::regT1), 2);
}

TEST(Machine, JalrLinksThroughChosenRegister)
{
    Machine m = runProgram(R"(
main:   la t5, func
        jalr t6, t5
        j end
func:   li t0, 42
        jr t6
end:    nop
)");
    EXPECT_EQ(m.intReg(isa::regT0), 42);
}

TEST(Machine, SysCallsPrintReadExit)
{
    Machine m = runProgram(R"(
        li v0, 3
        syscall            # read_int -> v0
        move a0, v0
        li v0, 1
        syscall            # print_int(a0)
        li a0, 9
        li v0, 5
        syscall            # exit(9)
        li t0, 1           # must not execute
)",
                           {1234});
    EXPECT_TRUE(m.exited());
    EXPECT_EQ(m.exitCode(), 9);
    ASSERT_EQ(m.intOutput().size(), 1u);
    EXPECT_EQ(m.intOutput()[0], 1234);
    EXPECT_EQ(m.intReg(isa::regT0), 0);
}

TEST(Machine, ExhaustedInputReadsZero)
{
    Machine m = runProgram(R"(
        li v0, 3
        syscall
        move t0, v0
)");
    EXPECT_EQ(m.intReg(isa::regT0), 0);
}

TEST(Machine, SbrkAllocatesDisjointChunks)
{
    Machine m = runProgram(R"(
        li a0, 16
        li v0, 6
        syscall
        move t0, v0
        li a0, 16
        li v0, 6
        syscall
        move t1, v0
)");
    int32_t first = m.intReg(isa::regT0);
    int32_t second = m.intReg(isa::regT1);
    EXPECT_EQ(second - first, 16);
    EXPECT_EQ(first % 8, 0);
}

TEST(Machine, DivisionByZeroIsFatal)
{
    casm::Program prog = casm::assemble(R"(
        li t0, 1
        li t1, 0
        div t2, t0, t1
)");
    Machine m(prog);
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Machine, TraceRecordsCarryOperands)
{
    casm::Program prog = casm::assemble(R"(
        li t0, 5
        addi t1, t0, 2
        sw t1, 0(sp)
        lw t2, 0(sp)
        beq t1, t2, done
done:   syscall
)");
    // (v0 == 0 is not a valid service, so stop before the syscall.)
    Machine m(prog);
    trace::TraceRecord rec;

    ASSERT_TRUE(m.step(rec)); // li
    EXPECT_EQ(rec.numSrcs, 0);
    EXPECT_TRUE(rec.createsValue);
    EXPECT_EQ(rec.dest, Operand::intReg(isa::regT0));
    EXPECT_EQ(rec.cls, isa::OpClass::IntAlu);

    ASSERT_TRUE(m.step(rec)); // addi
    ASSERT_EQ(rec.numSrcs, 1);
    EXPECT_EQ(rec.srcs[0], Operand::intReg(isa::regT0));

    ASSERT_TRUE(m.step(rec)); // sw
    EXPECT_EQ(rec.cls, isa::OpClass::Store);
    EXPECT_TRUE(rec.createsValue);
    ASSERT_EQ(rec.numSrcs, 2);
    EXPECT_TRUE(rec.dest.isMem());
    EXPECT_EQ(rec.dest.seg, Segment::Stack);

    ASSERT_TRUE(m.step(rec)); // lw
    EXPECT_EQ(rec.cls, isa::OpClass::Load);
    ASSERT_EQ(rec.numSrcs, 2);
    bool has_mem = rec.srcs[0].isMem() || rec.srcs[1].isMem();
    EXPECT_TRUE(has_mem);

    ASSERT_TRUE(m.step(rec)); // beq (taken)
    EXPECT_EQ(rec.cls, isa::OpClass::Control);
    EXPECT_FALSE(rec.createsValue);
}

TEST(Machine, JalRecordCreatesRa)
{
    casm::Program prog = casm::assemble(R"(
        jal f
f:      nop
)");
    Machine m(prog);
    trace::TraceRecord rec;
    ASSERT_TRUE(m.step(rec));
    EXPECT_TRUE(rec.createsValue);
    EXPECT_EQ(rec.dest, Operand::intReg(isa::regRa));
}

TEST(Machine, SegmentClassificationInTrace)
{
    casm::Program prog = casm::assemble(R"(
        .data
g:      .word 1
        .text
        lw t0, g           # data
        lw t1, 0(sp)       # stack
        li a0, 64
        li v0, 6
        syscall            # sbrk
        move t2, v0
        lw t3, 0(t2)       # heap
)");
    Machine m(prog);
    trace::TraceBuffer buf;
    trace::TraceRecord rec;
    while (m.step(rec))
        buf.push(rec);
    auto seg_of_load = [&](size_t idx) {
        for (int s = 0; s < buf[idx].numSrcs; ++s) {
            if (buf[idx].srcs[s].isMem())
                return buf[idx].srcs[s].seg;
        }
        return Segment::None;
    };
    EXPECT_EQ(seg_of_load(0), Segment::Data);
    EXPECT_EQ(seg_of_load(1), Segment::Stack);
    EXPECT_EQ(seg_of_load(6), Segment::Heap);
}

TEST(MachineTraceSource, ResetReproducesIdenticalTrace)
{
    casm::Program prog = casm::assemble(R"(
        li v0, 3
        syscall
        move t0, v0
loop:   addi t0, t0, -1
        bgtz t0, loop
)");
    MachineTraceSource src(prog, {25});
    trace::TraceBuffer first;
    first.capture(src);
    src.reset();
    trace::TraceBuffer second;
    second.capture(src);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_GT(first.size(), 50u);
    for (size_t i = 0; i < first.size(); ++i)
        ASSERT_EQ(first[i], second[i]) << "record " << i;
}

TEST(Machine, RunHonorsMaxInstructions)
{
    casm::Program prog = casm::assemble(R"(
loop:   addi t0, t0, 1
        j loop
)");
    Machine m(prog);
    EXPECT_EQ(m.run(100), 100u);
    EXPECT_FALSE(m.exited());
    EXPECT_EQ(m.instructionsExecuted(), 100u);
}
