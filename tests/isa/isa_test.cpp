// Tests for the ISA definitions: Table 1 latencies, opcode metadata,
// register naming, and the disassembler.
#include <gtest/gtest.h>

#include "isa/instruction.hpp"
#include "isa/op_class.hpp"
#include "isa/opcode.hpp"
#include "isa/registers.hpp"

using namespace paragraph::isa;

// Paper Table 1: Instruction Class Operation Times.
TEST(OpClassLatency, MatchesPaperTable1)
{
    EXPECT_EQ(opLatency(OpClass::IntAlu), 1u);
    EXPECT_EQ(opLatency(OpClass::IntMul), 6u);
    EXPECT_EQ(opLatency(OpClass::IntDiv), 12u);
    EXPECT_EQ(opLatency(OpClass::FpAddSub), 6u);
    EXPECT_EQ(opLatency(OpClass::FpMul), 6u);
    EXPECT_EQ(opLatency(OpClass::FpDiv), 12u);
    EXPECT_EQ(opLatency(OpClass::Load), 1u);
    EXPECT_EQ(opLatency(OpClass::Store), 1u);
    EXPECT_EQ(opLatency(OpClass::SysCall), 1u);
}

TEST(OpClassLatency, NamesAreStable)
{
    EXPECT_STREQ(opClassName(OpClass::IntAlu), "Integer ALU");
    EXPECT_STREQ(opClassName(OpClass::FpDiv), "Floating Point Division");
    EXPECT_STREQ(opClassName(OpClass::SysCall), "System Calls");
}

TEST(Opcode, ClassAssignments)
{
    EXPECT_EQ(opcodeClass(Opcode::Add), OpClass::IntAlu);
    EXPECT_EQ(opcodeClass(Opcode::Mul), OpClass::IntMul);
    EXPECT_EQ(opcodeClass(Opcode::Div), OpClass::IntDiv);
    EXPECT_EQ(opcodeClass(Opcode::Rem), OpClass::IntDiv);
    EXPECT_EQ(opcodeClass(Opcode::FAdd), OpClass::FpAddSub);
    EXPECT_EQ(opcodeClass(Opcode::FMul), OpClass::FpMul);
    EXPECT_EQ(opcodeClass(Opcode::FDiv), OpClass::FpDiv);
    EXPECT_EQ(opcodeClass(Opcode::FSqrt), OpClass::FpDiv);
    EXPECT_EQ(opcodeClass(Opcode::Lw), OpClass::Load);
    EXPECT_EQ(opcodeClass(Opcode::Sd), OpClass::Store);
    EXPECT_EQ(opcodeClass(Opcode::SysCall), OpClass::SysCall);
    EXPECT_EQ(opcodeClass(Opcode::Beq), OpClass::Control);
    EXPECT_EQ(opcodeClass(Opcode::J), OpClass::Control);
    EXPECT_EQ(opcodeClass(Opcode::Jal), OpClass::Control);
}

TEST(Opcode, ControlDetection)
{
    EXPECT_TRUE(isControl(Opcode::Beq));
    EXPECT_TRUE(isControl(Opcode::Jr));
    EXPECT_FALSE(isControl(Opcode::Add));
    EXPECT_FALSE(isControl(Opcode::SysCall));
}

TEST(Opcode, NameRoundTrip)
{
    for (size_t i = 0; i < numOpcodes; ++i) {
        Opcode op = static_cast<Opcode>(i);
        Opcode parsed;
        ASSERT_TRUE(parseOpcodeName(opcodeName(op), parsed))
            << opcodeName(op);
        EXPECT_EQ(parsed, op);
    }
}

TEST(Opcode, UnknownNameRejected)
{
    Opcode op;
    EXPECT_FALSE(parseOpcodeName("frobnicate", op));
    EXPECT_FALSE(parseOpcodeName("", op));
    EXPECT_FALSE(parseOpcodeName("ADD", op)); // case-sensitive
}

TEST(Registers, AbiNames)
{
    EXPECT_EQ(intRegName(0), "zero");
    EXPECT_EQ(intRegName(regSp), "sp");
    EXPECT_EQ(intRegName(regRa), "ra");
    EXPECT_EQ(intRegName(regT0), "t0");
    EXPECT_EQ(fpRegName(12), "f12");
}

TEST(Registers, ParseVariants)
{
    uint8_t idx;
    bool is_fp;
    ASSERT_TRUE(parseRegName("t0", idx, is_fp));
    EXPECT_EQ(idx, regT0);
    EXPECT_FALSE(is_fp);

    ASSERT_TRUE(parseRegName("$sp", idx, is_fp));
    EXPECT_EQ(idx, regSp);

    ASSERT_TRUE(parseRegName("r31", idx, is_fp));
    EXPECT_EQ(idx, 31);
    EXPECT_FALSE(is_fp);

    ASSERT_TRUE(parseRegName("f7", idx, is_fp));
    EXPECT_EQ(idx, 7);
    EXPECT_TRUE(is_fp);

    ASSERT_TRUE(parseRegName("$f31", idx, is_fp));
    EXPECT_EQ(idx, 31);
    EXPECT_TRUE(is_fp);
}

TEST(Registers, ParseRejectsBadNames)
{
    uint8_t idx;
    bool is_fp;
    EXPECT_FALSE(parseRegName("", idx, is_fp));
    EXPECT_FALSE(parseRegName("$", idx, is_fp));
    EXPECT_FALSE(parseRegName("t10", idx, is_fp));
    EXPECT_FALSE(parseRegName("r32", idx, is_fp));
    EXPECT_FALSE(parseRegName("f32", idx, is_fp));
    EXPECT_FALSE(parseRegName("x3", idx, is_fp));
    EXPECT_FALSE(parseRegName("r-1", idx, is_fp));
}

TEST(Disassemble, RepresentativeFormats)
{
    Instruction add{Opcode::Add, regT0, regT1, regT2, 0};
    EXPECT_EQ(disassemble(add), "add t0, t1, t2");

    Instruction addi{Opcode::Addi, regSp, regSp, 0, -16};
    EXPECT_EQ(disassemble(addi), "addi sp, sp, -16");

    Instruction li{Opcode::Li, regV0, 0, 0, 5};
    EXPECT_EQ(disassemble(li), "li v0, 5");

    Instruction lw{Opcode::Lw, regT0, regSp, 0, 8};
    EXPECT_EQ(disassemble(lw), "lw t0, 8(sp)");

    Instruction sw{Opcode::Sw, 0, regSp, regT1, 4};
    EXPECT_EQ(disassemble(sw), "sw t1, 4(sp)");

    Instruction fadd{Opcode::FAdd, 2, 4, 6, 0};
    EXPECT_EQ(disassemble(fadd), "add.d f2, f4, f6");

    Instruction ld{Opcode::Ld, 2, regSp, 0, 16};
    EXPECT_EQ(disassemble(ld), "l.d f2, 16(sp)");

    Instruction fcmp{Opcode::FCLt, regT3, 0, 2, 0};
    EXPECT_EQ(disassemble(fcmp), "c.lt.d t3, f0, f2");

    Instruction beq{Opcode::Beq, 0, regT0, regT1, 12};
    EXPECT_EQ(disassemble(beq), "beq t0, t1, @12");

    Instruction j{Opcode::J, 0, 0, 0, 3};
    EXPECT_EQ(disassemble(j), "j @3");

    Instruction jr{Opcode::Jr, 0, regRa, 0, 0};
    EXPECT_EQ(disassemble(jr), "jr ra");

    Instruction sys{Opcode::SysCall, 0, 0, 0, 0};
    EXPECT_EQ(disassemble(sys), "syscall");

    Instruction nop{Opcode::Nop, 0, 0, 0, 0};
    EXPECT_EQ(disassemble(nop), "nop");

    Instruction cvt{Opcode::CvtDW, 4, regT0, 0, 0};
    EXPECT_EQ(disassemble(cvt), "cvt.d.w f4, t0");
}
