// Tests for Histogram, Log2Histogram, and RunningStats.
#include <gtest/gtest.h>

#include <cmath>

#include "support/histogram.hpp"
#include "support/prng.hpp"

using paragraph::Histogram;
using paragraph::Log2Histogram;
using paragraph::Prng;
using paragraph::RunningStats;

TEST(Histogram, CountsExactValues)
{
    Histogram h(10);
    h.add(3);
    h.add(3);
    h.add(7);
    EXPECT_EQ(h.count(3), 2u);
    EXPECT_EQ(h.count(7), 1u);
    EXPECT_EQ(h.count(0), 0u);
    EXPECT_EQ(h.totalCount(), 3u);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(4);
    h.add(4);  // exact range is [0, 4]
    h.add(5);  // overflow
    h.add(100);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.overflowCount(), 2u);
    EXPECT_EQ(h.totalCount(), 3u);
    EXPECT_EQ(h.maxSample(), 100u);
}

TEST(Histogram, MeanIncludesOverflowSamples)
{
    Histogram h(2);
    h.add(1);
    h.add(9);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, PercentileBasics)
{
    Histogram h(100);
    for (uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(0.50), 50u);
    EXPECT_EQ(h.percentile(0.90), 90u);
    EXPECT_EQ(h.percentile(1.0), 100u);
    EXPECT_EQ(h.percentile(0.01), 1u);
}

TEST(Histogram, PercentileOnEmpty)
{
    Histogram h(8);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Log2Histogram, BucketBoundaries)
{
    EXPECT_EQ(Log2Histogram::bucketFor(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketFor(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketFor(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketFor(3), 2u);
    EXPECT_EQ(Log2Histogram::bucketFor(4), 3u);
    EXPECT_EQ(Log2Histogram::bucketFor(7), 3u);
    EXPECT_EQ(Log2Histogram::bucketFor(8), 4u);
    EXPECT_EQ(Log2Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketLow(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketLow(4), 8u);
}

TEST(Log2Histogram, CountsAndHighestBucket)
{
    Log2Histogram h;
    EXPECT_EQ(h.highestUsedBucket(), 0u);
    h.add(0);
    h.add(5);
    h.add(5);
    h.add(1000);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(Log2Histogram::bucketFor(5)), 2u);
    EXPECT_EQ(h.totalCount(), 4u);
    EXPECT_EQ(h.highestUsedBucket(), Log2Histogram::bucketFor(1000) + 1);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 5 + 5 + 1000) / 4.0);
}

TEST(RunningStats, AgainstDirectComputation)
{
    Prng prng(99);
    RunningStats stats;
    std::vector<double> xs;
    for (int i = 0; i < 10000; ++i) {
        double x = prng.nextDouble() * 100.0 - 50.0;
        xs.push_back(x);
        stats.add(x);
    }
    double mean = 0;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(xs.size());
    double var = 0;
    double mn = xs[0];
    double mx = xs[0];
    for (double x : xs) {
        var += (x - mean) * (x - mean);
        mn = std::min(mn, x);
        mx = std::max(mx, x);
    }
    var /= static_cast<double>(xs.size());

    EXPECT_EQ(stats.count(), xs.size());
    EXPECT_NEAR(stats.mean(), mean, 1e-9);
    EXPECT_NEAR(stats.variance(), var, 1e-6);
    EXPECT_DOUBLE_EQ(stats.min(), mn);
    EXPECT_DOUBLE_EQ(stats.max(), mx);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), 0.0);
    EXPECT_DOUBLE_EQ(stats.max(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats stats;
    stats.add(42.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), 42.0);
    EXPECT_DOUBLE_EQ(stats.max(), 42.0);
}
