// Tests for BucketedProfile — the parallelism-profile distribution.
#include <gtest/gtest.h>

#include "support/bucketed_profile.hpp"
#include "support/prng.hpp"

using paragraph::BucketedProfile;
using paragraph::Prng;

TEST(BucketedProfile, ExactWhenSmall)
{
    BucketedProfile p(16);
    p.add(0);
    p.add(0);
    p.add(1);
    p.add(3);
    EXPECT_EQ(p.bucketWidth(), 1u);
    EXPECT_EQ(p.totalOps(), 4u);
    EXPECT_EQ(p.maxLevel(), 3u);
    auto series = p.series();
    ASSERT_EQ(series.size(), 4u);
    EXPECT_DOUBLE_EQ(series[0].opsPerLevel, 2.0);
    EXPECT_DOUBLE_EQ(series[1].opsPerLevel, 1.0);
    EXPECT_DOUBLE_EQ(series[2].opsPerLevel, 0.0);
    EXPECT_DOUBLE_EQ(series[3].opsPerLevel, 1.0);
}

TEST(BucketedProfile, FoldsWhenRangeExceedsBins)
{
    BucketedProfile p(4);
    p.add(0);
    p.add(1);
    p.add(2);
    p.add(3);
    EXPECT_EQ(p.bucketWidth(), 1u);
    p.add(4); // forces a fold: width 2
    EXPECT_EQ(p.bucketWidth(), 2u);
    auto series = p.series();
    // Levels 0-1 (2 ops), 2-3 (2 ops), 4-4 (1 op over 1 level).
    ASSERT_EQ(series.size(), 3u);
    EXPECT_DOUBLE_EQ(series[0].opsPerLevel, 1.0);
    EXPECT_DOUBLE_EQ(series[1].opsPerLevel, 1.0);
    EXPECT_DOUBLE_EQ(series[2].opsPerLevel, 1.0);
    EXPECT_EQ(series[2].firstLevel, 4u);
    EXPECT_EQ(series[2].lastLevel, 4u);
}

TEST(BucketedProfile, DeepSampleFoldsRepeatedly)
{
    BucketedProfile p(8);
    p.add(1000);
    // width must now cover level 1000 with 8 bins: 128 * 8 = 1024.
    EXPECT_EQ(p.bucketWidth(), 128u);
    EXPECT_EQ(p.totalOps(), 1u);
    EXPECT_EQ(p.maxLevel(), 1000u);
}

TEST(BucketedProfile, MassConservedAcrossFolds)
{
    Prng prng(7);
    BucketedProfile p(64);
    uint64_t total = 0;
    for (int i = 0; i < 10000; ++i) {
        uint64_t level = prng.nextBelow(1u << (prng.nextBelow(20) + 1));
        p.add(level);
        ++total;
    }
    EXPECT_EQ(p.totalOps(), total);
    double mass = 0;
    for (const auto &pt : p.series())
        mass += pt.opsPerLevel *
                static_cast<double>(pt.lastLevel - pt.firstLevel + 1);
    EXPECT_NEAR(mass, static_cast<double>(total), 1e-6);
}

TEST(BucketedProfile, AddWithCount)
{
    BucketedProfile p(16);
    p.add(2, 10);
    EXPECT_EQ(p.totalOps(), 10u);
    EXPECT_DOUBLE_EQ(p.series()[2].opsPerLevel, 10.0);
}

TEST(BucketedProfile, PeakOpsPerLevel)
{
    BucketedProfile p(16);
    p.add(0, 3);
    p.add(1, 7);
    p.add(2, 5);
    EXPECT_DOUBLE_EQ(p.peakOpsPerLevel(), 7.0);
}

TEST(BucketedProfile, EmptySeries)
{
    BucketedProfile p(16);
    EXPECT_TRUE(p.empty());
    EXPECT_TRUE(p.series().empty());
    EXPECT_DOUBLE_EQ(p.peakOpsPerLevel(), 0.0);
}

TEST(BucketedProfile, MergePreservesMass)
{
    BucketedProfile a(64);
    BucketedProfile b(64);
    a.add(1, 5);
    a.add(100, 2);
    b.add(3, 4);
    b.add(50, 1);
    uint64_t total = a.totalOps() + b.totalOps();
    a.merge(b);
    EXPECT_EQ(a.totalOps(), total);
}

TEST(BucketedProfile, LevelZeroOnly)
{
    BucketedProfile p(16);
    p.add(0);
    EXPECT_FALSE(p.empty());
    EXPECT_EQ(p.maxLevel(), 0u);
    auto series = p.series();
    ASSERT_EQ(series.size(), 1u);
    EXPECT_DOUBLE_EQ(series[0].opsPerLevel, 1.0);
}
