// Tests for AsciiTable, string utilities, and the PRNG.
#include <gtest/gtest.h>

#include <sstream>

#include "support/ascii_table.hpp"
#include "support/panic.hpp"
#include "support/prng.hpp"
#include "support/string_utils.hpp"

using namespace paragraph;

TEST(AsciiTable, CommasOnIntegers)
{
    EXPECT_EQ(AsciiTable::withCommas(uint64_t{0}), "0");
    EXPECT_EQ(AsciiTable::withCommas(uint64_t{999}), "999");
    EXPECT_EQ(AsciiTable::withCommas(uint64_t{1000}), "1,000");
    EXPECT_EQ(AsciiTable::withCommas(uint64_t{23302}), "23,302");
    EXPECT_EQ(AsciiTable::withCommas(uint64_t{28696843509}), "28,696,843,509");
}

TEST(AsciiTable, CommasOnDoubles)
{
    EXPECT_EQ(AsciiTable::withCommas(23302.60, 2), "23,302.60");
    EXPECT_EQ(AsciiTable::withCommas(13.28, 2), "13.28");
    EXPECT_EQ(AsciiTable::withCommas(0.32, 2), "0.32");
    EXPECT_EQ(AsciiTable::withCommas(-1234.5, 1), "-1,234.5");
}

TEST(AsciiTable, RendersAlignedColumns)
{
    AsciiTable t;
    t.addColumn("Name", AsciiTable::Align::Left);
    t.addColumn("Value");
    t.beginRow();
    t.cell("alpha");
    t.cell(uint64_t{7});
    t.beginRow();
    t.cell("b");
    t.cell(uint64_t{123456});
    std::string out = t.toString();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("123,456"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    // Every line has the same width.
    std::istringstream iss(out);
    std::string line;
    size_t width = 0;
    while (std::getline(iss, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_LE(line.size(), width + 1);
    }
}

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("\t\n x \r"), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("nospaces"), "nospaces");
}

TEST(StringUtils, SplitAndTrim)
{
    auto parts = splitAndTrim("a, b ,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");

    auto empties = splitAndTrim("x,,y", ',');
    ASSERT_EQ(empties.size(), 3u);
    EXPECT_EQ(empties[1], "");

    auto single = splitAndTrim("only", ',');
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0], "only");
}

TEST(StringUtils, ParseInt)
{
    int64_t v = 0;
    EXPECT_TRUE(parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt("-17", v));
    EXPECT_EQ(v, -17);
    EXPECT_TRUE(parseInt("0x10", v));
    EXPECT_EQ(v, 16);
    EXPECT_TRUE(parseInt("  5  ", v));
    EXPECT_EQ(v, 5);
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("abc", v));
    EXPECT_FALSE(parseInt("12x", v));
    EXPECT_FALSE(parseInt("1.5", v));
}

TEST(StringUtils, ParseDouble)
{
    double v = 0;
    EXPECT_TRUE(parseDouble("3.14", v));
    EXPECT_DOUBLE_EQ(v, 3.14);
    EXPECT_TRUE(parseDouble("-2e3", v));
    EXPECT_DOUBLE_EQ(v, -2000.0);
    EXPECT_TRUE(parseDouble("7", v));
    EXPECT_DOUBLE_EQ(v, 7.0);
    EXPECT_FALSE(parseDouble("", v));
    EXPECT_FALSE(parseDouble("x", v));
    EXPECT_FALSE(parseDouble("1.0y", v));
}

TEST(StringUtils, StrFormat)
{
    EXPECT_EQ(strFormat("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(strFormat("%.2f", 1.239), "1.24");
    std::string longish = strFormat("%0200d", 7);
    EXPECT_EQ(longish.size(), 200u);
}

TEST(Panic, FatalThrowsFatalError)
{
    EXPECT_THROW(PARA_FATAL("boom %d", 3), FatalError);
    try {
        PARA_FATAL("value=%d", 42);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=42");
    }
}

TEST(Prng, Deterministic)
{
    Prng a(1), b(1), c(2);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Prng, NextBelowInRange)
{
    Prng prng(3);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(prng.nextBelow(17), 17u);
        EXPECT_LT(prng.nextBelow(1), 1u);
    }
}

TEST(Prng, NextInRangeInclusive)
{
    Prng prng(4);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = prng.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Prng, NextDoubleInUnitInterval)
{
    Prng prng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = prng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}
