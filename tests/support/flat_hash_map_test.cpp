// Unit and property tests for FlatHashMap (the live well's hash table).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/flat_hash_map.hpp"
#include "support/prng.hpp"

using paragraph::FlatHashMap;
using paragraph::Prng;
using paragraph::mixHash64;

TEST(FlatHashMap, StartsEmpty)
{
    FlatHashMap<uint64_t, int> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_FALSE(map.contains(42));
}

TEST(FlatHashMap, InsertAndFind)
{
    FlatHashMap<uint64_t, int> map;
    map.insertOrAssign(1, 10);
    map.insertOrAssign(2, 20);
    ASSERT_NE(map.find(1), nullptr);
    EXPECT_EQ(*map.find(1), 10);
    ASSERT_NE(map.find(2), nullptr);
    EXPECT_EQ(*map.find(2), 20);
    EXPECT_EQ(map.find(3), nullptr);
    EXPECT_EQ(map.size(), 2u);
}

TEST(FlatHashMap, InsertOrAssignOverwrites)
{
    FlatHashMap<uint64_t, int> map;
    map.insertOrAssign(7, 1);
    map.insertOrAssign(7, 2);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(*map.find(7), 2);
}

TEST(FlatHashMap, SubscriptDefaultConstructs)
{
    FlatHashMap<uint64_t, int> map;
    EXPECT_EQ(map[5], 0);
    map[5] = 99;
    EXPECT_EQ(*map.find(5), 99);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap, EraseRemoves)
{
    FlatHashMap<uint64_t, int> map;
    map.insertOrAssign(1, 10);
    map.insertOrAssign(2, 20);
    EXPECT_TRUE(map.erase(1));
    EXPECT_EQ(map.find(1), nullptr);
    EXPECT_EQ(*map.find(2), 20);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_FALSE(map.erase(1));
}

TEST(FlatHashMap, EraseFromCollisionCluster)
{
    // Force many keys through growth; erase half, verify the rest survive
    // backward-shift deletion.
    FlatHashMap<uint64_t, uint64_t> map;
    for (uint64_t k = 1; k <= 1000; ++k)
        map.insertOrAssign(k, k * 3);
    for (uint64_t k = 1; k <= 1000; k += 2)
        EXPECT_TRUE(map.erase(k));
    EXPECT_EQ(map.size(), 500u);
    for (uint64_t k = 1; k <= 1000; ++k) {
        if (k % 2 == 0) {
            ASSERT_NE(map.find(k), nullptr) << k;
            EXPECT_EQ(*map.find(k), k * 3);
        } else {
            EXPECT_EQ(map.find(k), nullptr) << k;
        }
    }
}

TEST(FlatHashMap, GrowthPreservesEntries)
{
    FlatHashMap<uint64_t, uint64_t> map;
    size_t initial_cap = map.capacity();
    for (uint64_t k = 1; k <= 10000; ++k)
        map.insertOrAssign(k, ~k);
    EXPECT_GT(map.capacity(), initial_cap);
    for (uint64_t k = 1; k <= 10000; ++k) {
        ASSERT_NE(map.find(k), nullptr);
        EXPECT_EQ(*map.find(k), ~k);
    }
}

TEST(FlatHashMap, PeakSizeTracksHighWater)
{
    FlatHashMap<uint64_t, int> map;
    for (uint64_t k = 1; k <= 100; ++k)
        map.insertOrAssign(k, 0);
    for (uint64_t k = 1; k <= 90; ++k)
        map.erase(k);
    EXPECT_EQ(map.size(), 10u);
    EXPECT_EQ(map.peakSize(), 100u);
}

TEST(FlatHashMap, ClearKeepsCapacity)
{
    FlatHashMap<uint64_t, int> map;
    for (uint64_t k = 1; k <= 500; ++k)
        map.insertOrAssign(k, 1);
    size_t cap = map.capacity();
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.capacity(), cap);
    EXPECT_EQ(map.find(13), nullptr);
}

TEST(FlatHashMap, ForEachVisitsEveryEntryOnce)
{
    FlatHashMap<uint64_t, uint64_t> map;
    for (uint64_t k = 1; k <= 257; ++k)
        map.insertOrAssign(k, k);
    uint64_t sum = 0;
    size_t count = 0;
    map.forEach([&](uint64_t key, uint64_t &value) {
        sum += value;
        EXPECT_EQ(key, value);
        ++count;
    });
    EXPECT_EQ(count, 257u);
    EXPECT_EQ(sum, 257u * 258u / 2);
}

TEST(FlatHashMap, ReservedConstructorAvoidsEarlyGrowth)
{
    FlatHashMap<uint64_t, int> map(1000);
    size_t cap = map.capacity();
    for (uint64_t k = 1; k <= 1000; ++k)
        map.insertOrAssign(k, 0);
    EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatHashMap, MemoryBytesMatchesCapacity)
{
    FlatHashMap<uint64_t, uint64_t> map;
    EXPECT_EQ(map.memoryBytes(),
              map.capacity() * sizeof(FlatHashMap<uint64_t, uint64_t>::Slot));
}

TEST(FlatHashMap, HashMixerSpreadsSequentialKeys)
{
    // Adjacent keys must not map to adjacent hashes (would cause clustering
    // for register indices and sequential addresses).
    int adjacent = 0;
    for (uint64_t k = 0; k < 1000; ++k) {
        if (mixHash64(k) + 1 == mixHash64(k + 1))
            ++adjacent;
    }
    EXPECT_EQ(adjacent, 0);
}

TEST(FlatHashMap, FindOrInsertCreatesThenFinds)
{
    FlatHashMap<uint64_t, int> map;
    auto [v1, fresh1] = map.findOrInsert(42, 7);
    EXPECT_TRUE(fresh1);
    EXPECT_EQ(*v1, 7);
    // A second probe must find the existing entry and ignore the default.
    auto [v2, fresh2] = map.findOrInsert(42, 99);
    EXPECT_FALSE(fresh2);
    EXPECT_EQ(*v2, 7);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap, FindOrInsertRehashesDuringInsert)
{
    // Fill to exactly the load-factor threshold, then findOrInsert a fresh
    // key: the probe must abort, grow the table, and re-probe — with every
    // prior entry surviving the mid-insert rehash.
    FlatHashMap<uint64_t, uint64_t> map;
    uint64_t k = 1;
    size_t cap = map.capacity();
    while ((map.size() + 1) * 8 <= cap * 7) {
        map.findOrInsert(k, k + 1);
        ++k;
    }
    uint64_t epoch_before = map.epoch();
    auto [value, fresh] = map.findOrInsert(k, k + 1);
    EXPECT_TRUE(fresh);
    EXPECT_EQ(*value, k + 1);
    EXPECT_GT(map.capacity(), cap);
    EXPECT_GT(map.epoch(), epoch_before) << "rehash must invalidate handles";
    for (uint64_t key = 1; key < k; ++key) {
        ASSERT_NE(map.find(key), nullptr) << key;
        EXPECT_EQ(*map.find(key), key + 1);
    }
}

TEST(FlatHashMap, FindOrInsertPointerValidAfterDisplacement)
{
    // Robin-hood insertion displaces richer occupants mid-cluster. The
    // returned pointer must always reference the key just inserted, and any
    // displacement must advance epoch() so held handles get revalidated.
    FlatHashMap<uint64_t, uint64_t> map(4096); // no rehash during the test
    uint64_t epoch0 = map.epoch();
    bool saw_displacement = false;
    for (uint64_t key = 1; key <= 2000; ++key) {
        uint64_t before = map.epoch();
        auto [value, fresh] = map.findOrInsert(key, key * 5);
        ASSERT_TRUE(fresh);
        ASSERT_EQ(*value, key * 5) << "pointer must track the displaced slot";
        if (map.epoch() != before)
            saw_displacement = true;
    }
    EXPECT_TRUE(saw_displacement) << "2000 keys should collide at least once";
    EXPECT_GT(map.epoch(), epoch0);
    for (uint64_t key = 1; key <= 2000; ++key) {
        ASSERT_NE(map.find(key), nullptr) << key;
        EXPECT_EQ(*map.find(key), key * 5);
    }
}

TEST(FlatHashMap, EpochStableHandlesStayValid)
{
    // The live well's contract: handles from findOrInsert stay usable while
    // epoch() is unchanged; when it moves, re-find by key.
    FlatHashMap<uint64_t, uint64_t> map;
    Prng prng(99);
    std::vector<std::pair<uint64_t, uint64_t *>> handles;
    uint64_t epoch = map.epoch();
    for (uint64_t key = 1; key <= 5000; ++key) {
        auto [value, fresh] = map.findOrInsert(key, key ^ 0xabcdULL);
        ASSERT_TRUE(fresh);
        if (map.epoch() != epoch) {
            // Entries may have moved: revalidate every held handle.
            for (auto &[k, ptr] : handles)
                ptr = map.find(k);
            epoch = map.epoch();
        }
        handles.emplace_back(key, value);
        if (prng.nextBelow(4) == 0) {
            // Handles must read back correct values between mutations.
            auto &[k, ptr] = handles[prng.nextBelow(handles.size())];
            ASSERT_NE(ptr, nullptr);
            ASSERT_EQ(*ptr, k ^ 0xabcdULL) << k;
        }
    }
}

TEST(FlatHashMapProperty, FindOrInsertMatchesStdUnorderedMap)
{
    Prng prng(777);
    FlatHashMap<uint64_t, uint64_t> map;
    std::unordered_map<uint64_t, uint64_t> ref;
    for (int op = 0; op < 100000; ++op) {
        uint64_t key = prng.nextBelow(2048) + 1;
        if (prng.nextBelow(5) == 0) {
            EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
        } else {
            uint64_t def = prng.next();
            auto [value, fresh] = map.findOrInsert(key, def);
            auto [it, inserted] = ref.try_emplace(key, def);
            EXPECT_EQ(fresh, inserted);
            EXPECT_EQ(*value, it->second);
        }
        ASSERT_EQ(map.size(), ref.size());
    }
}

// Differential property test: random operation sequences behave exactly like
// std::unordered_map.
TEST(FlatHashMapProperty, MatchesStdUnorderedMap)
{
    Prng prng(12345);
    FlatHashMap<uint64_t, uint64_t> map;
    std::unordered_map<uint64_t, uint64_t> ref;
    for (int op = 0; op < 200000; ++op) {
        uint64_t key = prng.nextBelow(4096) + 1;
        switch (prng.nextBelow(4)) {
          case 0:
          case 1: {
            uint64_t value = prng.next();
            map.insertOrAssign(key, value);
            ref[key] = value;
            break;
          }
          case 2: {
            bool erased = map.erase(key);
            EXPECT_EQ(erased, ref.erase(key) > 0);
            break;
          }
          default: {
            uint64_t *found = map.find(key);
            auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(found, nullptr);
            } else {
                ASSERT_NE(found, nullptr);
                EXPECT_EQ(*found, it->second);
            }
            break;
          }
        }
        ASSERT_EQ(map.size(), ref.size());
    }
}
