// Unit tests for the deterministic failpoint registry
// (support/failpoint.hpp): policy semantics, seeded replayability, spec
// parsing, and the describe/activeSites introspection the daemon's
// --health query reports.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/failpoint.hpp"

namespace {

using namespace paragraph;

class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { failpoint::reset(); }
    void TearDown() override { failpoint::reset(); }

    std::string
    mustConfigure(const std::string &spec)
    {
        std::string error;
        EXPECT_TRUE(failpoint::configure(spec, error)) << error;
        return error;
    }
};

TEST_F(FailpointTest, UnconfiguredSiteNeverFires)
{
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(failpoint::shouldFire("no.such.site"));
    EXPECT_EQ(failpoint::activeSites(), 0u);
    EXPECT_EQ(failpoint::totalFires(), 0u);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce)
{
    mustConfigure("a.site=once");
    EXPECT_TRUE(failpoint::shouldFire("a.site"));
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(failpoint::shouldFire("a.site"));
    EXPECT_EQ(failpoint::totalFires(), 1u);
    EXPECT_EQ(failpoint::activeSites(), 0u); // exhausted
}

TEST_F(FailpointTest, OnceWithOffsetPassesNThenFiresOnce)
{
    mustConfigure("a.site=once:3");
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(failpoint::shouldFire("a.site")) << "eval " << i;
    EXPECT_TRUE(failpoint::shouldFire("a.site"));
    EXPECT_FALSE(failpoint::shouldFire("a.site"));
    EXPECT_EQ(failpoint::totalFires(), 1u);
}

TEST_F(FailpointTest, AfterFiresOnEveryEvaluationPastN)
{
    mustConfigure("a.site=after:2");
    EXPECT_FALSE(failpoint::shouldFire("a.site"));
    EXPECT_FALSE(failpoint::shouldFire("a.site"));
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(failpoint::shouldFire("a.site"));
    EXPECT_EQ(failpoint::totalFires(), 5u);
    EXPECT_EQ(failpoint::activeSites(), 1u);
}

TEST_F(FailpointTest, ProbabilityOneAlwaysFires)
{
    mustConfigure("a.site=prob:1.0");
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(failpoint::shouldFire("a.site"));
}

TEST_F(FailpointTest, ProbabilityScheduleReplaysFromTheSeed)
{
    auto sample = [this](uint64_t seed) {
        failpoint::reset();
        failpoint::setSeed(seed);
        mustConfigure("a.site=prob:0.5");
        std::vector<bool> fires;
        for (int i = 0; i < 64; ++i)
            fires.push_back(failpoint::shouldFire("a.site"));
        return fires;
    };
    std::vector<bool> first = sample(42);
    std::vector<bool> again = sample(42);
    std::vector<bool> other = sample(43);
    EXPECT_EQ(first, again);
    EXPECT_NE(first, other);
    // A fair-ish coin over 64 draws: both outcomes must appear.
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FailpointTest, SitesDrawIndependentStreams)
{
    failpoint::setSeed(7);
    mustConfigure("site.one=prob:0.5");
    mustConfigure("site.two=prob:0.5");
    std::vector<bool> one, two;
    for (int i = 0; i < 64; ++i) {
        one.push_back(failpoint::shouldFire("site.one"));
        two.push_back(failpoint::shouldFire("site.two"));
    }
    EXPECT_NE(one, two); // distinct per-site streams from the same seed
}

TEST_F(FailpointTest, OffRemovesASite)
{
    mustConfigure("a.site=after:0");
    EXPECT_TRUE(failpoint::shouldFire("a.site"));
    mustConfigure("a.site=off");
    EXPECT_FALSE(failpoint::shouldFire("a.site"));
    EXPECT_EQ(failpoint::activeSites(), 0u);
}

TEST_F(FailpointTest, ConfigureListIsAllOrNothing)
{
    std::string error;
    EXPECT_FALSE(failpoint::configureList(
        "good.site=once;bad.site=banana", error));
    EXPECT_NE(error.find("bad.site"), std::string::npos);
    // The good spec before the bad one must not have been applied.
    EXPECT_FALSE(failpoint::shouldFire("good.site"));

    EXPECT_TRUE(failpoint::configureList(
        "good.site=once; other.site=after:1", error))
        << error;
    EXPECT_EQ(failpoint::activeSites(), 2u);
}

TEST_F(FailpointTest, MalformedSpecsAreRejected)
{
    std::string error;
    for (const char *bad :
         {"nopolicy", "=once", "a.site=prob:0", "a.site=prob:1.5",
          "a.site=prob:x", "a.site=after:-1", "a.site=once:x",
          "a.site=sometimes"}) {
        error.clear();
        EXPECT_FALSE(failpoint::configure(bad, error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST_F(FailpointTest, DescribeReportsPolicyAndCounters)
{
    mustConfigure("b.site=prob:0.25");
    mustConfigure("a.site=once:1");
    (void)failpoint::shouldFire("a.site");
    (void)failpoint::shouldFire("a.site");
    EXPECT_EQ(failpoint::describe(),
              "a.site=once:1:2/1;b.site=prob:0.25:0/0");
    failpoint::reset();
    EXPECT_EQ(failpoint::describe(), "");
}

} // namespace
