// Unit tests for the Paragraph engine: placement rules, latencies,
// firewalls, windows, renaming switches, metrics, and bounds.
#include <gtest/gtest.h>

#include "core/paragraph.hpp"
#include "tests/core/trace_helpers.hpp"

using namespace paragraph;
using namespace paragraph::core;
using namespace paragraph::testhelpers;

TEST(Placement, LoadImmediateGoesToTopLevel)
{
    Paragraph engine;
    engine.process(alu(1, {})); // no sources
    EXPECT_EQ(engine.lastPlacedLevel(), 0);
}

TEST(Placement, ChainFollowsLatency)
{
    Paragraph engine;
    engine.process(alu(1, {}));                                 // L0
    engine.process(typed(isa::OpClass::IntMul, 2, {1}));        // 0+6 -> L6
    EXPECT_EQ(engine.lastPlacedLevel(), 6);
    engine.process(typed(isa::OpClass::IntDiv, 3, {2}));        // 6+12 -> L18
    EXPECT_EQ(engine.lastPlacedLevel(), 18);
    engine.process(typed(isa::OpClass::FpAddSub, 4, {3}));      // +6 -> L24
    EXPECT_EQ(engine.lastPlacedLevel(), 24);
    engine.process(alu(5, {4}));                                // +1 -> L25
    EXPECT_EQ(engine.lastPlacedLevel(), 25);
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.criticalPathLength, 26u);
}

TEST(Placement, CustomLatencyTableHonored)
{
    AnalysisConfig cfg;
    cfg.latency[static_cast<size_t>(isa::OpClass::IntAlu)] = 3;
    Paragraph engine(cfg);
    engine.process(alu(1, {}));
    EXPECT_EQ(engine.lastPlacedLevel(), 2); // occupies levels 0..2
    engine.process(alu(2, {1}));
    EXPECT_EQ(engine.lastPlacedLevel(), 5);
}

TEST(Placement, IndependentOpsShareLevels)
{
    Paragraph engine;
    for (uint8_t r = 1; r <= 6; ++r)
        engine.process(alu(r, {}));
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.criticalPathLength, 1u);
    EXPECT_DOUBLE_EQ(res.availableParallelism, 6.0);
}

TEST(Placement, PreExistingValuesDoNotDelay)
{
    Paragraph engine;
    engine.process(alu(1, {7, 8})); // r7, r8 never written: pre-existing
    EXPECT_EQ(engine.lastPlacedLevel(), 0);
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.preExistingValues, 2u);
}

TEST(Placement, MemoryRawChain)
{
    Paragraph engine;
    engine.process(alu(1, {}));          // L0
    engine.process(store(0x100, 1));     // L1 (reads r1@0)
    engine.process(load(2, 0x100));      // L2
    EXPECT_EQ(engine.lastPlacedLevel(), 2);
}

TEST(Placement, ControlRecordsAreNotPlaced)
{
    Paragraph engine;
    engine.process(branch({1}));
    EXPECT_EQ(engine.lastPlacedLevel(), -1);
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.instructions, 1u);
    EXPECT_EQ(res.placedOps, 0u);
    EXPECT_EQ(res.criticalPathLength, 0u);
}

TEST(Firewall, ConservativeSysCallStallsLaterOps)
{
    Paragraph engine(AnalysisConfig::dataflowConservative());
    engine.process(typed(isa::OpClass::IntMul, 1, {})); // L5 (deepest)
    engine.process(syscall());                          // L0; firewall at 6
    engine.process(alu(3, {}));                         // floor: L6
    EXPECT_EQ(engine.lastPlacedLevel(), 6);
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.firewalls, 1u);
    EXPECT_EQ(res.sysCalls, 1u);
}

TEST(Firewall, OptimisticSysCallIgnored)
{
    Paragraph engine(AnalysisConfig::dataflowOptimistic());
    engine.process(typed(isa::OpClass::IntMul, 1, {}));
    engine.process(syscall());
    EXPECT_EQ(engine.lastPlacedLevel(), -1); // not placed
    engine.process(alu(3, {}));
    EXPECT_EQ(engine.lastPlacedLevel(), 0);
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.firewalls, 0u);
    EXPECT_EQ(res.sysCalls, 1u); // still counted
}

TEST(Firewall, SysCallValueStillFlowsWhenConservative)
{
    Paragraph engine(AnalysisConfig::dataflowConservative());
    engine.process(syscall()); // writes v0 at L0
    engine.process(alu(3, {2})); // reads v0
    EXPECT_EQ(engine.lastPlacedLevel(), 1);
}

TEST(StorageDeps, WawOnUnreadValue)
{
    AnalysisConfig cfg;
    cfg.renameRegisters = false;
    Paragraph engine(cfg);
    engine.process(typed(isa::OpClass::IntMul, 1, {})); // r1 created at L5
    engine.process(alu(1, {}));                         // rewrite r1: must follow
    EXPECT_EQ(engine.lastPlacedLevel(), 6);
}

TEST(StorageDeps, WarWaitsForReader)
{
    AnalysisConfig cfg;
    cfg.renameRegisters = false;
    Paragraph engine(cfg);
    engine.process(alu(1, {}));                          // r1@0
    engine.process(typed(isa::OpClass::IntMul, 2, {1})); // reads r1, L6
    engine.process(alu(1, {}));                          // overwrite r1
    EXPECT_EQ(engine.lastPlacedLevel(), 7); // after the reader completes
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.storageDelayedOps, 1u);
}

TEST(StorageDeps, SegmentSelectivity)
{
    // Stack renaming off, data renaming on: only stack rewrites stall.
    AnalysisConfig cfg;
    cfg.renameStack = false;
    cfg.renameData = true;
    Paragraph stack_engine(cfg);
    stack_engine.process(alu(1, {}));
    stack_engine.process(store(0x100, 1, Segment::Stack)); // L1
    stack_engine.process(store(0x100, 1, Segment::Stack)); // WAW -> L2
    EXPECT_EQ(stack_engine.lastPlacedLevel(), 2);

    Paragraph data_engine(cfg);
    data_engine.process(alu(1, {}));
    data_engine.process(store(0x200, 1, Segment::Data)); // L1
    data_engine.process(store(0x200, 1, Segment::Data)); // renamed -> L1
    EXPECT_EQ(data_engine.lastPlacedLevel(), 1);

    // Heap follows the data switch.
    Paragraph heap_engine(cfg);
    heap_engine.process(alu(1, {}));
    heap_engine.process(store(0x300, 1, Segment::Heap));
    heap_engine.process(store(0x300, 1, Segment::Heap));
    EXPECT_EQ(heap_engine.lastPlacedLevel(), 1);
}

TEST(Window, SizeOneSerializesEverything)
{
    AnalysisConfig cfg = AnalysisConfig::windowed(1);
    Paragraph engine(cfg);
    // Six independent immediates: with W=1 each lands strictly below the
    // previous one.
    for (uint8_t r = 1; r <= 6; ++r) {
        engine.process(alu(r, {}));
        EXPECT_EQ(engine.lastPlacedLevel(), r - 1);
    }
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.criticalPathLength, 6u);
    EXPECT_DOUBLE_EQ(res.availableParallelism, 1.0);
}

TEST(Window, BoundsOpsPerLevel)
{
    AnalysisConfig cfg = AnalysisConfig::windowed(3);
    Paragraph engine(cfg);
    for (uint8_t i = 0; i < 12; ++i)
        engine.process(alu(static_cast<uint8_t>(1 + (i % 6)), {}));
    AnalysisResult res = engine.finish();
    // 12 independent ops through a 3-wide window: exactly ceil(12/3) + ...
    // at least 4 levels; and no level can exceed 3 ops.
    EXPECT_GE(res.criticalPathLength, 4u);
    for (const auto &pt : res.profile.series())
        EXPECT_LE(pt.opsPerLevel, 3.0);
}

TEST(Window, UnplacedRecordsOccupySlots)
{
    // Branches take window slots but leave no firewall.
    AnalysisConfig cfg = AnalysisConfig::windowed(2);
    Paragraph engine(cfg);
    engine.process(branch({1}));
    engine.process(branch({1}));
    engine.process(alu(1, {}));
    EXPECT_EQ(engine.lastPlacedLevel(), 0); // no floor raised
}

TEST(Window, LargeWindowEqualsUnlimited)
{
    TraceBuffer buf = randomTrace(42, 2000);
    trace::BufferSource a(buf), b(buf);
    Paragraph unlimited(AnalysisConfig::dataflowConservative());
    AnalysisResult r1 = unlimited.analyze(a);
    Paragraph windowed(AnalysisConfig::windowed(1u << 20));
    AnalysisResult r2 = windowed.analyze(b);
    EXPECT_EQ(r1.criticalPathLength, r2.criticalPathLength);
    EXPECT_EQ(r1.placedOps, r2.placedOps);
}

TEST(Metrics, ProfileMassEqualsPlacedOps)
{
    TraceBuffer buf = randomTrace(7, 5000);
    trace::BufferSource src(buf);
    Paragraph engine;
    AnalysisResult res = engine.analyze(src);
    EXPECT_EQ(res.profile.totalOps(), res.placedOps);
    EXPECT_EQ(res.criticalPathLength, res.profile.maxLevel() + 1);
    EXPECT_DOUBLE_EQ(res.availableParallelism,
                     static_cast<double>(res.placedOps) /
                         static_cast<double>(res.criticalPathLength));
}

TEST(Metrics, SharingCountsReaders)
{
    Paragraph engine;
    engine.process(alu(1, {}));    // value v in r1
    engine.process(alu(2, {1}));   // read 1
    engine.process(alu(3, {1}));   // read 2
    engine.process(alu(4, {1}));   // read 3
    engine.process(alu(1, {}));    // overwrite: v dies with 3 uses
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.sharing.count(3), 1u);
}

TEST(Metrics, LifetimeSpansCreationToLastUse)
{
    Paragraph engine;
    engine.process(alu(1, {}));                          // r1@0
    engine.process(typed(isa::OpClass::IntMul, 2, {}));  // r2@5
    engine.process(alu(3, {1, 2}));                      // @6 reads r1
    engine.process(alu(1, {}));                          // r1 dies
    AnalysisResult res = engine.finish();
    // r1 lived from level 0 to its reader's level 6.
    EXPECT_EQ(res.lifetimes.count(6), 1u);
}

TEST(Metrics, UnusedValueHasZeroLifetime)
{
    Paragraph engine;
    engine.process(alu(1, {}));
    engine.process(alu(1, {}));
    AnalysisResult res = engine.finish();
    // Both values of r1 die unread: the overwritten one and the one still
    // live at finish().
    EXPECT_EQ(res.lifetimes.count(0), 2u);
    EXPECT_EQ(res.sharing.count(0), 2u);
}

TEST(Metrics, LiveWellPeakAndFinal)
{
    Paragraph engine;
    for (uint8_t r = 1; r <= 5; ++r)
        engine.process(alu(r, {}));
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.liveWellFinal, 5u);
    EXPECT_GE(res.liveWellPeak, 5u);
}

TEST(Bounds, MaxInstructionsTruncates)
{
    AnalysisConfig cfg;
    cfg.maxInstructions = 100;
    TraceBuffer buf = randomTrace(3, 1000);
    trace::BufferSource src(buf);
    Paragraph engine(cfg);
    AnalysisResult res = engine.analyze(src);
    EXPECT_EQ(res.instructions, 100u);
    EXPECT_TRUE(engine.done());
}

TEST(Bounds, EmptyTraceYieldsZeros)
{
    Paragraph engine;
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.instructions, 0u);
    EXPECT_EQ(res.criticalPathLength, 0u);
    EXPECT_DOUBLE_EQ(res.availableParallelism, 0.0);
}

TEST(Bounds, AnalyzeResetsBetweenRuns)
{
    TraceBuffer buf = randomTrace(9, 500);
    trace::BufferSource src(buf);
    Paragraph engine;
    AnalysisResult first = engine.analyze(src);
    src.reset();
    AnalysisResult second = engine.analyze(src);
    EXPECT_EQ(first.criticalPathLength, second.criticalPathLength);
    EXPECT_EQ(first.placedOps, second.placedOps);
    EXPECT_EQ(first.liveWellPeak, second.liveWellPeak);
}

TEST(Config, DescribeMentionsSwitches)
{
    EXPECT_NE(AnalysisConfig::dataflowConservative().describe().find(
                  "syscalls=stall"),
              std::string::npos);
    EXPECT_NE(AnalysisConfig::dataflowOptimistic().describe().find(
                  "syscalls=ignore"),
              std::string::npos);
    EXPECT_NE(AnalysisConfig::noRenaming().describe().find("rename=none"),
              std::string::npos);
    EXPECT_NE(AnalysisConfig::windowed(64).describe().find("window=64"),
              std::string::npos);
}

TEST(Config, PresetSwitchValues)
{
    auto none = AnalysisConfig::noRenaming();
    EXPECT_FALSE(none.renameRegisters);
    EXPECT_FALSE(none.renameStack);
    EXPECT_FALSE(none.renameData);

    auto regs = AnalysisConfig::regsRenamed();
    EXPECT_TRUE(regs.renameRegisters);
    EXPECT_FALSE(regs.renameStack);

    auto rs = AnalysisConfig::regsStackRenamed();
    EXPECT_TRUE(rs.renameStack);
    EXPECT_FALSE(rs.renameData);

    auto all = AnalysisConfig::regsMemRenamed();
    EXPECT_TRUE(all.renameData);
}
