// Equivalence suite for the hot-path overhaul: a deliberately simple
// reference analyzer — single hash-map live well (no split register files,
// no handles), two-phase find-then-insert probes, frontier-less linear-scan
// FU placement — must produce results identical to the optimized Paragraph
// across the full switch matrix and all three drive paths (record-at-a-time
// process(), streaming analyze(TraceSource&), bulk analyze(TraceBuffer&)).
//
// Every comparable AnalysisResult field is checked exactly, including the
// complete bin contents of the parallelism profile, both histograms, and the
// storage profile series. Only analysisSeconds (wall clock) and
// liveWellPeakBytes (representation-specific by design) are exempt.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/branch_predictor.hpp"
#include "core/multi.hpp"
#include "core/paragraph.hpp"
#include "core/window.hpp"
#include "support/flat_hash_map.hpp"
#include "tests/core/trace_helpers.hpp"
#include "trace/buffer.hpp"
#include "trace/last_use.hpp"

namespace paragraph {
namespace {

using core::AnalysisConfig;
using core::AnalysisResult;
using core::LiveValue;
using core::Paragraph;
using core::PredictorKind;
using core::SlidingWindow;
using trace::locationKey;
using trace::Operand;
using trace::Segment;
using trace::TraceBuffer;
using trace::TraceRecord;

/** First-fit functional-unit placement by plain linear scan: no saturation
 *  frontiers, no skip pointers. The optimized FuThrottle must agree with
 *  this on every placement. */
class ReferenceThrottle
{
  public:
    explicit ReferenceThrottle(const AnalysisConfig &cfg)
        : pipelined_(cfg.pipelinedFus),
          totalLimit_(cfg.totalFuLimit),
          classLimit_(cfg.fuLimit)
    {
        enabled_ = totalLimit_ > 0;
        for (uint32_t lim : classLimit_) {
            if (lim > 0)
                enabled_ = true;
        }
    }

    bool enabled() const { return enabled_; }

    int64_t
    place(isa::OpClass cls, int64_t min_issue, uint32_t span)
    {
        if (!enabled_)
            return min_issue;
        int64_t issue = min_issue;
        while (!fits(cls, issue, span))
            ++issue;
        reserve(cls, issue, span);
        return issue;
    }

  private:
    bool enabled_ = false;
    bool pipelined_ = false;
    uint32_t totalLimit_ = 0;
    std::array<uint32_t, isa::numOpClasses> classLimit_ = {};
    std::array<std::vector<uint32_t>, isa::numOpClasses> usage_;
    std::vector<uint32_t> totalUsage_;

    static uint32_t
    at(const std::vector<uint32_t> &v, int64_t level)
    {
        size_t idx = static_cast<size_t>(level);
        return idx < v.size() ? v[idx] : 0;
    }

    bool
    fits(isa::OpClass cls, int64_t issue, uint32_t span) const
    {
        uint32_t levels = pipelined_ ? 1 : span;
        uint32_t class_limit = classLimit_[static_cast<size_t>(cls)];
        const auto &class_usage = usage_[static_cast<size_t>(cls)];
        for (uint32_t i = 0; i < levels; ++i) {
            int64_t level = issue + static_cast<int64_t>(i);
            if (class_limit > 0 && at(class_usage, level) >= class_limit)
                return false;
            if (totalLimit_ > 0 && at(totalUsage_, level) >= totalLimit_)
                return false;
        }
        return true;
    }

    void
    reserve(isa::OpClass cls, int64_t issue, uint32_t span)
    {
        uint32_t levels = pipelined_ ? 1 : span;
        auto bump = [](std::vector<uint32_t> &v, int64_t level) {
            size_t idx = static_cast<size_t>(level);
            if (idx >= v.size())
                v.resize(idx + 1, 0);
            ++v[idx];
        };
        for (uint32_t i = 0; i < levels; ++i) {
            int64_t level = issue + static_cast<int64_t>(i);
            if (classLimit_[static_cast<size_t>(cls)] > 0)
                bump(usage_[static_cast<size_t>(cls)], level);
            if (totalLimit_ > 0)
                bump(totalUsage_, level);
        }
    }
};

/** The placement algorithm in its plainest form: every location hashes into
 *  one map, every phase re-probes by key. */
class ReferenceAnalyzer
{
  public:
    explicit ReferenceAnalyzer(AnalysisConfig cfg)
        : cfg_(cfg),
          throttle_(cfg),
          predictor_(cfg.branchPredictor, cfg.predictorTableBits)
    {
        if (cfg_.windowSize > 0)
            window_ = std::make_unique<SlidingWindow>(cfg_.windowSize);
        result_.profile = BucketedProfile(cfg_.profileBins);
        result_.storageProfile = IntervalProfile(cfg_.profileBins);
    }

    AnalysisResult
    run(const TraceBuffer &buffer)
    {
        for (const TraceRecord &rec : buffer.records()) {
            if (cfg_.maxInstructions &&
                result_.instructions >= cfg_.maxInstructions)
                break;
            ++result_.instructions;
            step(rec);
        }
        well_.forEach(
            [this](uint64_t, const LiveValue &lv) { retire(lv); });
        result_.liveWellFinal = well_.size();
        result_.liveWellPeak = well_.peakSize();
        result_.criticalPathLength =
            deepest_ >= 0 ? static_cast<uint64_t>(deepest_) + 1 : 0;
        result_.availableParallelism =
            result_.criticalPathLength
                ? static_cast<double>(result_.placedOps) /
                      static_cast<double>(result_.criticalPathLength)
                : 0.0;
        return result_;
    }

  private:
    AnalysisConfig cfg_;
    FlatHashMap<uint64_t, LiveValue> well_;
    ReferenceThrottle throttle_;
    core::BranchPredictor predictor_;
    std::unique_ptr<SlidingWindow> window_;
    AnalysisResult result_;
    int64_t highest_ = 0;
    int64_t deepest_ = -1;

    void
    raiseFloor(int64_t level)
    {
        if (level > highest_) {
            highest_ = level;
            ++result_.firewalls;
        }
    }

    LiveValue *
    findOrCreatePre(uint64_t key)
    {
        if (LiveValue *lv = well_.find(key))
            return lv;
        ++result_.preExistingValues;
        return &well_.insertOrAssign(
            key, LiveValue{highest_ - 1, highest_ - 1, 0, true});
    }

    bool
    renamed(const Operand &op) const
    {
        switch (op.kind) {
          case Operand::Kind::IntReg:
          case Operand::Kind::FpReg:
            return cfg_.renameRegisters;
          case Operand::Kind::Mem:
            return op.seg == Segment::Stack ? cfg_.renameStack
                                            : cfg_.renameData;
          default:
            return true;
        }
    }

    void
    retire(const LiveValue &lv)
    {
        if (lv.preExisting)
            return;
        if (cfg_.collectLifetimes) {
            result_.lifetimes.add(
                static_cast<uint64_t>(lv.deepestAccess - lv.level));
        }
        if (cfg_.collectSharing)
            result_.sharing.add(lv.useCount);
        if (cfg_.collectStorageProfile && lv.level >= 0) {
            result_.storageProfile.add(
                static_cast<uint64_t>(lv.level),
                static_cast<uint64_t>(lv.deepestAccess));
        }
    }

    void
    step(const TraceRecord &rec)
    {
        if (window_) {
            int64_t displaced = window_->willEnter();
            if (displaced != SlidingWindow::notPlaced)
                raiseFloor(displaced + 1);
        }
        if (rec.isSysCall)
            ++result_.sysCalls;
        if (rec.isCondBranch) {
            ++result_.condBranches;
            if (predictor_.kind() != PredictorKind::Perfect &&
                !predictor_.predictAndUpdate(rec.pc, rec.branchTaken)) {
                ++result_.branchMispredictions;
                int64_t resolve = highest_;
                for (int s = 0; s < rec.numSrcs; ++s) {
                    LiveValue *lv =
                        findOrCreatePre(locationKey(rec.srcs[s]));
                    if (lv->level + 1 > resolve)
                        resolve = lv->level + 1;
                }
                raiseFloor(resolve);
            }
        }

        bool place = rec.createsValue;
        if (rec.isSysCall && !cfg_.sysCallsStall)
            place = false;

        int64_t level = SlidingWindow::notPlaced;
        if (place)
            level = placeRecord(rec);

        if (rec.isSysCall && cfg_.sysCallsStall)
            raiseFloor(deepest_ + 1);
        if (window_)
            window_->entered(level);
    }

    int64_t
    placeRecord(const TraceRecord &rec)
    {
        // True data dependencies.
        int64_t issue = highest_;
        for (int s = 0; s < rec.numSrcs; ++s) {
            LiveValue *lv = findOrCreatePre(locationKey(rec.srcs[s]));
            if (lv->level + 1 > issue)
                issue = lv->level + 1;
        }
        // Storage dependency on the destination.
        const bool has_dest = rec.dest.valid();
        const uint64_t dkey = has_dest ? locationKey(rec.dest) : 0;
        if (has_dest && !renamed(rec.dest)) {
            if (LiveValue *dp = well_.find(dkey)) {
                if (dp->deepestAccess + 1 > issue) {
                    issue = dp->deepestAccess + 1;
                    ++result_.storageDelayedOps;
                }
            }
        }
        // Resource dependencies.
        const uint32_t top = cfg_.latency[static_cast<size_t>(rec.cls)];
        if (throttle_.enabled()) {
            int64_t adjusted = throttle_.place(rec.cls, issue, top);
            if (adjusted > issue)
                ++result_.fuDelayedOps;
            issue = adjusted;
        }
        const int64_t ldest = issue + static_cast<int64_t>(top) - 1;

        // Read accesses (re-probed by key; no handles anywhere).
        for (int s = 0; s < rec.numSrcs; ++s) {
            LiveValue *lv = well_.find(locationKey(rec.srcs[s]));
            ++lv->useCount;
            if (ldest > lv->deepestAccess)
                lv->deepestAccess = ldest;
        }
        // Two-pass deadness.
        if (cfg_.useLastUseEviction && rec.lastUseMask) {
            for (int s = 0; s < rec.numSrcs; ++s) {
                if (!(rec.lastUseMask & (1u << s)))
                    continue;
                uint64_t key = locationKey(rec.srcs[s]);
                if (LiveValue *lv = well_.find(key)) {
                    retire(*lv);
                    well_.erase(key);
                }
            }
        }
        // The created value displaces the previous occupant.
        if (has_dest) {
            if (LiveValue *prev = well_.find(dkey)) {
                retire(*prev);
                *prev = LiveValue{ldest, ldest, 0, false};
            } else {
                well_.insertOrAssign(dkey,
                                     LiveValue{ldest, ldest, 0, false});
            }
        }

        ++result_.placedOps;
        result_.profile.add(static_cast<uint64_t>(ldest));
        if (ldest > deepest_)
            deepest_ = ldest;
        return ldest;
    }
};

void
expectHistogramsEqual(const Histogram &ref, const Histogram &got,
                      const std::string &what)
{
    EXPECT_EQ(ref.totalCount(), got.totalCount()) << what;
    EXPECT_EQ(ref.overflowCount(), got.overflowCount()) << what;
    EXPECT_EQ(ref.maxSample(), got.maxSample()) << what;
    ASSERT_EQ(ref.exactRange(), got.exactRange()) << what;
    for (uint64_t v = 0; v < ref.exactRange(); ++v)
        ASSERT_EQ(ref.count(v), got.count(v)) << what << " bin " << v;
}

void
expectResultsEqual(const AnalysisResult &ref, const AnalysisResult &got,
                   const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(ref.instructions, got.instructions);
    EXPECT_EQ(ref.placedOps, got.placedOps);
    EXPECT_EQ(ref.sysCalls, got.sysCalls);
    EXPECT_EQ(ref.firewalls, got.firewalls);
    EXPECT_EQ(ref.preExistingValues, got.preExistingValues);
    EXPECT_EQ(ref.storageDelayedOps, got.storageDelayedOps);
    EXPECT_EQ(ref.fuDelayedOps, got.fuDelayedOps);
    EXPECT_EQ(ref.condBranches, got.condBranches);
    EXPECT_EQ(ref.branchMispredictions, got.branchMispredictions);
    EXPECT_EQ(ref.criticalPathLength, got.criticalPathLength);
    EXPECT_EQ(ref.availableParallelism, got.availableParallelism);
    EXPECT_EQ(ref.liveWellPeak, got.liveWellPeak);
    EXPECT_EQ(ref.liveWellFinal, got.liveWellFinal);

    ASSERT_EQ(ref.profile.numBins(), got.profile.numBins());
    EXPECT_EQ(ref.profile.totalOps(), got.profile.totalOps());
    EXPECT_EQ(ref.profile.maxLevel(), got.profile.maxLevel());
    EXPECT_EQ(ref.profile.bucketWidth(), got.profile.bucketWidth());
    for (size_t b = 0; b < ref.profile.numBins(); ++b)
        ASSERT_EQ(ref.profile.binCount(b), got.profile.binCount(b))
            << "profile bin " << b;

    expectHistogramsEqual(ref.lifetimes, got.lifetimes, "lifetimes");
    expectHistogramsEqual(ref.sharing, got.sharing, "sharing");

    EXPECT_EQ(ref.storageProfile.intervals(), got.storageProfile.intervals());
    EXPECT_EQ(ref.storageProfile.maxLevel(), got.storageProfile.maxLevel());
    EXPECT_EQ(ref.storageProfile.bucketWidth(),
              got.storageProfile.bucketWidth());
    EXPECT_EQ(ref.storageProfile.meanLive(), got.storageProfile.meanLive());
    EXPECT_EQ(ref.storageProfile.peakLive(), got.storageProfile.peakLive());
    auto ref_series = ref.storageProfile.series();
    auto got_series = got.storageProfile.series();
    ASSERT_EQ(ref_series.size(), got_series.size());
    for (size_t i = 0; i < ref_series.size(); ++i) {
        ASSERT_EQ(ref_series[i].firstLevel, got_series[i].firstLevel) << i;
        ASSERT_EQ(ref_series[i].lastLevel, got_series[i].lastLevel) << i;
        ASSERT_EQ(ref_series[i].liveValues, got_series[i].liveValues) << i;
    }
}

/** Run the reference and all three optimized drive paths; everything must
 *  agree exactly. */
void
checkAllPaths(const TraceBuffer &buffer, const AnalysisConfig &cfg,
              const std::string &what)
{
    AnalysisResult ref = ReferenceAnalyzer(cfg).run(buffer);

    Paragraph bulk(cfg);
    expectResultsEqual(ref, bulk.analyze(buffer), what + " [bulk]");

    trace::BufferSource src(buffer);
    Paragraph streaming(cfg);
    expectResultsEqual(ref, streaming.analyze(src), what + " [stream]");

    Paragraph scalar(cfg);
    for (const TraceRecord &rec : buffer.records()) {
        if (scalar.done())
            break;
        scalar.process(rec);
    }
    expectResultsEqual(ref, scalar.finish(), what + " [scalar]");
}

/** The full switch matrix of paper Section 3.2: window x renaming x syscall
 *  assumption x predictor x FU limits x eviction policy. Trace depth stays
 *  below profileBins so profile folding never depends on the live well's
 *  end-of-trace iteration order (which is representation-specific). */
TEST(HotPathEquivalence, FullSwitchMatrix)
{
    TraceBuffer buffer = testhelpers::randomTrace(2026, 1000);
    TraceBuffer annotated(buffer.records());
    trace::annotateLastUses(annotated);

    const struct
    {
        const char *name;
        bool regs, data, stack;
    } renames[] = {
        {"rename-all", true, true, true},
        {"rename-none", false, false, false},
        {"rename-regs", true, false, false},
        {"rename-regs+data", true, true, false},
    };
    const struct
    {
        const char *name;
        uint32_t total;
        uint32_t intAlu;
        bool pipelined;
    } fus[] = {
        {"fu-none", 0, 0, false},
        {"fu-total4", 4, 0, false},
        {"fu-alu2-pipelined", 3, 2, true},
    };

    for (uint64_t window : {uint64_t{0}, uint64_t{64}}) {
        for (const auto &rn : renames) {
            for (bool stall : {true, false}) {
                for (PredictorKind pred :
                     {PredictorKind::Perfect, PredictorKind::Bimodal}) {
                    for (const auto &fu : fus) {
                        for (bool last_use : {false, true}) {
                            AnalysisConfig cfg;
                            cfg.windowSize = window;
                            cfg.renameRegisters = rn.regs;
                            cfg.renameData = rn.data;
                            cfg.renameStack = rn.stack;
                            cfg.sysCallsStall = stall;
                            cfg.branchPredictor = pred;
                            cfg.totalFuLimit = fu.total;
                            cfg.fuLimit[static_cast<size_t>(
                                isa::OpClass::IntAlu)] = fu.intAlu;
                            cfg.pipelinedFus = fu.pipelined;
                            cfg.useLastUseEviction = last_use;
                            cfg.profileBins = 65536;
                            std::string what =
                                std::string("w") + std::to_string(window) +
                                " " + rn.name +
                                (stall ? " stall" : " nostall") +
                                (pred == PredictorKind::Perfect
                                     ? " perfect"
                                     : " bimodal") +
                                " " + fu.name +
                                (last_use ? " lastuse" : " overwrite");
                            checkAllPaths(last_use ? annotated : buffer, cfg,
                                          what);
                        }
                    }
                }
            }
        }
    }
}

/** Deep serial chains fold the profiles repeatedly mid-run; the fold
 *  sequence must match between the reference and the optimized paths. */
TEST(HotPathEquivalence, DeepChainsFoldProfilesIdentically)
{
    TraceBuffer buffer;
    // A long dependent chain through one register plus a strided store
    // stream: depth ~= length * latency, far past the default 4096 bins.
    for (int i = 0; i < 20000; ++i) {
        buffer.push(testhelpers::typed(isa::OpClass::IntMul, 1, {1}));
        buffer.push(
            testhelpers::store(0x1000 + 8 * (i % 512), 1));
    }
    for (const char *preset : {"dataflow", "norename"}) {
        AnalysisConfig cfg = std::string(preset) == "dataflow"
                                 ? AnalysisConfig::dataflowConservative()
                                 : AnalysisConfig::noRenaming();
        checkAllPaths(buffer, cfg, preset);
    }
}

/** The instruction cap must bite at the same record on every path. */
TEST(HotPathEquivalence, MaxInstructionsCapsIdentically)
{
    TraceBuffer buffer = testhelpers::randomTrace(7, 2000);
    for (uint64_t cap : {uint64_t{1}, uint64_t{255}, uint64_t{256},
                         uint64_t{257}, uint64_t{777}, uint64_t{5000}}) {
        AnalysisConfig cfg = AnalysisConfig::noRenaming();
        cfg.windowSize = 32;
        cfg.branchPredictor = PredictorKind::Bimodal;
        cfg.maxInstructions = cap;
        cfg.profileBins = 65536;
        checkAllPaths(buffer, cfg,
                      "cap=" + std::to_string(cap));
    }
}

/** A fused multi-config pass (the sweep engine's grouped execution) must be
 *  byte-identical to independent solo runs for every member, whatever mix
 *  of window, renaming, FU, predictor, and cap switches shares the pass —
 *  on both the pipelined source path and the in-memory buffer path. */
TEST(HotPathEquivalence, FusedMultiConfigMatchesSoloRuns)
{
    TraceBuffer buffer = testhelpers::randomTrace(4242, 1500);

    std::vector<AnalysisConfig> configs;
    for (uint64_t window :
         {uint64_t{0}, uint64_t{16}, uint64_t{64}, uint64_t{256}}) {
        AnalysisConfig cfg;
        cfg.windowSize = window;
        cfg.profileBins = 65536;
        configs.push_back(cfg);
    }
    {
        AnalysisConfig cfg = AnalysisConfig::noRenaming();
        cfg.profileBins = 65536;
        configs.push_back(cfg);
    }
    {
        AnalysisConfig cfg;
        cfg.branchPredictor = PredictorKind::Bimodal;
        cfg.totalFuLimit = 4;
        cfg.profileBins = 65536;
        configs.push_back(cfg);
    }
    {
        AnalysisConfig cfg;
        cfg.sysCallsStall = false;
        cfg.renameData = false;
        cfg.maxInstructions = 700;
        cfg.profileBins = 65536;
        configs.push_back(cfg);
    }

    std::vector<AnalysisResult> solo;
    for (const AnalysisConfig &cfg : configs)
        solo.push_back(Paragraph(cfg).analyze(buffer));

    trace::BufferSource src(buffer);
    std::vector<AnalysisResult> fused = core::analyzeMany(src, configs);
    ASSERT_EQ(solo.size(), fused.size());
    for (size_t i = 0; i < solo.size(); ++i) {
        expectResultsEqual(solo[i], fused[i],
                           "fused[" + std::to_string(i) + "]");
    }

    std::vector<core::MultiOutcome> guarded =
        core::analyzeManyGuarded(buffer, configs);
    ASSERT_EQ(solo.size(), guarded.size());
    for (size_t i = 0; i < guarded.size(); ++i) {
        ASSERT_FALSE(guarded[i].error) << "config " << i;
        expectResultsEqual(solo[i], guarded[i].result,
                           "guarded[" + std::to_string(i) + "]");
    }
}

/** Register indices past the direct register files (possible in hand-built
 *  traces) must take the hash-map fallback and still match. */
TEST(HotPathEquivalence, WideRegisterIndicesFallBackToTheMap)
{
    TraceBuffer buffer;
    for (int i = 0; i < 200; ++i) {
        buffer.push(testhelpers::alu(
            static_cast<uint8_t>(60 + (i % 8)),
            {static_cast<uint8_t>(60 + ((i + 3) % 8)),
             static_cast<uint8_t>(120 + (i % 64))}));
    }
    for (bool rename : {true, false}) {
        AnalysisConfig cfg;
        cfg.renameRegisters = rename;
        cfg.profileBins = 65536;
        checkAllPaths(buffer, cfg,
                      rename ? "wide-renamed" : "wide-norename");
    }
}

} // namespace
} // namespace paragraph
