// Parameterized property tests over random traces and the workload suite:
// the invariants that make DDG analysis trustworthy.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/ddg_builder.hpp"
#include "core/paragraph.hpp"
#include "tests/core/trace_helpers.hpp"
#include "trace/last_use.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;
using namespace paragraph::core;
using namespace paragraph::testhelpers;

// ---------------------------------------------------------------------------
// Random-trace properties, swept over seeds via TEST_P.
// ---------------------------------------------------------------------------

class RandomTraceProperty : public ::testing::TestWithParam<uint64_t>
{
  protected:
    TraceBuffer trace_ = randomTrace(GetParam(), 4000);
};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraceProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST_P(RandomTraceProperty, RenamingMonotonicallyIncreasesParallelism)
{
    AnalysisConfig configs[4] = {
        AnalysisConfig::noRenaming(), AnalysisConfig::regsRenamed(),
        AnalysisConfig::regsStackRenamed(), AnalysisConfig::regsMemRenamed()};
    double par[4];
    uint64_t placed[4];
    for (int i = 0; i < 4; ++i) {
        trace::BufferSource src(trace_);
        Paragraph engine(configs[i]);
        AnalysisResult res = engine.analyze(src);
        par[i] = res.availableParallelism;
        placed[i] = res.placedOps;
    }
    EXPECT_EQ(placed[0], placed[3]); // switches never change what is placed
    EXPECT_LE(par[0], par[1] + 1e-9);
    EXPECT_LE(par[1], par[2] + 1e-9);
    EXPECT_LE(par[2], par[3] + 1e-9);
}

TEST_P(RandomTraceProperty, WindowMonotonicallyIncreasesParallelism)
{
    double prev = 0.0;
    for (uint64_t w : {1u, 4u, 16u, 64u, 256u, 4096u}) {
        trace::BufferSource src(trace_);
        Paragraph engine(AnalysisConfig::windowed(w));
        AnalysisResult res = engine.analyze(src);
        EXPECT_GE(res.availableParallelism, prev - 1e-9) << "window " << w;
        prev = res.availableParallelism;
    }
}

TEST_P(RandomTraceProperty, RenamingHelpsUnderAFixedWindowToo)
{
    // The switches compose: with any window, removing storage dependencies
    // can only shorten the critical path.
    for (uint64_t w : {8u, 128u}) {
        AnalysisConfig restricted = AnalysisConfig::windowed(w);
        restricted.renameRegisters = false;
        restricted.renameStack = false;
        restricted.renameData = false;
        AnalysisConfig renamed = AnalysisConfig::windowed(w);
        trace::BufferSource a(trace_), b(trace_);
        AnalysisResult r1 = Paragraph(restricted).analyze(a);
        AnalysisResult r2 = Paragraph(renamed).analyze(b);
        EXPECT_LE(r2.criticalPathLength, r1.criticalPathLength)
            << "window " << w;
    }
}

TEST_P(RandomTraceProperty, OptimisticSysCallsNeverReduceParallelism)
{
    trace::BufferSource a(trace_), b(trace_);
    AnalysisResult cons =
        Paragraph(AnalysisConfig::dataflowConservative()).analyze(a);
    AnalysisResult opt =
        Paragraph(AnalysisConfig::dataflowOptimistic()).analyze(b);
    EXPECT_LE(cons.availableParallelism, opt.availableParallelism + 1e-9);
    EXPECT_GE(cons.criticalPathLength, opt.criticalPathLength);
}

TEST_P(RandomTraceProperty, FuLimitsOnlyDeepenTheDdg)
{
    trace::BufferSource a(trace_), b(trace_);
    AnalysisResult free_run =
        Paragraph(AnalysisConfig::dataflowConservative()).analyze(a);
    AnalysisConfig throttled = AnalysisConfig::dataflowConservative();
    throttled.totalFuLimit = 4;
    AnalysisResult limited = Paragraph(throttled).analyze(b);
    EXPECT_GE(limited.criticalPathLength, free_run.criticalPathLength);
    EXPECT_EQ(limited.placedOps, free_run.placedOps);
}

TEST_P(RandomTraceProperty, BaselineAgreesWithFullEngine)
{
    for (const AnalysisConfig &cfg :
         {AnalysisConfig::dataflowConservative(),
          AnalysisConfig::dataflowOptimistic(), AnalysisConfig::noRenaming(),
          AnalysisConfig::regsRenamed()}) {
        trace::BufferSource a(trace_), b(trace_);
        AnalysisResult full = Paragraph(cfg).analyze(a);
        BaselineResult fast = CriticalPathAnalyzer(cfg).analyze(b);
        EXPECT_EQ(full.criticalPathLength, fast.criticalPathLength);
        EXPECT_EQ(full.placedOps, fast.placedOps);
        EXPECT_DOUBLE_EQ(full.availableParallelism,
                         fast.availableParallelism);
    }
}

TEST_P(RandomTraceProperty, DdgBuilderMatchesEngineLevels)
{
    for (const AnalysisConfig &cfg :
         {AnalysisConfig::dataflowConservative(), AnalysisConfig::noRenaming(),
          AnalysisConfig::windowed(32)}) {
        Ddg ddg = buildDdg(trace_, cfg);
        Paragraph engine(cfg);
        std::vector<int64_t> engine_levels;
        for (size_t i = 0; i < trace_.size(); ++i) {
            engine.process(trace_[i]);
            if (engine.lastPlacedLevel() >= 0)
                engine_levels.push_back(engine.lastPlacedLevel());
        }
        AnalysisResult res = engine.finish();
        ASSERT_EQ(ddg.nodes.size(), engine_levels.size());
        for (size_t i = 0; i < ddg.nodes.size(); ++i)
            ASSERT_EQ(ddg.nodes[i].level, engine_levels[i]) << "node " << i;
        EXPECT_EQ(ddg.criticalPathLength, res.criticalPathLength);
    }
}

TEST_P(RandomTraceProperty, WindowCapsOpsPerLevelExactly)
{
    constexpr uint64_t window = 8;
    Ddg ddg = buildDdg(trace_, AnalysisConfig::windowed(window));
    for (uint64_t count : ddg.levelHistogram())
        EXPECT_LE(count, window);
}

TEST_P(RandomTraceProperty, TwoPassEvictionPreservesAllMetrics)
{
    TraceBuffer annotated = trace_;
    trace::annotateLastUses(annotated);

    trace::BufferSource a(trace_), b(annotated);
    AnalysisConfig one_pass = AnalysisConfig::dataflowConservative();
    AnalysisConfig two_pass = one_pass;
    two_pass.useLastUseEviction = true;

    AnalysisResult r1 = Paragraph(one_pass).analyze(a);
    AnalysisResult r2 = Paragraph(two_pass).analyze(b);

    EXPECT_EQ(r1.criticalPathLength, r2.criticalPathLength);
    EXPECT_EQ(r1.placedOps, r2.placedOps);
    EXPECT_DOUBLE_EQ(r1.lifetimes.mean(), r2.lifetimes.mean());
    EXPECT_DOUBLE_EQ(r1.sharing.mean(), r2.sharing.mean());
    // Eviction at last use can only shrink the live well.
    EXPECT_LE(r2.liveWellPeak, r1.liveWellPeak);
}

TEST_P(RandomTraceProperty, FirewallsNeverReorderBelowFloor)
{
    // After any conservative syscall, no later op may land at or above the
    // level the firewall was raised to.
    trace::BufferSource src(trace_);
    Paragraph engine(AnalysisConfig::dataflowConservative());
    trace::TraceRecord rec;
    int64_t floor = 0;
    while (src.next(rec)) {
        engine.process(rec);
        if (engine.lastPlacedLevel() >= 0) {
            ASSERT_GE(engine.lastPlacedLevel(), floor);
        }
        floor = engine.highestLevel();
    }
}

// ---------------------------------------------------------------------------
// Workload-level properties (small scale), one per SPEC analog via TEST_P.
// ---------------------------------------------------------------------------

class WorkloadProperty : public ::testing::TestWithParam<const char *>
{
  protected:
    const workloads::Workload &
    workload()
    {
        return workloads::WorkloadSuite::instance().find(GetParam());
    }

    std::unique_ptr<sim::MachineTraceSource>
    source()
    {
        return workloads::WorkloadSuite::instance().makeSource(
            workload(), workloads::Scale::Small);
    }
};

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadProperty,
                         ::testing::Values("cc1", "doduc", "eqntott",
                                           "espresso", "fpppp", "matrix300",
                                           "nasker", "spice2g6", "tomcatv",
                                           "xlisp"),
                         [](const auto &param_info) {
                             std::string name = param_info.param;
                             for (char &c : name) {
                                 if (c == '-') {
                                     c = '_';
                                 }
                             }
                             return name;
                         });

TEST_P(WorkloadProperty, RunsToCleanExit)
{
    auto src = source();
    trace::TraceRecord rec;
    uint64_t n = 0;
    while (src->next(rec))
        ++n;
    EXPECT_TRUE(src->machine().exited());
    EXPECT_EQ(src->machine().exitCode(), 0);
    EXPECT_GT(n, 1000u);
}

TEST_P(WorkloadProperty, TraceIsDeterministic)
{
    auto src = source();
    trace::TraceBuffer first;
    first.capture(*src);
    src->reset();
    trace::TraceBuffer second;
    second.capture(*src);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); i += 97)
        ASSERT_EQ(first[i], second[i]) << "record " << i;
}

TEST_P(WorkloadProperty, RenamingMonotone)
{
    double prev = 0.0;
    for (const AnalysisConfig &cfg :
         {AnalysisConfig::noRenaming(), AnalysisConfig::regsRenamed(),
          AnalysisConfig::regsStackRenamed(),
          AnalysisConfig::regsMemRenamed()}) {
        auto src = source();
        AnalysisResult res = Paragraph(cfg).analyze(*src);
        EXPECT_GE(res.availableParallelism, prev - 1e-9) << cfg.describe();
        prev = res.availableParallelism;
    }
}

TEST_P(WorkloadProperty, WindowMonotone)
{
    double prev = 0.0;
    for (uint64_t w : {1u, 16u, 256u, 16384u}) {
        auto src = source();
        AnalysisResult res = Paragraph(AnalysisConfig::windowed(w))
                                 .analyze(*src);
        EXPECT_GE(res.availableParallelism, prev - 1e-9) << "window " << w;
        prev = res.availableParallelism;
    }
}

TEST_P(WorkloadProperty, BaselineMatchesEngine)
{
    auto a = source();
    auto b = source();
    AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
    AnalysisResult full = Paragraph(cfg).analyze(*a);
    BaselineResult fast = CriticalPathAnalyzer(cfg).analyze(*b);
    EXPECT_EQ(full.criticalPathLength, fast.criticalPathLength);
    EXPECT_EQ(full.placedOps, fast.placedOps);
}

TEST_P(WorkloadProperty, SerialWindowApproachesOne)
{
    auto src = source();
    AnalysisResult res = Paragraph(AnalysisConfig::windowed(1)).analyze(*src);
    // With a one-instruction window the machine is serial; multi-cycle
    // latencies push parallelism *below* one operation per level.
    EXPECT_LE(res.availableParallelism, 1.0 + 1e-9);
    EXPECT_GT(res.availableParallelism, 0.05);
}
