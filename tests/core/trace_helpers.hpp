// Shared helpers for core tests: compact record builders and a random-trace
// generator for property tests.
#ifndef PARAGRAPH_TESTS_CORE_TRACE_HELPERS_HPP
#define PARAGRAPH_TESTS_CORE_TRACE_HELPERS_HPP

#include <initializer_list>

#include "support/prng.hpp"
#include "support/test_seed.hpp"
#include "trace/buffer.hpp"
#include "trace/record.hpp"

namespace paragraph {
namespace testhelpers {

using trace::Operand;
using trace::Segment;
using trace::TraceBuffer;
using trace::TraceRecord;

/** reg-only ALU op: dest <- srcs (latency 1). */
inline TraceRecord
alu(uint8_t dest, std::initializer_list<uint8_t> srcs)
{
    TraceRecord rec;
    rec.cls = isa::OpClass::IntAlu;
    rec.createsValue = true;
    for (uint8_t s : srcs)
        rec.addSrc(Operand::intReg(s));
    rec.dest = Operand::intReg(dest);
    return rec;
}

/** Load: dest reg <- mem[addr] (+ optional address register). */
inline TraceRecord
load(uint8_t dest, uint64_t addr, Segment seg = Segment::Data,
     int addr_reg = -1)
{
    TraceRecord rec;
    rec.cls = isa::OpClass::Load;
    rec.createsValue = true;
    if (addr_reg >= 0)
        rec.addSrc(Operand::intReg(static_cast<uint8_t>(addr_reg)));
    rec.addSrc(Operand::mem(addr, seg));
    rec.dest = Operand::intReg(dest);
    return rec;
}

/** Store: mem[addr] <- src reg. */
inline TraceRecord
store(uint64_t addr, uint8_t src, Segment seg = Segment::Data)
{
    TraceRecord rec;
    rec.cls = isa::OpClass::Store;
    rec.createsValue = true;
    rec.addSrc(Operand::intReg(src));
    rec.dest = Operand::mem(addr, seg);
    return rec;
}

/** Conditional-branch record (not placed in the DDG). */
inline TraceRecord
branch(std::initializer_list<uint8_t> srcs)
{
    TraceRecord rec;
    rec.cls = isa::OpClass::Control;
    rec.createsValue = false;
    for (uint8_t s : srcs)
        rec.addSrc(Operand::intReg(s));
    return rec;
}

/** System call writing v0 (reg 2). */
inline TraceRecord
syscall()
{
    TraceRecord rec;
    rec.cls = isa::OpClass::SysCall;
    rec.createsValue = true;
    rec.isSysCall = true;
    rec.addSrc(Operand::intReg(2));
    rec.dest = Operand::intReg(2);
    return rec;
}

/** ALU op with a chosen operation class (for latency tests). */
inline TraceRecord
typed(isa::OpClass cls, uint8_t dest, std::initializer_list<uint8_t> srcs)
{
    TraceRecord rec = alu(dest, srcs);
    rec.cls = cls;
    return rec;
}

/**
 * Random trace over a small location universe: 8 int regs, 4 fp regs,
 * 32 memory words spread over data/heap/stack, occasional branches and
 * syscalls — dense enough that every dependence type occurs.
 *
 * The effective seed honors the PARAGRAPH_TEST_SEED environment override
 * (support/test_seed.hpp): unset, @p seed is used as-is and the trace is
 * bit-stable; set, every randomized test reruns under the overridden seed
 * with one command, `PARAGRAPH_TEST_SEED=<N> ctest`.
 */
inline TraceBuffer
randomTrace(uint64_t seed, size_t length, bool with_syscalls = true)
{
    Prng prng(testSeed(seed));
    TraceBuffer buf;
    auto rand_operand = [&]() {
        switch (prng.nextBelow(3)) {
          case 0:
            return Operand::intReg(
                static_cast<uint8_t>(1 + prng.nextBelow(8)));
          case 1:
            return Operand::fpReg(static_cast<uint8_t>(prng.nextBelow(4)));
          default: {
            Segment seg = static_cast<Segment>(1 + prng.nextBelow(3));
            return Operand::mem(0x1000 + 4 * prng.nextBelow(32), seg);
          }
        }
    };
    static const isa::OpClass value_classes[] = {
        isa::OpClass::IntAlu, isa::OpClass::IntAlu, isa::OpClass::IntAlu,
        isa::OpClass::IntMul, isa::OpClass::IntDiv, isa::OpClass::FpAddSub,
        isa::OpClass::FpMul,  isa::OpClass::FpDiv,  isa::OpClass::Load,
        isa::OpClass::Store,
    };
    for (size_t i = 0; i < length; ++i) {
        TraceRecord rec;
        rec.pc = i;
        uint64_t roll = prng.nextBelow(100);
        if (with_syscalls && roll < 1) {
            rec = syscall();
        } else if (roll < 15) {
            rec = branch({static_cast<uint8_t>(1 + prng.nextBelow(8))});
        } else {
            rec.cls = value_classes[prng.nextBelow(
                sizeof(value_classes) / sizeof(value_classes[0]))];
            rec.createsValue = true;
            int nsrcs = static_cast<int>(prng.nextBelow(3));
            for (int s = 0; s < nsrcs; ++s)
                rec.addSrc(rand_operand());
            rec.dest = rand_operand();
        }
        buf.push(rec);
    }
    return buf;
}

} // namespace testhelpers
} // namespace paragraph

#endif
