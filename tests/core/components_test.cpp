// Unit tests for the smaller core components: FuThrottle, SlidingWindow,
// DdgBuilder edge semantics, and report rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "core/ddg_builder.hpp"
#include "core/fu_throttle.hpp"
#include "core/paragraph.hpp"
#include "core/report.hpp"
#include "core/window.hpp"
#include "tests/core/trace_helpers.hpp"

using namespace paragraph;
using namespace paragraph::core;
using namespace paragraph::testhelpers;

TEST(FuThrottle, DisabledIsIdentity)
{
    AnalysisConfig cfg;
    FuThrottle throttle(cfg);
    EXPECT_FALSE(throttle.enabled());
    EXPECT_EQ(throttle.place(isa::OpClass::IntAlu, 17, 1), 17);
}

TEST(FuThrottle, TotalLimitSlidesOverflow)
{
    AnalysisConfig cfg;
    cfg.totalFuLimit = 2;
    FuThrottle throttle(cfg);
    EXPECT_EQ(throttle.place(isa::OpClass::IntAlu, 0, 1), 0);
    EXPECT_EQ(throttle.place(isa::OpClass::IntAlu, 0, 1), 0);
    EXPECT_EQ(throttle.place(isa::OpClass::IntAlu, 0, 1), 1); // level 0 full
    EXPECT_EQ(throttle.place(isa::OpClass::Load, 0, 1), 1);
    EXPECT_EQ(throttle.place(isa::OpClass::Load, 0, 1), 2);
}

TEST(FuThrottle, ClassLimitsAreIndependent)
{
    AnalysisConfig cfg;
    cfg.fuLimit[static_cast<size_t>(isa::OpClass::FpMul)] = 1;
    FuThrottle throttle(cfg);
    EXPECT_TRUE(throttle.enabled());
    EXPECT_EQ(throttle.place(isa::OpClass::FpMul, 0, 6), 0);
    // Second FP multiply cannot overlap the first anywhere in levels 0-5.
    EXPECT_EQ(throttle.place(isa::OpClass::FpMul, 0, 6), 6);
    // Other classes are unconstrained.
    EXPECT_EQ(throttle.place(isa::OpClass::IntAlu, 0, 1), 0);
    EXPECT_EQ(throttle.place(isa::OpClass::IntAlu, 0, 1), 0);
}

TEST(FuThrottle, NonPipelinedOccupiesWholeSpan)
{
    AnalysisConfig cfg;
    cfg.totalFuLimit = 1;
    cfg.pipelinedFus = false;
    FuThrottle throttle(cfg);
    EXPECT_EQ(throttle.place(isa::OpClass::IntMul, 0, 6), 0);  // levels 0-5
    EXPECT_EQ(throttle.place(isa::OpClass::IntAlu, 3, 1), 6);  // must wait
}

TEST(FuThrottle, PipelinedOccupiesIssueLevelOnly)
{
    AnalysisConfig cfg;
    cfg.totalFuLimit = 1;
    cfg.pipelinedFus = true;
    FuThrottle throttle(cfg);
    EXPECT_EQ(throttle.place(isa::OpClass::IntMul, 0, 6), 0); // level 0 only
    EXPECT_EQ(throttle.place(isa::OpClass::IntAlu, 0, 1), 1);
}

TEST(FuThrottle, ResetClearsOccupancy)
{
    AnalysisConfig cfg;
    cfg.totalFuLimit = 1;
    FuThrottle throttle(cfg);
    EXPECT_EQ(throttle.place(isa::OpClass::IntAlu, 0, 1), 0);
    throttle.reset();
    EXPECT_EQ(throttle.place(isa::OpClass::IntAlu, 0, 1), 0);
}

TEST(SlidingWindow, DisplacesOldestAfterFilling)
{
    SlidingWindow win(3);
    EXPECT_EQ(win.willEnter(), SlidingWindow::notPlaced);
    win.entered(10);
    win.entered(20);
    EXPECT_EQ(win.willEnter(), SlidingWindow::notPlaced); // not yet full
    win.entered(30);
    EXPECT_EQ(win.willEnter(), 10);
    win.entered(40);
    EXPECT_EQ(win.willEnter(), 20);
    win.entered(50);
    EXPECT_EQ(win.willEnter(), 30);
}

TEST(SlidingWindow, ResetEmpties)
{
    SlidingWindow win(2);
    win.entered(1);
    win.entered(2);
    EXPECT_EQ(win.willEnter(), 1);
    win.reset();
    EXPECT_EQ(win.willEnter(), SlidingWindow::notPlaced);
    EXPECT_EQ(win.capacity(), 2u);
}

TEST(DdgBuilder, TrueEdgesConnectProducersToConsumers)
{
    TraceBuffer buf;
    buf.push(alu(1, {}));      // node 0
    buf.push(alu(2, {}));      // node 1
    buf.push(alu(3, {1, 2}));  // node 2 <- 0, 1
    Ddg ddg = buildDdg(buf, AnalysisConfig::dataflowConservative());
    ASSERT_EQ(ddg.nodes.size(), 3u);
    ASSERT_EQ(ddg.edges.size(), 2u);
    EXPECT_EQ(ddg.countEdges(DepKind::True), 2u);
    EXPECT_EQ(ddg.edges[0].to, 2u);
    EXPECT_EQ(ddg.edges[1].to, 2u);
}

TEST(DdgBuilder, DuplicateSourceProducesOneEdge)
{
    TraceBuffer buf;
    buf.push(alu(1, {}));
    buf.push(alu(2, {1, 1}));
    Ddg ddg = buildDdg(buf, AnalysisConfig::dataflowConservative());
    EXPECT_EQ(ddg.countEdges(DepKind::True), 1u);
}

TEST(DdgBuilder, StorageEdgesOnlyWithoutRenaming)
{
    TraceBuffer buf;
    buf.push(alu(1, {}));
    buf.push(alu(2, {1}));
    buf.push(alu(1, {})); // overwrite r1
    AnalysisConfig renamed = AnalysisConfig::dataflowConservative();
    EXPECT_EQ(buildDdg(buf, renamed).countEdges(DepKind::Storage), 0u);

    AnalysisConfig not_renamed = renamed;
    not_renamed.renameRegisters = false;
    Ddg ddg = buildDdg(buf, not_renamed);
    // WAW edge from the old producer and WAR edge from its reader.
    EXPECT_EQ(ddg.countEdges(DepKind::Storage), 2u);
}

TEST(DdgBuilder, ControlEdgesFromSysCallFirewall)
{
    TraceBuffer buf;
    buf.push(syscall());   // node 0, firewall
    buf.push(alu(4, {}));  // floor-bound: control edge from the syscall
    Ddg ddg = buildDdg(buf, AnalysisConfig::dataflowConservative());
    ASSERT_EQ(ddg.countEdges(DepKind::Control), 1u);
    for (const auto &e : ddg.edges) {
        if (e.kind == DepKind::Control) {
            EXPECT_EQ(e.from, 0u);
            EXPECT_EQ(e.to, 1u);
        }
    }
}

TEST(DdgBuilder, DotOutputIsWellFormed)
{
    TraceBuffer buf;
    buf.push(alu(1, {}));
    buf.push(alu(2, {1}));
    Ddg ddg = buildDdg(buf, AnalysisConfig::dataflowConservative());
    std::string dot = ddg.toDot();
    EXPECT_NE(dot.find("digraph ddg"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
    EXPECT_NE(dot.find("rank=same"), std::string::npos);
    EXPECT_EQ(dot.back(), '\n');
}

TEST(DdgBuilder, LevelHistogramMatchesNodes)
{
    TraceBuffer buf = randomTrace(4, 500);
    Ddg ddg = buildDdg(buf, AnalysisConfig::dataflowConservative());
    auto hist = ddg.levelHistogram();
    uint64_t total = 0;
    for (uint64_t c : hist)
        total += c;
    EXPECT_EQ(total, ddg.nodes.size());
    EXPECT_EQ(hist.size(), ddg.criticalPathLength);
}

TEST(Report, SummaryAndProfileRender)
{
    TraceBuffer buf = randomTrace(6, 2000);
    trace::BufferSource src(buf);
    AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
    Paragraph engine(cfg);
    AnalysisResult res = engine.analyze(src);

    std::ostringstream oss;
    printSummary(oss, "random", cfg, res);
    printProfile(oss, res, 16);
    printProfilePlot(oss, res, 8, 40);
    printDistributions(oss, res);
    printStorageProfile(oss, res, 8, 40);
    std::string out = oss.str();
    EXPECT_NE(out.find("random"), std::string::npos);
    EXPECT_NE(out.find("critical path"), std::string::npos);
    EXPECT_NE(out.find("Ops/level"), std::string::npos);
    EXPECT_NE(out.find("value lifetimes"), std::string::npos);
    EXPECT_NE(out.find("degree of sharing"), std::string::npos);
    EXPECT_NE(out.find("live values"), std::string::npos);
}
