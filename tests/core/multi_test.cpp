// Tests for core::analyzeMany (single-pass multi-configuration analysis).
#include <gtest/gtest.h>

#include "core/cancel_token.hpp"
#include "core/multi.hpp"
#include "tests/core/trace_helpers.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;
using namespace paragraph::core;
using namespace paragraph::testhelpers;

namespace {

/**
 * Assert two AnalysisResults are byte-identical in every deterministic
 * field — scalars, profile bins, distribution counts, storage profile —
 * i.e. everything except wall-clock timing. Doubles are compared exactly:
 * the same records through the same placement rule must produce
 * bit-identical arithmetic.
 */
void
expectIdenticalResults(const AnalysisResult &a, const AnalysisResult &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.placedOps, b.placedOps);
    EXPECT_EQ(a.sysCalls, b.sysCalls);
    EXPECT_EQ(a.firewalls, b.firewalls);
    EXPECT_EQ(a.preExistingValues, b.preExistingValues);
    EXPECT_EQ(a.storageDelayedOps, b.storageDelayedOps);
    EXPECT_EQ(a.fuDelayedOps, b.fuDelayedOps);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.branchMispredictions, b.branchMispredictions);
    EXPECT_EQ(a.criticalPathLength, b.criticalPathLength);
    EXPECT_EQ(a.availableParallelism, b.availableParallelism);
    EXPECT_EQ(a.liveWellPeak, b.liveWellPeak);
    EXPECT_EQ(a.liveWellFinal, b.liveWellFinal);
    EXPECT_EQ(a.liveWellPeakBytes, b.liveWellPeakBytes);

    ASSERT_EQ(a.profile.numBins(), b.profile.numBins());
    EXPECT_EQ(a.profile.bucketWidth(), b.profile.bucketWidth());
    EXPECT_EQ(a.profile.maxLevel(), b.profile.maxLevel());
    EXPECT_EQ(a.profile.totalOps(), b.profile.totalOps());
    for (size_t i = 0; i < a.profile.numBins(); ++i)
        ASSERT_EQ(a.profile.binCount(i), b.profile.binCount(i))
            << "profile bin " << i;

    ASSERT_EQ(a.lifetimes.exactRange(), b.lifetimes.exactRange());
    EXPECT_EQ(a.lifetimes.totalCount(), b.lifetimes.totalCount());
    EXPECT_EQ(a.lifetimes.overflowCount(), b.lifetimes.overflowCount());
    EXPECT_EQ(a.lifetimes.maxSample(), b.lifetimes.maxSample());
    for (uint64_t v = 0; v < a.lifetimes.exactRange(); ++v)
        ASSERT_EQ(a.lifetimes.count(v), b.lifetimes.count(v))
            << "lifetime " << v;

    EXPECT_EQ(a.sharing.totalCount(), b.sharing.totalCount());
    for (uint64_t v = 0; v < a.sharing.exactRange(); ++v)
        ASSERT_EQ(a.sharing.count(v), b.sharing.count(v))
            << "sharing " << v;

    EXPECT_EQ(a.storageProfile.intervals(), b.storageProfile.intervals());
    EXPECT_EQ(a.storageProfile.bucketWidth(),
              b.storageProfile.bucketWidth());
    auto sa = a.storageProfile.series();
    auto sb = b.storageProfile.series();
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].firstLevel, sb[i].firstLevel);
        EXPECT_EQ(sa[i].lastLevel, sb[i].lastLevel);
        EXPECT_EQ(sa[i].liveValues, sb[i].liveValues);
    }
}

/** randomTrace with its Control records made real conditional branches, so
 *  branch-prediction firewalls actually fire. */
TraceBuffer
randomTraceWithCondBranches(uint64_t seed, size_t length)
{
    TraceBuffer buf = randomTrace(seed, length);
    Prng coin(seed ^ 0x9e3779b97f4a7c15ULL);
    for (trace::TraceRecord &rec : buf.records()) {
        if (rec.cls == isa::OpClass::Control) {
            rec.isCondBranch = true;
            rec.branchTaken = coin.nextBelow(2) == 0;
        }
    }
    return buf;
}

} // namespace

TEST(AnalyzeMany, MatchesIndividualRunsOnRandomTraces)
{
    TraceBuffer buf = randomTrace(17, 5000);
    std::vector<AnalysisConfig> configs = {
        AnalysisConfig::dataflowConservative(),
        AnalysisConfig::dataflowOptimistic(),
        AnalysisConfig::noRenaming(),
        AnalysisConfig::windowed(16),
        AnalysisConfig::windowed(1024),
    };
    trace::BufferSource shared(buf);
    auto together = analyzeMany(shared, configs);
    ASSERT_EQ(together.size(), configs.size());

    for (size_t i = 0; i < configs.size(); ++i) {
        trace::BufferSource solo(buf);
        AnalysisResult alone = Paragraph(configs[i]).analyze(solo);
        EXPECT_EQ(together[i].criticalPathLength, alone.criticalPathLength)
            << configs[i].describe();
        EXPECT_EQ(together[i].placedOps, alone.placedOps);
        EXPECT_EQ(together[i].instructions, alone.instructions);
        EXPECT_DOUBLE_EQ(together[i].lifetimes.mean(),
                         alone.lifetimes.mean());
    }
}

TEST(AnalyzeMany, ByteIdenticalUnderWindowFuAndPredictorCombinations)
{
    // The shared-pass invariant must hold not just for the renaming
    // switches but for configs that combine finite windows, functional-unit
    // throttling, and branch-prediction firewalls — each keeps per-engine
    // mutable state (window queue, FU schedule, predictor tables) that a
    // shared pass could corrupt if it leaked across engines.
    TraceBuffer buf = randomTraceWithCondBranches(23, 6000);

    std::vector<AnalysisConfig> configs;

    AnalysisConfig winFu = AnalysisConfig::windowed(64);
    winFu.totalFuLimit = 4;
    configs.push_back(winFu);

    AnalysisConfig winPred = AnalysisConfig::windowed(256);
    winPred.branchPredictor = PredictorKind::Bimodal;
    configs.push_back(winPred);

    AnalysisConfig perClass = AnalysisConfig::windowed(128);
    perClass.fuLimit[static_cast<size_t>(isa::OpClass::IntAlu)] = 2;
    perClass.fuLimit[static_cast<size_t>(isa::OpClass::Load)] = 1;
    perClass.pipelinedFus = true;
    perClass.branchPredictor = PredictorKind::NeverTaken;
    configs.push_back(perClass);

    AnalysisConfig everything = AnalysisConfig::noRenaming();
    everything.windowSize = 32;
    everything.totalFuLimit = 2;
    everything.branchPredictor = PredictorKind::AlwaysWrong;
    everything.sysCallsStall = false;
    configs.push_back(everything);

    AnalysisConfig cappedMix = AnalysisConfig::windowed(512);
    cappedMix.totalFuLimit = 8;
    cappedMix.branchPredictor = PredictorKind::Bimodal;
    cappedMix.maxInstructions = 4000;
    configs.push_back(cappedMix);

    trace::BufferSource shared(buf);
    auto together = analyzeMany(shared, configs);
    ASSERT_EQ(together.size(), configs.size());

    for (size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE(configs[i].describe());
        trace::BufferSource solo(buf);
        AnalysisResult alone = Paragraph(configs[i]).analyze(solo);
        expectIdenticalResults(together[i], alone);
        // These configs are built to exercise every machinery piece.
        if (configs[i].totalFuLimit || configs[i].fuLimit[0] ||
            configs[i].fuLimit[static_cast<size_t>(isa::OpClass::Load)]) {
            EXPECT_GT(alone.fuDelayedOps, 0u);
        }
        if (configs[i].branchPredictor != PredictorKind::Perfect) {
            EXPECT_GT(alone.condBranches, 0u);
        }
    }
}

TEST(AnalyzeMany, PerEngineInstructionCapsAreIndependent)
{
    TraceBuffer buf = randomTrace(18, 3000);
    AnalysisConfig short_cfg = AnalysisConfig::dataflowConservative();
    short_cfg.maxInstructions = 100;
    AnalysisConfig long_cfg = AnalysisConfig::dataflowConservative();
    long_cfg.maxInstructions = 1000;
    trace::BufferSource src(buf);
    auto results = analyzeMany(src, {short_cfg, long_cfg});
    EXPECT_EQ(results[0].instructions, 100u);
    EXPECT_EQ(results[1].instructions, 1000u);
}

TEST(AnalyzeMany, StopsReadingWhenAllEnginesAreDone)
{
    TraceBuffer buf = randomTrace(19, 3000);
    AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
    cfg.maxInstructions = 50;
    trace::BufferSource src(buf);
    analyzeMany(src, {cfg, cfg});
    // The shared source must not have been drained past the caps (plus the
    // one record in flight when every engine reported done).
    trace::TraceRecord rec;
    size_t remaining = 0;
    while (src.next(rec))
        ++remaining;
    EXPECT_GE(remaining, buf.size() - 52);
}

TEST(AnalyzeMany, EmptyConfigListYieldsNothing)
{
    TraceBuffer buf = randomTrace(20, 100);
    trace::BufferSource src(buf);
    EXPECT_TRUE(analyzeMany(src, {}).empty());
}

TEST(AnalyzeMany, CancelledTokenAbandonsTheFusedPass)
{
    // AnalysisConfig::cancel must be honored from inside the fused
    // block-major loop, not just by solo analyze() — this is what makes
    // --deadline work for grouped sweep cells.
    TraceBuffer buf = randomTrace(21, 100000);
    CancelToken poisoned;
    poisoned.cancel();
    AnalysisConfig cancelled = AnalysisConfig::dataflowConservative();
    cancelled.cancel = &poisoned;
    AnalysisConfig healthy = AnalysisConfig::dataflowConservative();
    trace::BufferSource src(buf);
    EXPECT_THROW(analyzeMany(src, {healthy, cancelled}), CancelledError);
}

TEST(AnalyzeMany, GuardedPassContainsCancellationToItsOwnSlot)
{
    // The guarded variant parks the CancelledError in the cancelled
    // engine's outcome and lets every sibling run to completion — the
    // sweep engine's fused groups depend on this to keep one timed-out
    // cell from voiding its group.
    TraceBuffer buf = randomTrace(22, 5000);
    CancelToken poisoned;
    poisoned.cancel();
    AnalysisConfig cancelled = AnalysisConfig::dataflowConservative();
    cancelled.cancel = &poisoned;
    AnalysisConfig healthy = AnalysisConfig::dataflowConservative();

    auto outcomes = analyzeManyGuarded(buf, {healthy, cancelled, healthy});
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_FALSE(outcomes[0].error);
    ASSERT_TRUE(outcomes[1].error);
    EXPECT_THROW(std::rethrow_exception(outcomes[1].error), CancelledError);
    EXPECT_FALSE(outcomes[2].error);

    AnalysisResult alone =
        Paragraph(healthy).analyze(buf);
    expectIdenticalResults(outcomes[0].result, alone);
    expectIdenticalResults(outcomes[2].result, alone);
}

TEST(AnalyzeMany, WorkloadWindowSweepMatchesSoloRuns)
{
    auto &suite = workloads::WorkloadSuite::instance();
    const auto &w = suite.find("nasker");
    std::vector<AnalysisConfig> configs = {AnalysisConfig::windowed(64),
                                           AnalysisConfig::windowed(4096)};
    auto shared_src = suite.makeSource(w, workloads::Scale::Small);
    auto together = analyzeMany(*shared_src, configs);
    for (size_t i = 0; i < configs.size(); ++i) {
        auto solo_src = suite.makeSource(w, workloads::Scale::Small);
        AnalysisResult alone = Paragraph(configs[i]).analyze(*solo_src);
        EXPECT_EQ(together[i].criticalPathLength,
                  alone.criticalPathLength);
        EXPECT_EQ(together[i].placedOps, alone.placedOps);
    }
}
