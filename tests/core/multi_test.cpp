// Tests for core::analyzeMany (single-pass multi-configuration analysis).
#include <gtest/gtest.h>

#include "core/multi.hpp"
#include "tests/core/trace_helpers.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;
using namespace paragraph::core;
using namespace paragraph::testhelpers;

TEST(AnalyzeMany, MatchesIndividualRunsOnRandomTraces)
{
    TraceBuffer buf = randomTrace(17, 5000);
    std::vector<AnalysisConfig> configs = {
        AnalysisConfig::dataflowConservative(),
        AnalysisConfig::dataflowOptimistic(),
        AnalysisConfig::noRenaming(),
        AnalysisConfig::windowed(16),
        AnalysisConfig::windowed(1024),
    };
    trace::BufferSource shared(buf);
    auto together = analyzeMany(shared, configs);
    ASSERT_EQ(together.size(), configs.size());

    for (size_t i = 0; i < configs.size(); ++i) {
        trace::BufferSource solo(buf);
        AnalysisResult alone = Paragraph(configs[i]).analyze(solo);
        EXPECT_EQ(together[i].criticalPathLength, alone.criticalPathLength)
            << configs[i].describe();
        EXPECT_EQ(together[i].placedOps, alone.placedOps);
        EXPECT_EQ(together[i].instructions, alone.instructions);
        EXPECT_DOUBLE_EQ(together[i].lifetimes.mean(),
                         alone.lifetimes.mean());
    }
}

TEST(AnalyzeMany, PerEngineInstructionCapsAreIndependent)
{
    TraceBuffer buf = randomTrace(18, 3000);
    AnalysisConfig short_cfg = AnalysisConfig::dataflowConservative();
    short_cfg.maxInstructions = 100;
    AnalysisConfig long_cfg = AnalysisConfig::dataflowConservative();
    long_cfg.maxInstructions = 1000;
    trace::BufferSource src(buf);
    auto results = analyzeMany(src, {short_cfg, long_cfg});
    EXPECT_EQ(results[0].instructions, 100u);
    EXPECT_EQ(results[1].instructions, 1000u);
}

TEST(AnalyzeMany, StopsReadingWhenAllEnginesAreDone)
{
    TraceBuffer buf = randomTrace(19, 3000);
    AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
    cfg.maxInstructions = 50;
    trace::BufferSource src(buf);
    analyzeMany(src, {cfg, cfg});
    // The shared source must not have been drained past the caps (plus the
    // one record in flight when every engine reported done).
    trace::TraceRecord rec;
    size_t remaining = 0;
    while (src.next(rec))
        ++remaining;
    EXPECT_GE(remaining, buf.size() - 52);
}

TEST(AnalyzeMany, EmptyConfigListYieldsNothing)
{
    TraceBuffer buf = randomTrace(20, 100);
    trace::BufferSource src(buf);
    EXPECT_TRUE(analyzeMany(src, {}).empty());
}

TEST(AnalyzeMany, WorkloadWindowSweepMatchesSoloRuns)
{
    auto &suite = workloads::WorkloadSuite::instance();
    const auto &w = suite.find("nasker");
    std::vector<AnalysisConfig> configs = {AnalysisConfig::windowed(64),
                                           AnalysisConfig::windowed(4096)};
    auto shared_src = suite.makeSource(w, workloads::Scale::Small);
    auto together = analyzeMany(*shared_src, configs);
    for (size_t i = 0; i < configs.size(); ++i) {
        auto solo_src = suite.makeSource(w, workloads::Scale::Small);
        AnalysisResult alone = Paragraph(configs[i]).analyze(*solo_src);
        EXPECT_EQ(together[i].criticalPathLength,
                  alone.criticalPathLength);
        EXPECT_EQ(together[i].placedOps, alone.placedOps);
    }
}
