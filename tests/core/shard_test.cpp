// Firewall-point sharding: segments analyzed independently and stitched
// must reproduce the solo run exactly (core/shard.hpp).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/paragraph.hpp"
#include "core/shard.hpp"
#include "trace/last_use.hpp"

#include "trace_helpers.hpp"

namespace paragraph {
namespace core {
namespace {

using testhelpers::randomTrace;
using trace::TraceBuffer;
using trace::TraceRecord;

AnalysisResult
analyzeSolo(const AnalysisConfig &cfg, const TraceBuffer &buf)
{
    Paragraph engine(cfg);
    return engine.analyze(buf);
}

AnalysisResult
analyzeViaShards(const AnalysisConfig &cfg, const TraceBuffer &buf,
                 unsigned shards)
{
    const TraceRecord *records = buf.records().data();
    size_t n = buf.records().size();
    std::vector<size_t> cuts = planShardCuts(records, n, shards);
    std::vector<size_t> bounds;
    bounds.push_back(0);
    bounds.insert(bounds.end(), cuts.begin(), cuts.end());
    bounds.push_back(n);
    std::vector<SegmentRun> segments(bounds.size() - 1);
    for (size_t k = 0; k + 1 < bounds.size(); ++k) {
        runSegment(cfg, records + bounds[k], bounds[k + 1] - bounds[k],
                   segments[k]);
    }
    return stitchSegments(cfg, segments);
}

void
expectShardExact(const AnalysisConfig &cfg, const TraceBuffer &buf,
                 unsigned shards, const char *what)
{
    AnalysisResult solo = analyzeSolo(cfg, buf);
    AnalysisResult stitched = analyzeViaShards(cfg, buf, shards);
    std::string diff;
    EXPECT_TRUE(shardedResultsEqual(solo, stitched, &diff))
        << what << " (shards=" << shards << "): " << diff;
}

TEST(ShardGate, RequiresStallingSyscallsAndPerfectPrediction)
{
    AnalysisConfig cfg;
    EXPECT_TRUE(shardableConfig(cfg));
    cfg.windowSize = 64;
    EXPECT_TRUE(shardableConfig(cfg));
    cfg.sysCallsStall = false;
    EXPECT_FALSE(shardableConfig(cfg));
    cfg.sysCallsStall = true;
    cfg.branchPredictor = PredictorKind::Bimodal;
    EXPECT_FALSE(shardableConfig(cfg));
}

TEST(ShardPlan, CutsFollowSyscalls)
{
    TraceBuffer buf = randomTrace(11, 4000);
    const TraceRecord *records = buf.records().data();
    size_t n = buf.records().size();
    std::vector<size_t> cuts = planShardCuts(records, n, 8);
    EXPECT_LE(cuts.size(), 7u);
    EXPECT_FALSE(cuts.empty()); // 1% syscall rate: ~40 candidates
    size_t prev = 0;
    for (size_t cut : cuts) {
        ASSERT_GT(cut, 0u);
        ASSERT_LT(cut, n);
        EXPECT_GT(cut, prev);
        EXPECT_TRUE(records[cut - 1].isSysCall)
            << "cut " << cut << " not after a syscall";
        prev = cut;
    }
}

TEST(ShardPlan, NoSyscallsMeansNoCuts)
{
    TraceBuffer buf = randomTrace(12, 1000, /*with_syscalls=*/false);
    EXPECT_TRUE(
        planShardCuts(buf.records().data(), buf.records().size(), 4)
            .empty());
}

TEST(ShardStitch, MatchesSoloUnboundedWindow)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        TraceBuffer buf = randomTrace(seed, 3000);
        expectShardExact(AnalysisConfig::dataflowConservative(), buf, 4,
                         "unbounded conservative");
    }
}

TEST(ShardStitch, MatchesSoloFiniteWindows)
{
    for (uint64_t seed = 21; seed <= 26; ++seed) {
        TraceBuffer buf = randomTrace(seed, 3000);
        expectShardExact(AnalysisConfig::windowed(16), buf, 4,
                         "windowed(16)");
        expectShardExact(AnalysisConfig::windowed(64), buf, 3,
                         "windowed(64)");
    }
}

TEST(ShardStitch, ProfileExactWhenSegmentBucketsFold)
{
    // Regression: a segment's BucketedProfile folds (bucket width > 1)
    // once its critical path reaches the bin count, and merging a folded
    // profile is only bin-accurate — the stitch must rebuild the profile
    // from SegmentLog's exact per-level counts. Tiny bins force folding
    // at unit-test trace sizes; at the default 4096 bins the same
    // divergence appeared only past ~400K-record traces.
    for (uint64_t seed = 31; seed <= 34; ++seed) {
        TraceBuffer buf = randomTrace(seed, 4000);
        AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
        cfg.profileBins = 16;
        expectShardExact(cfg, buf, 4, "folded profile, conservative");
        AnalysisConfig narrow = AnalysisConfig::windowed(16);
        narrow.profileBins = 16;
        expectShardExact(narrow, buf, 3, "folded profile, windowed(16)");
    }
}

TEST(ShardStitch, MatchesSoloWithoutRenaming)
{
    for (uint64_t seed = 31; seed <= 36; ++seed) {
        TraceBuffer buf = randomTrace(seed, 3000);
        AnalysisConfig cfg = AnalysisConfig::noRenaming();
        expectShardExact(cfg, buf, 4, "no renaming");
        expectShardExact(AnalysisConfig::regsRenamed(), buf, 4,
                         "regs renamed");
    }
}

TEST(ShardStitch, MatchesSoloWithFuLimits)
{
    for (uint64_t seed = 41; seed <= 44; ++seed) {
        TraceBuffer buf = randomTrace(seed, 2500);
        AnalysisConfig cfg;
        cfg.totalFuLimit = 2;
        expectShardExact(cfg, buf, 4, "fu limit 2");
        cfg.totalFuLimit = 0;
        cfg.fuLimit[static_cast<size_t>(isa::OpClass::IntAlu)] = 3;
        cfg.windowSize = 32;
        expectShardExact(cfg, buf, 4, "per-class fu limit + window");
    }
}

TEST(ShardStitch, MatchesSoloWithLastUseEviction)
{
    for (uint64_t seed = 51; seed <= 54; ++seed) {
        TraceBuffer buf = randomTrace(seed, 2500);
        trace::annotateLastUses(buf);
        AnalysisConfig cfg;
        cfg.useLastUseEviction = true;
        expectShardExact(cfg, buf, 4, "last-use eviction");
        cfg.windowSize = 16;
        expectShardExact(cfg, buf, 4, "last-use eviction + window");
    }
}

TEST(ShardStitch, ManyShardsAndDegenerateCounts)
{
    TraceBuffer buf = randomTrace(61, 4000);
    AnalysisConfig cfg = AnalysisConfig::windowed(32);
    expectShardExact(cfg, buf, 1, "one shard (solo fallback)");
    expectShardExact(cfg, buf, 2, "two shards");
    expectShardExact(cfg, buf, 16, "sixteen shards");
    expectShardExact(cfg, buf, 64, "more shards than syscalls");
}

TEST(ShardStitch, SyscallAdjacentCuts)
{
    // Back-to-back syscalls produce adjacent candidate cuts and
    // near-empty segments; the stitch must still be exact.
    TraceBuffer buf;
    using namespace testhelpers;
    buf.push(alu(3, {1, 2}));
    buf.push(syscall());
    buf.push(syscall());
    buf.push(alu(4, {3}));
    buf.push(syscall());
    buf.push(store(0x1000, 4));
    buf.push(load(5, 0x1000));
    AnalysisConfig cfg;
    for (unsigned shards = 2; shards <= 6; ++shards)
        expectShardExact(cfg, buf, shards, "adjacent syscalls");
}

} // namespace
} // namespace core
} // namespace paragraph
