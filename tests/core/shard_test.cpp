// Split-and-patch sharding: segments analyzed independently and stitched
// (firewall cuts) or validated-and-patched (arbitrary cuts, every config)
// must reproduce the solo run exactly (core/shard.hpp).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/paragraph.hpp"
#include "core/shard.hpp"
#include "support/prng.hpp"
#include "support/test_seed.hpp"
#include "trace/last_use.hpp"

#include "trace_helpers.hpp"

namespace paragraph {
namespace core {
namespace {

using testhelpers::randomTrace;
using trace::TraceBuffer;
using trace::TraceRecord;

/** randomTrace with its control records turned into predictable-and-
 *  mispredictable conditional branches (folded PCs alias bimodal
 *  counters), so modeled predictors actually fire. */
TraceBuffer
branchyTrace(uint64_t seed, size_t length, bool with_syscalls = true)
{
    TraceBuffer buf = randomTrace(seed, length, with_syscalls);
    Prng prng(testSeed(seed + 7919));
    for (TraceRecord &rec : buf.records()) {
        if (rec.cls == isa::OpClass::Control && !rec.isSysCall) {
            rec.isCondBranch = true;
            rec.branchTaken = prng.nextBelow(3) != 0; // taken-biased
            rec.pc %= 61; // alias counters: hits and misses both occur
        }
    }
    return buf;
}

AnalysisResult
analyzeSolo(const AnalysisConfig &cfg, const TraceBuffer &buf)
{
    Paragraph engine(cfg);
    return engine.analyze(buf);
}

/** Run the full plan → parallel-segment → validate-or-replay patch over
 *  explicit @p bounds (segment k spans [bounds[k], bounds[k+1])). */
AnalysisResult
patchOverBounds(const AnalysisConfig &cfg, const TraceBuffer &buf,
                const std::vector<size_t> &bounds, const PatchPlan &plan,
                PatchOutcome *outcome = nullptr)
{
    const TraceRecord *records = buf.records().data();
    const bool modeled = cfg.branchPredictor != PredictorKind::Perfect;
    std::vector<SegmentRun> segments(bounds.size() - 1);
    for (size_t k = 0; k + 1 < bounds.size(); ++k) {
        runSegment(cfg, records + bounds[k], bounds[k + 1] - bounds[k],
                   segments[k], modeled ? &plan.bits : nullptr,
                   modeled ? plan.branchBase[k] : 0);
    }
    auto replay = [&](Paragraph &engine, size_t s) {
        engine.processAll(records + bounds[s],
                          bounds[s + 1] - bounds[s]);
    };
    return patchSegments(cfg, segments, replay,
                         modeled ? &plan.bits : nullptr,
                         modeled ? &plan.branchBase : nullptr, outcome);
}

AnalysisResult
analyzeViaPatch(const AnalysisConfig &cfg, const TraceBuffer &buf,
                unsigned shards, PatchOutcome *outcome = nullptr)
{
    size_t n = buf.records().size();
    PatchPlan plan = planPatchPlan(cfg, buf.records().data(), n, shards);
    std::vector<size_t> bounds;
    bounds.push_back(0);
    bounds.insert(bounds.end(), plan.cuts.begin(), plan.cuts.end());
    bounds.push_back(n);
    return patchOverBounds(cfg, buf, bounds, plan, outcome);
}

void
expectPatchExact(const AnalysisConfig &cfg, const TraceBuffer &buf,
                 unsigned shards, const char *what)
{
    AnalysisResult solo = analyzeSolo(cfg, buf);
    PatchOutcome outcome;
    AnalysisResult patched = analyzeViaPatch(cfg, buf, shards, &outcome);
    std::string diff;
    EXPECT_TRUE(shardedResultsEqual(solo, patched, &diff))
        << what << " (shards=" << shards
        << ", spliced=" << outcome.spliced
        << ", replayed=" << outcome.replayed << "): " << diff;
}

AnalysisResult
analyzeViaShards(const AnalysisConfig &cfg, const TraceBuffer &buf,
                 unsigned shards)
{
    const TraceRecord *records = buf.records().data();
    size_t n = buf.records().size();
    std::vector<size_t> cuts = planShardCuts(records, n, shards);
    std::vector<size_t> bounds;
    bounds.push_back(0);
    bounds.insert(bounds.end(), cuts.begin(), cuts.end());
    bounds.push_back(n);
    std::vector<SegmentRun> segments(bounds.size() - 1);
    for (size_t k = 0; k + 1 < bounds.size(); ++k) {
        runSegment(cfg, records + bounds[k], bounds[k + 1] - bounds[k],
                   segments[k]);
    }
    return stitchSegments(cfg, segments);
}

void
expectShardExact(const AnalysisConfig &cfg, const TraceBuffer &buf,
                 unsigned shards, const char *what)
{
    AnalysisResult solo = analyzeSolo(cfg, buf);
    AnalysisResult stitched = analyzeViaShards(cfg, buf, shards);
    std::string diff;
    EXPECT_TRUE(shardedResultsEqual(solo, stitched, &diff))
        << what << " (shards=" << shards << "): " << diff;
}

TEST(ShardGate, RequiresStallingSyscallsAndPerfectPrediction)
{
    AnalysisConfig cfg;
    EXPECT_TRUE(shardableConfig(cfg));
    cfg.windowSize = 64;
    EXPECT_TRUE(shardableConfig(cfg));
    cfg.sysCallsStall = false;
    EXPECT_FALSE(shardableConfig(cfg));
    cfg.sysCallsStall = true;
    cfg.branchPredictor = PredictorKind::Bimodal;
    EXPECT_FALSE(shardableConfig(cfg));
}

TEST(ShardPlan, CutsFollowSyscalls)
{
    TraceBuffer buf = randomTrace(11, 4000);
    const TraceRecord *records = buf.records().data();
    size_t n = buf.records().size();
    std::vector<size_t> cuts = planShardCuts(records, n, 8);
    EXPECT_LE(cuts.size(), 7u);
    EXPECT_FALSE(cuts.empty()); // 1% syscall rate: ~40 candidates
    size_t prev = 0;
    for (size_t cut : cuts) {
        ASSERT_GT(cut, 0u);
        ASSERT_LT(cut, n);
        EXPECT_GT(cut, prev);
        EXPECT_TRUE(records[cut - 1].isSysCall)
            << "cut " << cut << " not after a syscall";
        prev = cut;
    }
}

TEST(ShardPlan, NoSyscallsMeansNoCuts)
{
    TraceBuffer buf = randomTrace(12, 1000, /*with_syscalls=*/false);
    EXPECT_TRUE(
        planShardCuts(buf.records().data(), buf.records().size(), 4)
            .empty());
}

TEST(ShardStitch, MatchesSoloUnboundedWindow)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        TraceBuffer buf = randomTrace(seed, 3000);
        expectShardExact(AnalysisConfig::dataflowConservative(), buf, 4,
                         "unbounded conservative");
    }
}

TEST(ShardStitch, MatchesSoloFiniteWindows)
{
    for (uint64_t seed = 21; seed <= 26; ++seed) {
        TraceBuffer buf = randomTrace(seed, 3000);
        expectShardExact(AnalysisConfig::windowed(16), buf, 4,
                         "windowed(16)");
        expectShardExact(AnalysisConfig::windowed(64), buf, 3,
                         "windowed(64)");
    }
}

TEST(ShardStitch, ProfileExactWhenSegmentBucketsFold)
{
    // Regression: a segment's BucketedProfile folds (bucket width > 1)
    // once its critical path reaches the bin count, and merging a folded
    // profile is only bin-accurate — the stitch must rebuild the profile
    // from SegmentLog's exact per-level counts. Tiny bins force folding
    // at unit-test trace sizes; at the default 4096 bins the same
    // divergence appeared only past ~400K-record traces.
    for (uint64_t seed = 31; seed <= 34; ++seed) {
        TraceBuffer buf = randomTrace(seed, 4000);
        AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
        cfg.profileBins = 16;
        expectShardExact(cfg, buf, 4, "folded profile, conservative");
        AnalysisConfig narrow = AnalysisConfig::windowed(16);
        narrow.profileBins = 16;
        expectShardExact(narrow, buf, 3, "folded profile, windowed(16)");
    }
}

TEST(ShardStitch, MatchesSoloWithoutRenaming)
{
    for (uint64_t seed = 31; seed <= 36; ++seed) {
        TraceBuffer buf = randomTrace(seed, 3000);
        AnalysisConfig cfg = AnalysisConfig::noRenaming();
        expectShardExact(cfg, buf, 4, "no renaming");
        expectShardExact(AnalysisConfig::regsRenamed(), buf, 4,
                         "regs renamed");
    }
}

TEST(ShardStitch, MatchesSoloWithFuLimits)
{
    for (uint64_t seed = 41; seed <= 44; ++seed) {
        TraceBuffer buf = randomTrace(seed, 2500);
        AnalysisConfig cfg;
        cfg.totalFuLimit = 2;
        expectShardExact(cfg, buf, 4, "fu limit 2");
        cfg.totalFuLimit = 0;
        cfg.fuLimit[static_cast<size_t>(isa::OpClass::IntAlu)] = 3;
        cfg.windowSize = 32;
        expectShardExact(cfg, buf, 4, "per-class fu limit + window");
    }
}

TEST(ShardStitch, MatchesSoloWithLastUseEviction)
{
    for (uint64_t seed = 51; seed <= 54; ++seed) {
        TraceBuffer buf = randomTrace(seed, 2500);
        trace::annotateLastUses(buf);
        AnalysisConfig cfg;
        cfg.useLastUseEviction = true;
        expectShardExact(cfg, buf, 4, "last-use eviction");
        cfg.windowSize = 16;
        expectShardExact(cfg, buf, 4, "last-use eviction + window");
    }
}

TEST(ShardStitch, ManyShardsAndDegenerateCounts)
{
    TraceBuffer buf = randomTrace(61, 4000);
    AnalysisConfig cfg = AnalysisConfig::windowed(32);
    expectShardExact(cfg, buf, 1, "one shard (solo fallback)");
    expectShardExact(cfg, buf, 2, "two shards");
    expectShardExact(cfg, buf, 16, "sixteen shards");
    expectShardExact(cfg, buf, 64, "more shards than syscalls");
}

TEST(PatchPlan, FallsBackToPlainTilesWithoutCandidates)
{
    // No syscalls and a perfect predictor: no natural boundary anywhere,
    // so the plan cuts plain interior tiles instead of going solo.
    TraceBuffer buf = randomTrace(71, 1000, /*with_syscalls=*/false);
    PatchPlan plan =
        planPatchPlan(AnalysisConfig(), buf.records().data(),
                      buf.records().size(), 4);
    ASSERT_EQ(plan.cuts.size(), 3u);
    size_t prev = 0;
    for (size_t cut : plan.cuts) {
        EXPECT_GT(cut, prev);
        EXPECT_LT(cut, buf.records().size());
        prev = cut;
    }
}

TEST(PatchPlan, ModeledPredictorCutsAfterMispredictsWithBranchBase)
{
    TraceBuffer buf = branchyTrace(72, 4000);
    AnalysisConfig cfg;
    cfg.branchPredictor = PredictorKind::Bimodal;
    const TraceRecord *records = buf.records().data();
    size_t n = buf.records().size();
    PatchPlan plan = planPatchPlan(cfg, records, n, 8);
    ASSERT_FALSE(plan.cuts.empty());
    ASSERT_EQ(plan.branchBase.size(), plan.segments());
    EXPECT_EQ(plan.branchBase[0], 0u);
    // branchBase[k] must count the conditional branches before segment k.
    for (size_t k = 0; k < plan.cuts.size(); ++k) {
        uint64_t count = 0;
        for (size_t i = 0; i < plan.cuts[k]; ++i) {
            if (records[i].isCondBranch)
                ++count;
        }
        EXPECT_EQ(plan.branchBase[k + 1], count) << "cut " << k;
    }
    // The bitvector holds one bit per conditional branch of the trace.
    uint64_t branches = 0;
    for (size_t i = 0; i < n; ++i)
        branches += records[i].isCondBranch ? 1 : 0;
    EXPECT_EQ(plan.bits.count, branches);
}

TEST(SplitAndPatch, MatchesSoloAcrossConfigMatrix)
{
    // The full switch matrix, including every previously-unshardable
    // config: optimistic syscalls, modeled predictors, and their
    // combinations with windows, renaming, and FU limits.
    std::vector<std::pair<AnalysisConfig, const char *>> matrix;
    matrix.emplace_back(AnalysisConfig::dataflowConservative(),
                        "conservative");
    matrix.emplace_back(AnalysisConfig::dataflowOptimistic(),
                        "optimistic (no stall)");
    matrix.emplace_back(AnalysisConfig::noRenaming(), "no renaming");
    matrix.emplace_back(AnalysisConfig::windowed(16), "windowed(16)");
    {
        AnalysisConfig cfg;
        cfg.branchPredictor = PredictorKind::Bimodal;
        matrix.emplace_back(cfg, "bimodal");
    }
    {
        AnalysisConfig cfg;
        cfg.sysCallsStall = false;
        cfg.branchPredictor = PredictorKind::AlwaysWrong;
        cfg.windowSize = 32;
        matrix.emplace_back(cfg, "no stall + always-wrong + window");
    }
    {
        AnalysisConfig cfg;
        cfg.branchPredictor = PredictorKind::NeverTaken;
        cfg.renameRegisters = false;
        cfg.renameData = false;
        cfg.renameStack = false;
        matrix.emplace_back(cfg, "never-taken, no renaming");
    }
    {
        AnalysisConfig cfg;
        cfg.sysCallsStall = false;
        cfg.totalFuLimit = 2;
        matrix.emplace_back(cfg, "no stall + fu limit");
    }
    for (uint64_t seed = 81; seed <= 83; ++seed) {
        TraceBuffer buf = branchyTrace(seed, 3000);
        for (const auto &[cfg, what] : matrix)
            expectPatchExact(cfg, buf, 4, what);
    }
}

TEST(SplitAndPatch, StallCutsSpliceWithoutReplay)
{
    // At total-firewall cuts every splice condition holds: the patch must
    // merge all segments without a single sequential replay.
    TraceBuffer buf = randomTrace(84, 3000);
    AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
    AnalysisResult solo = analyzeSolo(cfg, buf);
    PatchOutcome outcome;
    AnalysisResult patched = analyzeViaPatch(cfg, buf, 4, &outcome);
    std::string diff;
    EXPECT_TRUE(shardedResultsEqual(solo, patched, &diff)) << diff;
    EXPECT_EQ(outcome.replayed, 0u);
    EXPECT_GE(outcome.spliced, 2u);
}

TEST(SplitAndPatch, PlainTilesStayExactViaReplay)
{
    // No natural boundaries at all (no syscalls, perfect prediction, no
    // renaming): tiles cut mid-dependence-chain, most splices fail, and
    // the sequential replay must still patch the exact solo result.
    TraceBuffer buf = randomTrace(85, 2000, /*with_syscalls=*/false);
    AnalysisConfig cfg = AnalysisConfig::noRenaming();
    expectPatchExact(cfg, buf, 4, "plain tiles, no renaming");
    AnalysisConfig windowed = AnalysisConfig::windowed(16);
    expectPatchExact(windowed, buf, 4, "plain tiles, windowed");
    AnalysisConfig fu;
    fu.totalFuLimit = 2;
    expectPatchExact(fu, buf, 4, "plain tiles, fu limit");
}

TEST(SplitAndPatch, EmptyAndAdjacentSegments)
{
    // Degenerate explicit bounds: empty segments at the very start and
    // end, adjacent cuts producing an empty middle segment, and a
    // one-record segment. The patch must be exact through all of them.
    TraceBuffer buf = branchyTrace(86, 400);
    const size_t n = buf.records().size();
    for (const AnalysisConfig &cfg :
         {AnalysisConfig(), AnalysisConfig::windowed(8)}) {
        AnalysisResult solo = analyzeSolo(cfg, buf);
        PatchPlan plan; // no precomputed bits: Perfect predictor
        std::vector<size_t> bounds{0,     0,     7,     8,     150,
                                   150,   n - 1, n,     n};
        AnalysisResult patched = patchOverBounds(cfg, buf, bounds, plan);
        std::string diff;
        EXPECT_TRUE(shardedResultsEqual(solo, patched, &diff)) << diff;
    }
}

TEST(SplitAndPatch, WindowStraddlingChain)
{
    // A dependence chain threaded through a finite window, cut mid-chain:
    // the fresh segment's head records are displaced by pre-cut window
    // entries solo-side, exercising the head-floor validation and the
    // carried-ring reconstruction.
    using namespace testhelpers;
    TraceBuffer buf;
    for (int i = 0; i < 64; ++i)
        buf.push(alu(static_cast<uint8_t>(1 + (i % 7)),
                     {static_cast<uint8_t>(1 + ((i + 1) % 7))}));
    AnalysisConfig cfg = AnalysisConfig::windowed(4);
    AnalysisResult solo = analyzeSolo(cfg, buf);
    for (size_t cut : {size_t(1), size_t(2), size_t(31), size_t(62)}) {
        PatchPlan plan;
        std::vector<size_t> bounds{0, cut, buf.records().size()};
        AnalysisResult patched = patchOverBounds(cfg, buf, bounds, plan);
        std::string diff;
        EXPECT_TRUE(shardedResultsEqual(solo, patched, &diff))
            << "cut=" << cut << ": " << diff;
    }
}

TEST(SplitAndPatch, MoreShardsThanRecords)
{
    TraceBuffer buf = branchyTrace(87, 40);
    AnalysisConfig cfg;
    cfg.branchPredictor = PredictorKind::Bimodal;
    expectPatchExact(cfg, buf, 64, "more shards than records");
    expectPatchExact(cfg, buf, 2, "two shards, tiny trace");
}

TEST(SplitAndPatch, ConsecutiveReplaysShareOneSession)
{
    // FU-limited configs only splice at total firewalls; a no-syscall
    // trace tiled into 8 segments replays every boundary, exercising the
    // shared sequential engine session across consecutive failures.
    TraceBuffer buf = randomTrace(88, 1500, /*with_syscalls=*/false);
    AnalysisConfig cfg;
    cfg.totalFuLimit = 1;
    AnalysisResult solo = analyzeSolo(cfg, buf);
    PatchOutcome outcome;
    AnalysisResult patched = analyzeViaPatch(cfg, buf, 8, &outcome);
    std::string diff;
    EXPECT_TRUE(shardedResultsEqual(solo, patched, &diff)) << diff;
    EXPECT_GT(outcome.replayed, 0u);
}

TEST(ShardStitch, SyscallAdjacentCuts)
{
    // Back-to-back syscalls produce adjacent candidate cuts and
    // near-empty segments; the stitch must still be exact.
    TraceBuffer buf;
    using namespace testhelpers;
    buf.push(alu(3, {1, 2}));
    buf.push(syscall());
    buf.push(syscall());
    buf.push(alu(4, {3}));
    buf.push(syscall());
    buf.push(store(0x1000, 4));
    buf.push(load(5, 0x1000));
    AnalysisConfig cfg;
    for (unsigned shards = 2; shards <= 6; ++shards)
        expectShardExact(cfg, buf, shards, "adjacent syscalls");
}

} // namespace
} // namespace core
} // namespace paragraph
