// Tests for the two Section-2.3/3.2 extensions: branch-misprediction
// firewalls (with predictor models) and the storage (waiting-token) profile.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/branch_predictor.hpp"
#include "core/ddg_builder.hpp"
#include "core/paragraph.hpp"
#include "support/interval_profile.hpp"
#include "tests/core/trace_helpers.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;
using namespace paragraph::core;
using namespace paragraph::testhelpers;

namespace {

TraceRecord
condBranch(uint8_t src, bool taken, uint64_t pc)
{
    TraceRecord rec = branch({src});
    rec.isCondBranch = true;
    rec.branchTaken = taken;
    rec.pc = pc;
    return rec;
}

} // namespace

// ---------------------------------------------------------------------------
// BranchPredictor unit tests.
// ---------------------------------------------------------------------------

TEST(BranchPredictor, PerfectNeverMisses)
{
    BranchPredictor pred(PredictorKind::Perfect);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(pred.predictAndUpdate(7, (i % 3) == 0));
    EXPECT_EQ(pred.mispredictions(), 0u);
    EXPECT_DOUBLE_EQ(pred.accuracy(), 1.0);
}

TEST(BranchPredictor, AlwaysWrongAlwaysMisses)
{
    BranchPredictor pred(PredictorKind::AlwaysWrong);
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(pred.predictAndUpdate(7, i % 2 == 0));
    EXPECT_EQ(pred.mispredictions(), 50u);
    EXPECT_DOUBLE_EQ(pred.accuracy(), 0.0);
}

TEST(BranchPredictor, StaticModels)
{
    BranchPredictor taken(PredictorKind::AlwaysTaken);
    EXPECT_TRUE(taken.predictAndUpdate(1, true));
    EXPECT_FALSE(taken.predictAndUpdate(1, false));

    BranchPredictor not_taken(PredictorKind::NeverTaken);
    EXPECT_FALSE(not_taken.predictAndUpdate(1, true));
    EXPECT_TRUE(not_taken.predictAndUpdate(1, false));
}

TEST(BranchPredictor, BimodalLearnsABiasedBranch)
{
    BranchPredictor pred(PredictorKind::Bimodal, 10);
    // Loop-style branch: taken 99 times, not-taken once per 100.
    uint64_t wrong = 0;
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 99; ++i) {
            if (!pred.predictAndUpdate(0x40, true))
                ++wrong;
        }
        pred.predictAndUpdate(0x40, false);
    }
    // After warm-up, the taken predictions are essentially always right.
    EXPECT_LT(wrong, 5u);
    EXPECT_GT(pred.accuracy(), 0.95);
}

TEST(BranchPredictor, BimodalCountersAreHysteretic)
{
    BranchPredictor pred(PredictorKind::Bimodal, 8);
    // Saturate toward taken.
    for (int i = 0; i < 4; ++i)
        pred.predictAndUpdate(5, true);
    // One not-taken outcome must not flip the next prediction.
    pred.predictAndUpdate(5, false);
    EXPECT_TRUE(pred.predictAndUpdate(5, true));
}

TEST(BranchPredictor, ResetClearsStateAndStats)
{
    BranchPredictor pred(PredictorKind::Bimodal, 8);
    pred.predictAndUpdate(1, true);
    pred.predictAndUpdate(1, true);
    pred.reset();
    EXPECT_EQ(pred.predictions(), 0u);
    // Counters back to weakly-not-taken: first prediction is not-taken.
    EXPECT_FALSE(pred.predictAndUpdate(1, true));
}

TEST(BranchPredictor, KindNames)
{
    EXPECT_STREQ(predictorKindName(PredictorKind::Perfect), "perfect");
    EXPECT_STREQ(predictorKindName(PredictorKind::Bimodal), "bimodal");
    EXPECT_STREQ(predictorKindName(PredictorKind::AlwaysWrong),
                 "always-wrong");
}

// ---------------------------------------------------------------------------
// Misprediction firewalls in the engine.
// ---------------------------------------------------------------------------

TEST(MispredictFirewall, PerfectPredictionChangesNothing)
{
    Paragraph engine(AnalysisConfig::dataflowConservative());
    engine.process(alu(1, {}));
    engine.process(condBranch(1, true, 10));
    engine.process(alu(2, {}));
    EXPECT_EQ(engine.lastPlacedLevel(), 0); // no firewall
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.condBranches, 1u);
    EXPECT_EQ(res.branchMispredictions, 0u);
}

TEST(MispredictFirewall, MispredictionStallsAtResolution)
{
    AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
    cfg.branchPredictor = PredictorKind::AlwaysWrong;
    Paragraph engine(cfg);
    engine.process(typed(isa::OpClass::IntMul, 1, {})); // r1 at L5
    engine.process(condBranch(1, true, 10)); // resolves at level 6
    engine.process(alu(2, {}));              // must wait for resolution
    EXPECT_EQ(engine.lastPlacedLevel(), 6);
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.branchMispredictions, 1u);
    EXPECT_GT(res.firewalls, 0u);
}

TEST(MispredictFirewall, ResolutionUsesBranchSources)
{
    AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
    cfg.branchPredictor = PredictorKind::AlwaysWrong;
    Paragraph engine(cfg);
    // A branch on a pre-existing value resolves at the top: firewall floor
    // stays at level 0 and later ops are unaffected.
    engine.process(condBranch(9, false, 3));
    engine.process(alu(2, {}));
    EXPECT_EQ(engine.lastPlacedLevel(), 0);
}

TEST(MispredictFirewall, SerializesLoopIterations)
{
    // A chain: each iteration computes r1 and branches on it. With an
    // adversarial predictor every branch stalls the next iteration.
    AnalysisConfig wrong = AnalysisConfig::dataflowConservative();
    wrong.branchPredictor = PredictorKind::AlwaysWrong;
    AnalysisConfig perfect = AnalysisConfig::dataflowConservative();

    TraceBuffer buf;
    for (int i = 0; i < 100; ++i) {
        buf.push(alu(static_cast<uint8_t>(1 + (i % 4)), {}));
        buf.push(condBranch(static_cast<uint8_t>(1 + (i % 4)), i % 2 == 0,
                            static_cast<uint64_t>(i % 7)));
    }
    trace::BufferSource a(buf), b(buf);
    AnalysisResult perfect_res = Paragraph(perfect).analyze(a);
    AnalysisResult wrong_res = Paragraph(wrong).analyze(b);
    EXPECT_EQ(perfect_res.criticalPathLength, 1u); // all independent
    EXPECT_EQ(wrong_res.criticalPathLength, 100u); // fully serialized
}

TEST(MispredictFirewall, AccuracyOrdersParallelism)
{
    // perfect >= bimodal >= always-wrong on every workload.
    auto &suite = workloads::WorkloadSuite::instance();
    for (const char *name : {"xlisp", "cc1", "doduc"}) {
        double par[3];
        PredictorKind kinds[3] = {PredictorKind::Perfect,
                                  PredictorKind::Bimodal,
                                  PredictorKind::AlwaysWrong};
        for (int i = 0; i < 3; ++i) {
            AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
            cfg.branchPredictor = kinds[i];
            auto src = suite.makeSource(suite.find(name),
                                        workloads::Scale::Small);
            par[i] = Paragraph(cfg).analyze(*src).availableParallelism;
        }
        EXPECT_GE(par[0], par[1] - 1e-9) << name;
        EXPECT_GE(par[1], par[2] - 1e-9) << name;
        // And misprediction must actually bite on branchy codes.
        EXPECT_LT(par[2], par[0]) << name;
    }
}

TEST(MispredictFirewall, BaselineAndBuilderAgreeUnderPredictors)
{
    TraceBuffer buf = randomTrace(31, 3000);
    // randomTrace branches are not conditional; synthesize outcomes.
    for (auto &rec : buf.records()) {
        if (rec.cls == isa::OpClass::Control) {
            rec.isCondBranch = true;
            rec.branchTaken = (rec.pc % 3) != 0;
        }
    }
    AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
    cfg.branchPredictor = PredictorKind::Bimodal;
    trace::BufferSource a(buf), b(buf);
    AnalysisResult full = Paragraph(cfg).analyze(a);
    BaselineResult fast = CriticalPathAnalyzer(cfg).analyze(b);
    EXPECT_EQ(full.criticalPathLength, fast.criticalPathLength);

    Ddg ddg = buildDdg(buf, cfg);
    EXPECT_EQ(ddg.criticalPathLength, full.criticalPathLength);
}

// ---------------------------------------------------------------------------
// IntervalProfile and the storage profile.
// ---------------------------------------------------------------------------

TEST(IntervalProfile, SingleInterval)
{
    IntervalProfile p(16);
    p.add(2, 5);
    EXPECT_EQ(p.intervals(), 1u);
    EXPECT_EQ(p.maxLevel(), 5u);
    auto series = p.series();
    ASSERT_EQ(series.size(), 6u);
    // Live through levels 2..5 (boundary-exact between buckets).
    EXPECT_DOUBLE_EQ(series[3].liveValues, 1.0);
    EXPECT_DOUBLE_EQ(series[4].liveValues, 1.0);
    EXPECT_DOUBLE_EQ(series[0].liveValues, 0.0);
    EXPECT_DOUBLE_EQ(p.peakLive(), 1.0);
}

TEST(IntervalProfile, OverlappingIntervalsStack)
{
    IntervalProfile p(32);
    for (int i = 0; i < 10; ++i)
        p.add(0, 9);
    EXPECT_DOUBLE_EQ(p.peakLive(), 10.0);
    auto series = p.series();
    EXPECT_DOUBLE_EQ(series[4].liveValues, 10.0);
}

TEST(IntervalProfile, DegenerateAndReversedIntervals)
{
    IntervalProfile p(16);
    p.add(3, 3); // zero-length lifetime
    p.add(7, 2); // reversed end clamps to start
    EXPECT_EQ(p.intervals(), 2u);
    EXPECT_EQ(p.maxLevel(), 7u);
}

TEST(IntervalProfile, FoldsKeepCounts)
{
    IntervalProfile p(4);
    for (uint64_t i = 0; i < 100; ++i)
        p.add(i * 10, i * 10 + 5);
    EXPECT_EQ(p.intervals(), 100u);
    EXPECT_GT(p.bucketWidth(), 1u);
    // Each interval is live for 6 of every 10 levels: mean ~0.6.
    EXPECT_NEAR(p.meanLive(), 0.6, 0.15);
}

TEST(IntervalProfile, EmptyIsEmpty)
{
    IntervalProfile p(8);
    EXPECT_TRUE(p.empty());
    EXPECT_TRUE(p.series().empty());
    EXPECT_DOUBLE_EQ(p.peakLive(), 0.0);
    EXPECT_DOUBLE_EQ(p.meanLive(), 0.0);
}

TEST(StorageProfile, TracksLiveValues)
{
    // Ten values created at level 0, all read once by a level-6 consumer
    // chain: they stay live until their reader fires.
    Paragraph engine(AnalysisConfig::dataflowConservative());
    for (uint8_t r = 1; r <= 8; ++r)
        engine.process(alu(r, {}));
    engine.process(typed(isa::OpClass::IntMul, 9, {1, 2})); // L6
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.storageProfile.intervals(), res.placedOps);
    EXPECT_GE(res.storageProfile.peakLive(), 8.0);
}

TEST(StorageProfile, DisableSwitchWorks)
{
    AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
    cfg.collectStorageProfile = false;
    Paragraph engine(cfg);
    engine.process(alu(1, {}));
    AnalysisResult res = engine.finish();
    EXPECT_TRUE(res.storageProfile.empty());
}

TEST(StorageProfile, PeakAtLeastMeanParallelismTimesLifetime)
{
    // Sanity on a workload: storage peak must be at least as large as the
    // live-well's (trace-order) peak is meaningful and non-trivial.
    auto &suite = workloads::WorkloadSuite::instance();
    auto src = suite.makeSource(suite.find("fpppp"), workloads::Scale::Small);
    AnalysisResult res =
        Paragraph(AnalysisConfig::dataflowConservative()).analyze(*src);
    EXPECT_GT(res.storageProfile.peakLive(), 100.0);
    EXPECT_EQ(res.storageProfile.intervals(),
              res.lifetimes.totalCount());
}
