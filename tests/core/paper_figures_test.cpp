// Reproductions of the paper's worked examples: Figures 1, 2, 3, 4, and the
// live-well state of Figure 5. Levels here are 0-based (the paper's Figure 5
// uses the same convention: pre-existing values sit at level -1).
#include <gtest/gtest.h>

#include "core/ddg_builder.hpp"
#include "core/paragraph.hpp"
#include "tests/core/trace_helpers.hpp"

using namespace paragraph;
using namespace paragraph::core;
using namespace paragraph::testhelpers;

namespace {

// The S := A + B + C + D evaluation of Figure 1. Registers r0..r6 hold the
// paper's names; A..D are pre-initialized DATA words, S is a DATA word.
constexpr uint64_t addrA = 0x1000;
constexpr uint64_t addrB = 0x1004;
constexpr uint64_t addrC = 0x1008;
constexpr uint64_t addrD = 0x100c;
constexpr uint64_t addrS = 0x1010;

TraceBuffer
figure1Trace()
{
    TraceBuffer buf;
    buf.push(load(0, addrA)); // load r0,A
    buf.push(load(1, addrB)); // load r1,B
    buf.push(alu(4, {0, 1})); // r4 <- r0 + r1
    buf.push(load(2, addrC)); // load r2,C
    buf.push(load(3, addrD)); // load r3,D
    buf.push(alu(5, {2, 3})); // r5 <- r2 + r3
    buf.push(alu(6, {4, 5})); // r6 <- r4 + r5
    buf.push(store(addrS, 6)); // store r6,S
    return buf;
}

// Figure 2: the same computation reusing r0/r1 for C and D.
TraceBuffer
figure2Trace()
{
    TraceBuffer buf;
    buf.push(load(0, addrA));
    buf.push(load(1, addrB));
    buf.push(alu(4, {0, 1}));
    buf.push(load(0, addrC)); // reuses r0
    buf.push(load(1, addrD)); // reuses r1
    buf.push(alu(5, {0, 1}));
    buf.push(alu(6, {4, 5}));
    buf.push(store(addrS, 6));
    return buf;
}

std::vector<int64_t>
placementLevels(Paragraph &engine, const TraceBuffer &buf)
{
    std::vector<int64_t> levels;
    for (size_t i = 0; i < buf.size(); ++i) {
        engine.process(buf[i]);
        levels.push_back(engine.lastPlacedLevel());
    }
    return levels;
}

} // namespace

TEST(PaperFigure1, DataflowPlacementAndCriticalPath)
{
    Paragraph engine(AnalysisConfig::dataflowConservative());
    TraceBuffer buf = figure1Trace();
    auto levels = placementLevels(engine, buf);
    // Loads at level 0, the two adds at 1, the final add at 2, store at 3.
    EXPECT_EQ(levels,
              (std::vector<int64_t>{0, 0, 1, 0, 0, 1, 2, 3}));
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.criticalPathLength, 4u);
    EXPECT_EQ(res.placedOps, 8u);
    EXPECT_DOUBLE_EQ(res.availableParallelism, 2.0);

    // Parallelism profile: 4, 2, 1, 1 operations in levels 0..3.
    auto series = res.profile.series();
    ASSERT_EQ(series.size(), 4u);
    EXPECT_DOUBLE_EQ(series[0].opsPerLevel, 4.0);
    EXPECT_DOUBLE_EQ(series[1].opsPerLevel, 2.0);
    EXPECT_DOUBLE_EQ(series[2].opsPerLevel, 1.0);
    EXPECT_DOUBLE_EQ(series[3].opsPerLevel, 1.0);
}

TEST(PaperFigure5, LiveWellStateAfterFigure1)
{
    Paragraph engine(AnalysisConfig::dataflowConservative());
    TraceBuffer buf = figure1Trace();
    for (size_t i = 0; i < buf.size(); ++i)
        engine.process(buf[i]);

    // Figure 5: r0..r3 created in level 0, r4/r5 in 1, r6 in 2, S in 3;
    // A..D entered as pre-existing values in level -1; highestLevel 0;
    // deepestLevelYetUsed 3.
    const LiveWell &well = engine.liveWell();
    auto level_of = [&](const trace::Operand &op) {
        const LiveValue *lv = well.find(trace::locationKey(op));
        EXPECT_NE(lv, nullptr);
        return lv ? lv->level : INT64_MIN;
    };
    for (uint8_t r : {0, 1, 2, 3})
        EXPECT_EQ(level_of(trace::Operand::intReg(r)), 0) << "r" << int(r);
    EXPECT_EQ(level_of(trace::Operand::intReg(4)), 1);
    EXPECT_EQ(level_of(trace::Operand::intReg(5)), 1);
    EXPECT_EQ(level_of(trace::Operand::intReg(6)), 2);
    EXPECT_EQ(
        level_of(trace::Operand::mem(addrS, trace::Segment::Data)), 3);
    for (uint64_t a : {addrA, addrB, addrC, addrD}) {
        const LiveValue *lv =
            well.find(trace::locationKey(
                trace::Operand::mem(a, trace::Segment::Data)));
        ASSERT_NE(lv, nullptr);
        EXPECT_EQ(lv->level, -1);
        EXPECT_TRUE(lv->preExisting);
    }
    EXPECT_EQ(engine.highestLevel(), 0);
    EXPECT_EQ(engine.deepestLevel(), 3);
}

TEST(PaperFigure2, StorageDependenciesWithoutRegisterRenaming)
{
    AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
    cfg.renameRegisters = false;
    Paragraph engine(cfg);
    TraceBuffer buf = figure2Trace();
    auto levels = placementLevels(engine, buf);
    // "The subexpression C + D cannot begin execution until the
    //  subexpression A + B has completed using the registers r0 and r1."
    EXPECT_EQ(levels,
              (std::vector<int64_t>{0, 0, 1, 2, 2, 3, 4, 5}));
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.criticalPathLength, 6u);
    EXPECT_GT(res.storageDelayedOps, 0u);

    // Profile: 2, 1, 2, 1, 1, 1 in levels 0..5.
    auto series = res.profile.series();
    ASSERT_EQ(series.size(), 6u);
    EXPECT_DOUBLE_EQ(series[0].opsPerLevel, 2.0);
    EXPECT_DOUBLE_EQ(series[1].opsPerLevel, 1.0);
    EXPECT_DOUBLE_EQ(series[2].opsPerLevel, 2.0);
    EXPECT_DOUBLE_EQ(series[3].opsPerLevel, 1.0);
    EXPECT_DOUBLE_EQ(series[4].opsPerLevel, 1.0);
    EXPECT_DOUBLE_EQ(series[5].opsPerLevel, 1.0);
}

TEST(PaperFigure2, RenamingRestoresTheDataflowShape)
{
    // With register renaming on, Figure 2's trace is Figure 1's DDG.
    Paragraph engine(AnalysisConfig::dataflowConservative());
    TraceBuffer buf = figure2Trace();
    auto levels = placementLevels(engine, buf);
    EXPECT_EQ(levels, (std::vector<int64_t>{0, 0, 1, 0, 0, 1, 2, 3}));
    EXPECT_EQ(engine.finish().criticalPathLength, 4u);
}

TEST(PaperFigure3, ControlDependencyViaFirewall)
{
    // "read r1" is an input syscall; under the conservative assumption the
    // computation of C + D is delayed until after it.
    TraceBuffer buf;
    buf.push(load(0, addrA)); // load r0,A
    buf.push(syscall());      // read r1 (stand-in: writes v0/r2... use r1)
    buf.records().back().dest = trace::Operand::intReg(1);
    buf.push(branch({1}));    // cmp/ble r1 (not placed)
    buf.push(alu(2, {0, 1})); // r2 <- r0 - r1 (the taken path)
    buf.push(store(addrS, 2));
    buf.push(load(3, addrC));
    buf.push(load(4, addrD));
    buf.push(alu(5, {3, 4}));

    AnalysisConfig conservative = AnalysisConfig::dataflowConservative();
    Paragraph engine(conservative);
    auto levels = placementLevels(engine, buf);
    // syscall at 0, firewall after it; everything later is below level 0.
    EXPECT_EQ(levels[0], 0);  // load A
    EXPECT_EQ(levels[1], 0);  // read r1
    EXPECT_EQ(levels[2], -1); // branch: not placed
    EXPECT_EQ(levels[3], 1);  // r2
    EXPECT_EQ(levels[4], 2);  // store
    EXPECT_EQ(levels[5], 1);  // load C *delayed by the firewall*
    EXPECT_EQ(levels[6], 1);  // load D
    EXPECT_EQ(levels[7], 2);  // r5
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.firewalls, 1u);
    EXPECT_EQ(res.placedOps, 7u); // branch excluded

    // Optimistically, the loads of C and D float to the top level.
    AnalysisConfig optimistic = AnalysisConfig::dataflowOptimistic();
    Paragraph opt(optimistic);
    auto opt_levels = placementLevels(opt, buf);
    EXPECT_EQ(opt_levels[1], -1); // syscall ignored entirely
    EXPECT_EQ(opt_levels[5], 0);  // load C at the top
    EXPECT_EQ(opt_levels[6], 0);
    AnalysisResult opt_res = opt.finish();
    EXPECT_EQ(opt_res.firewalls, 0u);
    EXPECT_EQ(opt_res.placedOps, 6u); // syscall also excluded
}

TEST(PaperFigure4, ResourceDependenciesWithTwoFus)
{
    // "The processor executing the code fragment contains only two generic
    //  functional units, thus at most two operations can coexist in any
    //  single level of the DDG."
    AnalysisConfig cfg = AnalysisConfig::dataflowConservative();
    cfg.totalFuLimit = 2;
    Paragraph engine(cfg);
    TraceBuffer buf = figure1Trace();
    auto levels = placementLevels(engine, buf);
    // Greedy trace-order placement (what a streaming analyzer does): r4 is
    // placed before loads C/D arrive and claims a level-1 unit, so the
    // critical path is 6 rather than the figure's idealized min-makespan
    // schedule of 5. The figure's *invariant* — at most two operations per
    // level — holds exactly (checked below on the explicit DDG).
    EXPECT_EQ(levels,
              (std::vector<int64_t>{0, 0, 1, 1, 2, 3, 4, 5}));
    AnalysisResult res = engine.finish();
    EXPECT_EQ(res.criticalPathLength, 6u);
    EXPECT_GT(res.fuDelayedOps, 0u);

    // No level of the explicit DDG holds more than two operations.
    Ddg ddg = buildDdg(figure1Trace(), cfg);
    for (uint64_t count : ddg.levelHistogram())
        EXPECT_LE(count, 2u);
    EXPECT_EQ(ddg.criticalPathLength, 6u);
}
