// End-to-end pipeline smoke test: MiniC -> asm -> simulate -> analyze.
#include <gtest/gtest.h>

#include "core/paragraph.hpp"
#include "minic/compiler.hpp"
#include "sim/machine.hpp"

using namespace paragraph;

TEST(Smoke, CompileRunAnalyze)
{
    const char *src = R"(
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() {
    print_int(fib(12));
}
)";
    casm::Program prog = minic::compile(src);
    sim::MachineTraceSource source(prog);
    core::Paragraph engine(core::AnalysisConfig::dataflowConservative());
    core::AnalysisResult res = engine.analyze(source);
    EXPECT_GT(res.instructions, 1000u);
    EXPECT_GT(res.availableParallelism, 1.0);

    sim::MachineTraceSource check(prog);
    check.reset();
    trace::TraceRecord rec;
    while (check.next(rec)) {}
    ASSERT_EQ(check.machine().intOutput().size(), 1u);
    EXPECT_EQ(check.machine().intOutput()[0], 144);
}
