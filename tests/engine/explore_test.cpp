// Ground-truth soundness suite for the adaptive explorer (engine::Explorer):
//
//  - full grid vs --explore over the same traces: the explorer's frontier
//    must equal the frontier computed from the full grid, every executed
//    cell must render byte-identically to its grid twin, and no pruned
//    cell may be non-dominated in the grid — across captured, streamed,
//    and sharded repository/engine modes;
//  - mutation audit of the oracle-to-pruner contract: each monotonicity
//    comparator is flipped behind the ExploreModel seam and the suite must
//    catch the resulting unsound prune via certificate re-verification.
#include <gtest/gtest.h>

#include <filesystem>

#include "engine/explorer.hpp"
#include "engine/sweep.hpp"
#include "engine/sweep_args.hpp"
#include "engine/sweep_json.hpp"
#include "engine/trace_repository.hpp"
#include "trace/buffer.hpp"
#include "trace/compressed_io.hpp"

using namespace paragraph;
using namespace paragraph::engine;

namespace {

TraceRepository::Options
smallScale()
{
    TraceRepository::Options opt;
    opt.scale = workloads::Scale::Small;
    return opt;
}

/** Expand CLI-style axis lists into the grid the sweep would run. */
struct Grid
{
    SweepAxes axes;
    std::vector<core::AnalysisConfig> configs;
    std::vector<std::string> labels;
};

Grid
makeGrid(std::vector<uint64_t> windows, std::vector<std::string> renames,
         std::vector<std::string> syscalls = {},
         std::vector<std::string> predictors = {},
         std::vector<uint32_t> fus = {})
{
    SweepArgs args;
    args.inputs = {"unused"};
    args.windows = std::move(windows);
    args.renames = std::move(renames);
    args.syscalls = std::move(syscalls);
    args.predictors = std::move(predictors);
    args.fus = std::move(fus);
    Grid grid;
    grid.axes = defaultedSweepAxes(args);
    std::string error;
    EXPECT_TRUE(buildSweepConfigAxis(args, grid.configs, grid.labels, error))
        << error;
    return grid;
}

Explorer::Runner
engineRunner(TraceRepository &repo, const SweepEngine &sweeper)
{
    return [&repo, &sweeper](std::vector<SweepJob> jobs) {
        return sweeper.runJobs(repo, std::move(jobs)).cells;
    };
}

/** Full grid + explore over the same repo/engine; assert the explorer is
 *  sound against the grid and actually pruned something. */
void
expectSoundAgainstGrid(TraceRepository &repo, const SweepEngine &sweeper,
                       const std::vector<std::string> &inputs,
                       const Grid &grid, bool expectPruning = true)
{
    SweepResult full = sweeper.run(repo, inputs, grid.configs, grid.labels);

    Explorer explorer;
    ExploreResult explored =
        explorer.explore(inputs, grid.axes, grid.configs, grid.labels,
                         engineRunner(repo, sweeper));

    EXPECT_EQ(explored.cellsTotal, inputs.size() * grid.configs.size());
    EXPECT_EQ(explored.cellsExecuted + explored.cellsPruned,
              explored.cellsTotal);
    EXPECT_TRUE(explored.exact);
    for (const ExploreTrace &trace : explored.traces) {
        EXPECT_EQ(trace.cells.size() + trace.pruned.size(),
                  grid.configs.size());
        EXPECT_FALSE(trace.frontier.empty());
    }
    if (expectPruning) {
        EXPECT_LT(explored.cellsExecuted, explored.cellsTotal);
    }

    SweepJsonOptions jsonOpt;
    jsonOpt.timing = false;
    std::string diag;
    EXPECT_TRUE(verifyExploreAgainstGrid(explored, full, jsonOpt, diag))
        << diag;
}

/**
 * A trace where the syscall axis visibly violates the "stall is bounded by
 * ignore" mirror relation: value-creating syscalls are placed (and
 * firewalled) under --syscalls=stall but vanish under ignore, so
 * par(stall) ~ 1 while par(ignore) = 0. The independent filler ops keep
 * the rename axis inert (nothing to rename), pinning the strata flat.
 */
std::shared_ptr<const trace::TraceBuffer>
syscallHeavyTrace()
{
    auto buffer = std::make_shared<trace::TraceBuffer>();
    for (int i = 0; i < 40; ++i) {
        trace::TraceRecord rec;
        rec.cls = isa::OpClass::IntAlu;
        rec.isSysCall = true;
        rec.createsValue = true;
        rec.dest = trace::Operand::intReg(static_cast<uint8_t>(i % 8));
        rec.pc = static_cast<uint64_t>(i);
        buffer->push(rec);
    }
    return buffer;
}

/** Write @p buffer as a compressed trace file and return its path. */
std::string
writeTraceFile(std::shared_ptr<const trace::TraceBuffer> buffer,
               const char *filename)
{
    namespace fs = std::filesystem;
    std::string path = (fs::temp_directory_path() / filename).string();
    trace::CompressedTraceWriter writer(path);
    trace::SharedBufferSource src(std::move(buffer), "synthetic");
    writer.writeAll(src);
    writer.close();
    return path;
}

/**
 * Run the explorer with one comparator flipped and assert the soundness
 * machinery convicts it: a prune that used the flipped axis must exist
 * (the mutation is live, not silent) and certificate re-verification
 * against the sound model must fail.
 */
void
expectFlipCaught(TraceRepository &repo, const SweepEngine &sweeper,
                 const std::vector<std::string> &inputs, const Grid &grid,
                 const ExploreModel &flipped, const char *flippedAxis)
{
    Explorer::Options opt;
    opt.model = flipped;
    Explorer explorer(opt);
    ExploreResult explored =
        explorer.explore(inputs, grid.axes, grid.configs, grid.labels,
                         engineRunner(repo, sweeper));

    bool usedFlippedAxis = false;
    for (const ExploreTrace &trace : explored.traces)
        for (const ExplorePruned &p : trace.pruned)
            for (const std::string &axis : p.certificate.axes)
                usedFlippedAxis = usedFlippedAxis || axis == flippedAxis;
    ASSERT_TRUE(usedFlippedAxis)
        << "mutation is silent: no prune used the flipped '" << flippedAxis
        << "' relation, so the audit proves nothing";

    std::string diag;
    EXPECT_FALSE(verifyExploreCertificates(explored, diag))
        << "certificate re-verification accepted a prune built on the "
           "flipped '"
        << flippedAxis << "' relation";

    SweepResult full = sweeper.run(repo, inputs, grid.configs, grid.labels);
    SweepJsonOptions jsonOpt;
    jsonOpt.timing = false;
    EXPECT_FALSE(verifyExploreAgainstGrid(explored, full, jsonOpt, diag))
        << "grid verification accepted an explore run with an unsound '"
        << flippedAxis << "' prune";
}

} // namespace

TEST(ExploreCost, OrdersResourceAxesSensibly)
{
    Grid grid = makeGrid({16, 64, 0}, {"none", "data"}, {}, {}, {2, 0});
    // Cost is strictly increasing along each axis move the pruner calls
    // parallelism-nondecreasing, except syscalls (free by design).
    for (size_t j = 0; j < grid.configs.size(); ++j) {
        core::AnalysisConfig larger = grid.configs[j];
        larger.windowSize = larger.windowSize == 0 ? 0 : larger.windowSize * 4;
        EXPECT_GE(exploreCost(larger), exploreCost(grid.configs[j]));
        core::AnalysisConfig stalled = grid.configs[j];
        stalled.sysCallsStall = !stalled.sysCallsStall;
        EXPECT_EQ(exploreCost(stalled), exploreCost(grid.configs[j]));
    }
}

TEST(ParetoFrontier, KeepsNonDominatedAndTies)
{
    // Points: (cost, par). 0:(1,5) 1:(2,7) 2:(3,7) 3:(2,5) 4:(4,9) and a
    // failed slot that must be ignored.
    std::vector<int> costs = {1, 2, 3, 2, 4, 0};
    std::vector<double> pars = {5.0, 7.0, 7.0, 5.0, 9.0, 99.0};
    std::vector<bool> ok = {true, true, true, true, true, false};
    std::vector<size_t> frontier = paretoFrontier(costs, pars, ok);
    // 2 is dominated by 1 (cheaper, same par); 3 by 0 (cheaper, same par);
    // 5 is not ok. 0, 1, 4 survive.
    EXPECT_EQ(frontier, (std::vector<size_t>{0, 1, 4}));

    // Exact (cost, par) duplicates are both kept: neither strictly
    // dominates the other, and the explorer never prunes such ties.
    costs = {2, 2};
    pars = {3.0, 3.0};
    ok = {true, true};
    EXPECT_EQ(paretoFrontier(costs, pars, ok),
              (std::vector<size_t>{0, 1}));
}

TEST(ExploreSoundness, CapturedRepository)
{
    TraceRepository repo(smallScale());
    SweepEngine::Options engineOpt;
    engineOpt.jobs = 2;
    SweepEngine sweeper(engineOpt);
    Grid grid = makeGrid({4, 16, 64, 256, 0}, {"none", "data"}, {}, {},
                         {2, 0});
    expectSoundAgainstGrid(repo, sweeper, {"xlisp", "matrix300"}, grid);
}

TEST(ExploreSoundness, StreamedRepository)
{
    // Streamed mode: the input is a trace file re-read per pass instead of
    // a shared capture. The explorer must stay sound and byte-identical.
    TraceRepository captureRepo(smallScale());
    std::string path = writeTraceFile(captureRepo.get("xlisp"),
                                      "explore_stream.ptrz");

    TraceRepository::Options opt = smallScale();
    opt.streamFiles = true;
    TraceRepository repo(opt);
    SweepEngine::Options engineOpt;
    engineOpt.jobs = 2;
    SweepEngine sweeper(engineOpt);
    Grid grid = makeGrid({4, 16, 64, 0}, {"none", "data"}, {}, {}, {2, 0});
    expectSoundAgainstGrid(repo, sweeper, {path}, grid);
    std::filesystem::remove(path);
}

TEST(ExploreSoundness, ShardedEngine)
{
    TraceRepository repo(smallScale());
    SweepEngine::Options engineOpt;
    engineOpt.jobs = 2;
    engineOpt.shards = 4; // split-and-patch solo cells across threads
    SweepEngine sweeper(engineOpt);
    Grid grid = makeGrid({4, 16, 64, 0}, {"none", "data"}, {}, {}, {2, 0});
    expectSoundAgainstGrid(repo, sweeper, {"xlisp"}, grid);
}

TEST(ExploreSoundness, PredictorAndSyscallAxes)
{
    // Predictor chain (wrong < bimodal < perfect) and syscall strata in
    // one grid: verification must hold even where pruning cannot fire.
    TraceRepository repo(smallScale());
    SweepEngine::Options engineOpt;
    engineOpt.jobs = 2;
    SweepEngine sweeper(engineOpt);
    Grid grid = makeGrid({16, 0}, {"data"}, {"stall", "ignore"},
                         {"wrong", "bimodal", "perfect"}, {});
    expectSoundAgainstGrid(repo, sweeper, {"xlisp"}, grid,
                           /*expectPruning=*/false);
}

TEST(ExploreSoundness, KneeTolApproximateStaysCertified)
{
    TraceRepository repo(smallScale());
    SweepEngine::Options engineOpt;
    engineOpt.jobs = 2;
    SweepEngine sweeper(engineOpt);
    Grid grid = makeGrid({4, 8, 16, 32, 64, 128, 0}, {"data"}, {}, {},
                         {2, 0});

    Explorer::Options opt;
    opt.kneeTol = 0.25;
    Explorer explorer(opt);
    ExploreResult explored =
        explorer.explore({"xlisp"}, grid.axes, grid.configs, grid.labels,
                         engineRunner(repo, sweeper));

    // Approximate mode may measure fewer cells than exact mode, but every
    // certificate must still re-verify, and every pruned cell must still
    // be dominated in the grid within the tolerance.
    std::string diag;
    EXPECT_TRUE(verifyExploreCertificates(explored, diag)) << diag;
    SweepResult full =
        sweeper.run(repo, {"xlisp"}, grid.configs, grid.labels);
    SweepJsonOptions jsonOpt;
    jsonOpt.timing = false;
    EXPECT_TRUE(verifyExploreAgainstGrid(explored, full, jsonOpt, diag))
        << diag;
}

TEST(ExploreDeterminism, SeedControlsOrderButNotTheFrontier)
{
    TraceRepository repo(smallScale());
    SweepEngine::Options engineOpt;
    engineOpt.jobs = 2;
    SweepEngine sweeper(engineOpt);
    Grid grid = makeGrid({4, 16, 64, 0}, {"none", "data"}, {}, {}, {2, 0});

    SweepJsonOptions jsonOpt;
    jsonOpt.timing = false;

    Explorer defaultExplorer;
    ExploreResult a =
        defaultExplorer.explore({"xlisp"}, grid.axes, grid.configs,
                                grid.labels, engineRunner(repo, sweeper));
    ExploreResult b =
        defaultExplorer.explore({"xlisp"}, grid.axes, grid.configs,
                                grid.labels, engineRunner(repo, sweeper));
    // Same seed: the whole document (cells, frontier, certificates) is
    // reproduced byte for byte.
    EXPECT_EQ(exploreToJson(a, jsonOpt), exploreToJson(b, jsonOpt));

    Explorer::Options other;
    other.seed = 12345;
    Explorer otherExplorer(other);
    ExploreResult c =
        otherExplorer.explore({"xlisp"}, grid.axes, grid.configs,
                              grid.labels, engineRunner(repo, sweeper));
    // Different seed: measurement order may differ, the frontier may not.
    ASSERT_EQ(a.traces.size(), c.traces.size());
    for (size_t t = 0; t < a.traces.size(); ++t)
        EXPECT_EQ(a.traces[t].frontier, c.traces[t].frontier);
}

// ---------------------------------------------------------------------------
// Mutation audit: flip each monotonicity comparator behind the ExploreModel
// seam; the soundness suite must convict every one of them.

TEST(ExploreMutationAudit, FlippedWindowComparatorIsCaught)
{
    TraceRepository repo(smallScale());
    SweepEngine sweeper(SweepEngine::Options{});
    Grid grid = makeGrid({16, 64, 0}, {"data"});
    ExploreModel flipped;
    flipped.windowLarger = false; // claim smaller windows bound par
    expectFlipCaught(repo, sweeper, {"xlisp"}, grid, flipped, "window");
}

TEST(ExploreMutationAudit, FlippedRenameComparatorIsCaught)
{
    TraceRepository repo(smallScale());
    SweepEngine sweeper(SweepEngine::Options{});
    Grid grid = makeGrid({0}, {"none", "data"});
    ExploreModel flipped;
    flipped.renameMore = false; // claim less renaming bounds par
    expectFlipCaught(repo, sweeper, {"xlisp"}, grid, flipped, "rename");
}

TEST(ExploreMutationAudit, FlippedFuComparatorIsCaught)
{
    TraceRepository repo(smallScale());
    SweepEngine sweeper(SweepEngine::Options{});
    Grid grid = makeGrid({0}, {"data"}, {}, {}, {2, 0});
    ExploreModel flipped;
    flipped.fuUnlimited = false; // claim finite FU limits bound unlimited
    expectFlipCaught(repo, sweeper, {"xlisp"}, grid, flipped, "fus");
}

TEST(ExploreMutationAudit, FlippedPredictorComparatorIsCaught)
{
    TraceRepository repo(smallScale());
    SweepEngine sweeper(SweepEngine::Options{});
    Grid grid = makeGrid({0}, {"data"}, {}, {"wrong", "perfect"}, {});
    ExploreModel flipped;
    flipped.predictorBetter = false; // claim worse prediction bounds par
    expectFlipCaught(repo, sweeper, {"xlisp"}, grid, flipped, "predictor");
}

TEST(ExploreMutationAudit, FlippedSyscallStratumIsCaught)
{
    // The syscall axis is the subtle one: both directions have real
    // counterexamples, which is exactly why the sound model refuses to
    // bound across it. A trace of value-creating syscalls makes the
    // "stall is bounded by ignore" mirror maximally wrong (par(stall) ~ 1,
    // par(ignore) = 0) and gives the flipped pruner a cheap dominator.
    std::string path =
        writeTraceFile(syscallHeavyTrace(), "explore_syscalls.ptrz");
    TraceRepository repo(smallScale());
    SweepEngine sweeper(SweepEngine::Options{});
    Grid grid = makeGrid({0}, {"none", "data"}, {"stall", "ignore"});
    ExploreModel flipped;
    flipped.syscallStratum = false; // claim par(stall) <= par(ignore)
    expectFlipCaught(repo, sweeper, {path}, grid, flipped, "syscalls");
    std::filesystem::remove(path);
}
