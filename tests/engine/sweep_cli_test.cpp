// End-to-end tests of the `paragraph-sweep` CLI binary: spawn it like a
// user would and check the JSON document and the determinism guarantee.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

std::string
sweepCliPath()
{
#ifdef PARAGRAPH_SWEEP_CLI_PATH
    return PARAGRAPH_SWEEP_CLI_PATH;
#else
    return "./build/tools/paragraph-sweep";
#endif
}

struct CliResult
{
    int status;
    std::string output;
};

CliResult
runSweep(const std::string &args)
{
    std::string cmd = sweepCliPath() + " " + args + " 2>/dev/null";
    std::FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), pipe))
        out += buf;
    int status = pclose(pipe);
    return CliResult{status, out};
}

} // namespace

TEST(SweepCli, EmitsTheGridAsJson)
{
    CliResult r = runSweep("--inputs=xlisp --small --windows=16,0 "
                           "--quiet --no-profiles");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("\"schema\": \"paragraph-sweep-v3\""),
              std::string::npos);
    EXPECT_NE(r.output.find("\"cells_total\": 2"), std::string::npos);
    EXPECT_NE(r.output.find("\"critical_path\""), std::string::npos);
    EXPECT_NE(r.output.find("\"available_parallelism\""),
              std::string::npos);
    EXPECT_NE(r.output.find("\"window\": 16"), std::string::npos);
}

TEST(SweepCli, JobCountDoesNotChangeTheDocument)
{
    const std::string grid = "--inputs=xlisp,matrix300 --small "
                             "--windows=4,16,64,0 --rename=regs,data "
                             "--quiet --no-timing";
    CliResult serial = runSweep(grid + " --jobs=1");
    CliResult threaded = runSweep(grid + " --jobs=4");
    EXPECT_EQ(serial.status, 0);
    EXPECT_EQ(threaded.status, 0);
    EXPECT_EQ(serial.output, threaded.output);
    EXPECT_NE(serial.output.find("\"cells_total\": 16"),
              std::string::npos);
}

TEST(SweepCli, CrossesEveryAxis)
{
    CliResult r = runSweep("--inputs=xlisp --small --windows=16,0 "
                           "--syscalls=stall,ignore --rename=none,data "
                           "--quiet --no-profiles --no-timing");
    EXPECT_EQ(r.status, 0);
    // 2 windows x 2 syscall modes x 2 renaming points = 8 cells.
    EXPECT_NE(r.output.find("\"cells_total\": 8"), std::string::npos);
    EXPECT_NE(r.output.find("\"syscalls\": \"ignore\""),
              std::string::npos);
    EXPECT_NE(r.output.find("\"rename_regs\": false"), std::string::npos);
}

TEST(SweepCli, WritesToAFile)
{
    namespace fs = std::filesystem;
    std::string path = (fs::temp_directory_path() / "sweep_out.json").string();
    CliResult r = runSweep("--inputs=xlisp --small --windows=16 --quiet "
                           "--no-profiles --out=" + path);
    EXPECT_EQ(r.status, 0);
    EXPECT_TRUE(r.output.empty()); // JSON went to the file, not stdout
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream oss;
    oss << in.rdbuf();
    EXPECT_NE(oss.str().find("\"schema\": \"paragraph-sweep-v3\""),
              std::string::npos);
    fs::remove(path);
}

TEST(SweepCli, SigintFlushesTheJournalAndExits130)
{
    // The graceful-interrupt contract: SIGINT mid-sweep cancels in-flight
    // cells cooperatively, still writes the (partial) document and journal,
    // and exits with the shell's death-by-SIGINT status, 128 + 2. The grid
    // is big and serial on purpose so the signal always lands mid-run.
    namespace fs = std::filesystem;
    std::string journal = (fs::temp_directory_path() / "sweep_int.jsonl")
                              .string();
    std::string out = (fs::temp_directory_path() / "sweep_int.json").string();
    fs::remove(journal);
    fs::remove(out);

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        int devnull = ::open("/dev/null", O_WRONLY);
        ::dup2(devnull, 2);
        std::string bin = sweepCliPath();
        std::string journalArg = "--journal=" + journal;
        std::string outArg = "--out=" + out;
        ::execl(bin.c_str(), bin.c_str(), "--inputs=cc1,espresso,xlisp",
                "--windows=0,16,64,256,1024", "--jobs=1", "--quiet",
                "--no-timing", journalArg.c_str(), outArg.c_str(),
                static_cast<char *>(nullptr));
        _exit(127);
    }

    // Give parseArgs + the signal-handler installation time to happen; the
    // 15-cell serial full-scale grid runs far longer than this.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ASSERT_EQ(::kill(pid, SIGINT), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "died by signal instead of handling it";
    EXPECT_EQ(WEXITSTATUS(status), 128 + SIGINT);

    // Journal and document were flushed on the way out.
    std::ifstream jin(journal);
    ASSERT_TRUE(jin.good());
    std::string header;
    std::getline(jin, header);
    EXPECT_NE(header.find("paragraph-sweep-journal-v1"), std::string::npos);
    std::ifstream din(out);
    ASSERT_TRUE(din.good());
    std::ostringstream doc;
    doc << din.rdbuf();
    EXPECT_NE(doc.str().find("\"schema\": \"paragraph-sweep-v3\""),
              std::string::npos);
    fs::remove(journal);
    fs::remove(out);
}

TEST(SweepCli, BadArgumentsFailCleanly)
{
    EXPECT_NE(runSweep("--inputs=xlisp --bogus").status, 0);
    EXPECT_NE(runSweep("--inputs=no-such-workload --quiet").status, 0);
    EXPECT_NE(runSweep("--inputs=xlisp --rename=everything").status, 0);
    EXPECT_NE(runSweep("").status, 0);
}
