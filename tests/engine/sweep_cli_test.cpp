// End-to-end tests of the `paragraph-sweep` CLI binary: spawn it like a
// user would and check the JSON document and the determinism guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string
sweepCliPath()
{
#ifdef PARAGRAPH_SWEEP_CLI_PATH
    return PARAGRAPH_SWEEP_CLI_PATH;
#else
    return "./build/tools/paragraph-sweep";
#endif
}

struct CliResult
{
    int status;
    std::string output;
};

CliResult
runSweep(const std::string &args)
{
    std::string cmd = sweepCliPath() + " " + args + " 2>/dev/null";
    std::FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), pipe))
        out += buf;
    int status = pclose(pipe);
    return CliResult{status, out};
}

} // namespace

TEST(SweepCli, EmitsTheGridAsJson)
{
    CliResult r = runSweep("--inputs=xlisp --small --windows=16,0 "
                           "--quiet --no-profiles");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("\"schema\": \"paragraph-sweep-v2\""),
              std::string::npos);
    EXPECT_NE(r.output.find("\"cells_total\": 2"), std::string::npos);
    EXPECT_NE(r.output.find("\"critical_path\""), std::string::npos);
    EXPECT_NE(r.output.find("\"available_parallelism\""),
              std::string::npos);
    EXPECT_NE(r.output.find("\"window\": 16"), std::string::npos);
}

TEST(SweepCli, JobCountDoesNotChangeTheDocument)
{
    const std::string grid = "--inputs=xlisp,matrix300 --small "
                             "--windows=4,16,64,0 --rename=regs,data "
                             "--quiet --no-timing";
    CliResult serial = runSweep(grid + " --jobs=1");
    CliResult threaded = runSweep(grid + " --jobs=4");
    EXPECT_EQ(serial.status, 0);
    EXPECT_EQ(threaded.status, 0);
    EXPECT_EQ(serial.output, threaded.output);
    EXPECT_NE(serial.output.find("\"cells_total\": 16"),
              std::string::npos);
}

TEST(SweepCli, CrossesEveryAxis)
{
    CliResult r = runSweep("--inputs=xlisp --small --windows=16,0 "
                           "--syscalls=stall,ignore --rename=none,data "
                           "--quiet --no-profiles --no-timing");
    EXPECT_EQ(r.status, 0);
    // 2 windows x 2 syscall modes x 2 renaming points = 8 cells.
    EXPECT_NE(r.output.find("\"cells_total\": 8"), std::string::npos);
    EXPECT_NE(r.output.find("\"syscalls\": \"ignore\""),
              std::string::npos);
    EXPECT_NE(r.output.find("\"rename_regs\": false"), std::string::npos);
}

TEST(SweepCli, WritesToAFile)
{
    namespace fs = std::filesystem;
    std::string path = (fs::temp_directory_path() / "sweep_out.json").string();
    CliResult r = runSweep("--inputs=xlisp --small --windows=16 --quiet "
                           "--no-profiles --out=" + path);
    EXPECT_EQ(r.status, 0);
    EXPECT_TRUE(r.output.empty()); // JSON went to the file, not stdout
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream oss;
    oss << in.rdbuf();
    EXPECT_NE(oss.str().find("\"schema\": \"paragraph-sweep-v2\""),
              std::string::npos);
    fs::remove(path);
}

TEST(SweepCli, BadArgumentsFailCleanly)
{
    EXPECT_NE(runSweep("--inputs=xlisp --bogus").status, 0);
    EXPECT_NE(runSweep("--inputs=no-such-workload --quiet").status, 0);
    EXPECT_NE(runSweep("--inputs=xlisp --rename=everything").status, 0);
    EXPECT_NE(runSweep("").status, 0);
}
