// Fault-tolerance tests for the sweep engine: per-cell isolation (one bad
// input or poisoned config never voids the grid), retry and deadline
// semantics, progress-callback containment, and checkpoint/resume via the
// JSONL journal — including the byte-identity guarantee that a resumed
// sweep's JSON equals an uninterrupted run's.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cancel_token.hpp"
#include "engine/journal.hpp"
#include "engine/sweep.hpp"
#include "engine/sweep_json.hpp"
#include "engine/trace_repository.hpp"
#include "support/panic.hpp"

using namespace paragraph;
using namespace paragraph::engine;

namespace {

constexpr const char *badInput = "no-such-workload";

TraceRepository::Options
smallScale()
{
    TraceRepository::Options opt;
    opt.scale = workloads::Scale::Small;
    opt.maxRecords = 2000;
    return opt;
}

std::vector<core::AnalysisConfig>
fourConfigs()
{
    std::vector<core::AnalysisConfig> configs;
    for (uint64_t w : {16u, 64u, 256u, 0u}) {
        core::AnalysisConfig cfg;
        cfg.windowSize = w;
        cfg.maxInstructions = 2000;
        configs.push_back(cfg);
    }
    return configs;
}

std::vector<std::string>
fourLabels()
{
    return {"w16", "w64", "w256", "winf"};
}

std::string
tempPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() / stem).string();
}

SweepJsonOptions
noTiming()
{
    SweepJsonOptions opt;
    opt.timing = false;
    return opt;
}

} // namespace

TEST(SweepFaults, BadInputFailsItsCellsOnly)
{
    std::vector<std::string> inputs = {"xlisp", badInput, "matrix300"};
    TraceRepository repo(smallScale());
    SweepEngine::Options opt;
    opt.jobs = 4;
    SweepResult sweep =
        SweepEngine(opt).run(repo, inputs, fourConfigs(), fourLabels());

    ASSERT_EQ(sweep.cells.size(), 12u);
    EXPECT_EQ(sweep.cellsFailed, 4u);
    for (const SweepCell &cell : sweep.cells) {
        if (cell.job.input == badInput) {
            EXPECT_EQ(cell.status, SweepCell::Status::Failed);
            EXPECT_NE(cell.errorMessage.find("unknown workload"),
                      std::string::npos)
                << cell.errorMessage;
        } else {
            EXPECT_EQ(cell.status, SweepCell::Status::Ok);
            EXPECT_TRUE(cell.errorMessage.empty());
            EXPECT_GT(cell.result.instructions, 0u);
        }
    }
}

TEST(SweepFaults, SurvivingCellsMatchCleanRunByteForByte)
{
    TraceRepository repoClean(smallScale());
    SweepResult clean = SweepEngine(SweepEngine::Options{}).run(
        repoClean, {"xlisp", "matrix300"}, fourConfigs(), fourLabels());

    TraceRepository repoFaulty(smallScale());
    SweepResult faulty = SweepEngine(SweepEngine::Options{}).run(
        repoFaulty, {"xlisp", "matrix300", badInput}, fourConfigs(),
        fourLabels());

    // The bad input rides on a third input-axis row, so the surviving
    // cells occupy the same grid positions as the clean run's.
    ASSERT_EQ(clean.cells.size(), 8u);
    for (size_t i = 0; i < clean.cells.size(); ++i) {
        EXPECT_EQ(cellToJson(clean.cells[i], noTiming()),
                  cellToJson(faulty.cells[i], noTiming()))
            << "cell " << i;
    }
}

TEST(SweepFaults, PoisonedConfigFailsWithoutRetry)
{
    core::CancelToken poisoned;
    poisoned.cancel("injected poison");

    std::vector<core::AnalysisConfig> configs = fourConfigs();
    configs[1].cancel = &poisoned;

    TraceRepository repo(smallScale());
    SweepEngine::Options opt;
    opt.maxRetries = 3; // must NOT burn retries on a cancelled cell
    SweepResult sweep = SweepEngine(opt).run(repo, {"xlisp"}, configs,
                                             fourLabels());

    ASSERT_EQ(sweep.cells.size(), 4u);
    EXPECT_EQ(sweep.cellsFailed, 1u);
    const SweepCell &failed = sweep.cells[1];
    EXPECT_EQ(failed.status, SweepCell::Status::Failed);
    EXPECT_EQ(failed.errorMessage, "injected poison");
    EXPECT_EQ(failed.attempts, 1u);
}

TEST(SweepFaults, RetriesAreCountedForOrdinaryFailures)
{
    TraceRepository repo(smallScale());
    SweepEngine::Options opt;
    opt.maxRetries = 2;
    SweepResult sweep = SweepEngine(opt).run(repo, {badInput},
                                             fourConfigs(), fourLabels());
    ASSERT_EQ(sweep.cells.size(), 4u);
    for (const SweepCell &cell : sweep.cells) {
        EXPECT_EQ(cell.status, SweepCell::Status::Failed);
        EXPECT_EQ(cell.attempts, 3u); // 1 + maxRetries, all consumed
    }
}

TEST(SweepFaults, ExpiredDeadlineTimesCellsOut)
{
    TraceRepository repo(smallScale());
    SweepEngine::Options opt;
    opt.cellDeadlineSeconds = 1e-9; // expires before the first checkpoint
    SweepResult sweep = SweepEngine(opt).run(repo, {"xlisp"}, fourConfigs(),
                                             fourLabels());
    ASSERT_EQ(sweep.cells.size(), 4u);
    EXPECT_EQ(sweep.cellsFailed, 4u);
    for (const SweepCell &cell : sweep.cells) {
        EXPECT_EQ(cell.status, SweepCell::Status::Failed);
        EXPECT_NE(cell.errorMessage.find("deadline"), std::string::npos)
            << cell.errorMessage;
        EXPECT_EQ(cell.attempts, 1u); // timeouts are final, never retried
    }
}

TEST(SweepFaults, ThrowingProgressCallbackDoesNotAbortTheSweep)
{
    TraceRepository repo(smallScale());
    SweepEngine::Options opt;
    opt.jobs = 1;
    opt.progress = [](size_t, size_t, double) {
        throw std::runtime_error("observer bug");
    };
    SweepResult sweep = SweepEngine(opt).run(repo, {"xlisp"}, fourConfigs(),
                                             fourLabels());
    ASSERT_EQ(sweep.cells.size(), 4u);
    EXPECT_EQ(sweep.cellsFailed, 0u);
    for (const SweepCell &cell : sweep.cells)
        EXPECT_EQ(cell.status, SweepCell::Status::Ok);
}

TEST(SweepFaults, FusedGroupDeadlineTimesOutEachCellIndependently)
{
    // All four cells share one fused pass (--group semantics); every cell
    // carries its own deadline token, so a group-wide timeout reports four
    // individual final timeouts — exactly like the ungrouped sweep — and
    // cancellation is never demoted to a solo re-run.
    TraceRepository repo(smallScale());
    SweepEngine::Options opt;
    opt.groupSize = 4;
    opt.cellDeadlineSeconds = 1e-9; // expires before the first checkpoint
    SweepResult sweep = SweepEngine(opt).run(repo, {"xlisp"}, fourConfigs(),
                                             fourLabels());
    ASSERT_EQ(sweep.cells.size(), 4u);
    EXPECT_EQ(sweep.cellsFailed, 4u);
    for (const SweepCell &cell : sweep.cells) {
        EXPECT_EQ(cell.status, SweepCell::Status::Failed);
        EXPECT_NE(cell.errorMessage.find("deadline"), std::string::npos)
            << cell.errorMessage;
        EXPECT_EQ(cell.attempts, 1u); // timeouts are final, never retried
    }
}

TEST(SweepFaults, FusedGroupBadInputBurnsRetriesLikeSolo)
{
    // A group-level error (unreadable input) demotes every member to the
    // solo attempts loop, and the demotion itself consumes no attempt:
    // the attempt counters must match an ungrouped sweep exactly.
    TraceRepository repo(smallScale());
    SweepEngine::Options opt;
    opt.groupSize = 4;
    opt.maxRetries = 2;
    SweepResult sweep = SweepEngine(opt).run(repo, {badInput},
                                             fourConfigs(), fourLabels());
    ASSERT_EQ(sweep.cells.size(), 4u);
    for (const SweepCell &cell : sweep.cells) {
        EXPECT_EQ(cell.status, SweepCell::Status::Failed);
        EXPECT_EQ(cell.attempts, 3u); // 1 + maxRetries, all consumed
    }
}

TEST(SweepFaults, FusedSweepJsonMatchesUngroupedSweep)
{
    // The whole point of trace-major grouping is that it changes only the
    // wall clock: with timing fields off, a fused sweep's document — bad
    // input and all — is byte-identical to the group-of-one sweep's.
    std::vector<std::string> inputs = {"xlisp", badInput, "matrix300"};

    TraceRepository repoSolo(smallScale());
    SweepEngine::Options solo;
    solo.groupSize = 1;
    solo.maxRetries = 1;
    SweepResult soloRun = SweepEngine(solo).run(repoSolo, inputs,
                                                fourConfigs(), fourLabels());

    for (unsigned group : {0u, 2u, 4u}) { // 0 = auto
        TraceRepository repoFused(smallScale());
        SweepEngine::Options fused;
        fused.groupSize = group;
        fused.maxRetries = 1;
        SweepResult fusedRun = SweepEngine(fused).run(
            repoFused, inputs, fourConfigs(), fourLabels());
        EXPECT_EQ(sweepToJson(fusedRun, noTiming()),
                  sweepToJson(soloRun, noTiming()))
            << "group=" << group;
    }
}

TEST(SweepJournalTest, FusedSweepJournalResumeMatchesSoloDocument)
{
    // Journaling and resume are per-cell even when cells run fused: a
    // fused sweep's journal resumes into the same document an ungrouped
    // sweep produces.
    std::string journalPath = tempPath("para_fault_fused_journal.jsonl");
    std::remove(journalPath.c_str());

    std::vector<std::string> inputs = {"xlisp", badInput, "matrix300"};

    TraceRepository repoSolo(smallScale());
    SweepEngine::Options solo;
    solo.groupSize = 1;
    SweepResult soloRun = SweepEngine(solo).run(repoSolo, inputs,
                                                fourConfigs(), fourLabels());

    TraceRepository repo1(smallScale());
    SweepEngine::Options first;
    first.groupSize = 4;
    first.journalPath = journalPath;
    SweepResult run1 = SweepEngine(first).run(repo1, inputs, fourConfigs(),
                                              fourLabels());
    EXPECT_EQ(sweepToJson(run1, noTiming()), sweepToJson(soloRun, noTiming()));

    JournalData journal = loadJournal(journalPath);
    EXPECT_EQ(journal.entries.size(), 12u);
    TraceRepository repo2(smallScale());
    SweepEngine::Options second;
    second.groupSize = 4;
    second.resume = &journal;
    SweepResult run2 = SweepEngine(second).run(repo2, inputs, fourConfigs(),
                                               fourLabels());
    EXPECT_EQ(run2.cellsSkipped, 8u);
    EXPECT_EQ(run2.cellsFailed, 4u);
    EXPECT_EQ(sweepToJson(run2, noTiming()), sweepToJson(soloRun, noTiming()));

    std::remove(journalPath.c_str());
}

TEST(SweepJournalTest, ResumeSkipsOkCellsAndReproducesTheDocument)
{
    std::string journalPath = tempPath("para_fault_journal.jsonl");
    std::remove(journalPath.c_str());

    std::vector<std::string> inputs = {"xlisp", badInput, "matrix300"};

    // First (interrupted-equivalent) run: journal everything, bad input
    // fails its row.
    TraceRepository repo1(smallScale());
    SweepEngine::Options first;
    first.journalPath = journalPath;
    SweepResult run1 = SweepEngine(first).run(repo1, inputs, fourConfigs(),
                                              fourLabels());
    EXPECT_EQ(run1.cellsFailed, 4u);
    EXPECT_EQ(run1.cellsSkipped, 0u);

    // Resume from the journal: only the failed cells may re-run.
    JournalData journal = loadJournal(journalPath);
    EXPECT_EQ(journal.entries.size(), 12u);
    TraceRepository repo2(smallScale());
    SweepEngine::Options second;
    second.resume = &journal;
    SweepResult run2 = SweepEngine(second).run(repo2, inputs, fourConfigs(),
                                               fourLabels());
    EXPECT_EQ(run2.cellsSkipped, 8u);
    EXPECT_EQ(run2.cellsFailed, 4u);

    // The resumed document must be byte-identical to the full run's
    // (timing excluded: journaled cells carry none).
    EXPECT_EQ(sweepToJson(run2, noTiming()), sweepToJson(run1, noTiming()));

    std::remove(journalPath.c_str());
}

TEST(SweepJournalTest, JournalMismatchedGridIsNotResumed)
{
    std::string journalPath = tempPath("para_fault_mismatch.jsonl");
    std::remove(journalPath.c_str());

    TraceRepository repo1(smallScale());
    SweepEngine::Options first;
    first.journalPath = journalPath;
    SweepEngine(first).run(repo1, {"xlisp"}, fourConfigs(), fourLabels());

    // Same cell indices, different input: nothing may be skipped.
    JournalData journal = loadJournal(journalPath);
    TraceRepository repo2(smallScale());
    SweepEngine::Options second;
    second.resume = &journal;
    SweepResult run2 = SweepEngine(second).run(repo2, {"matrix300"},
                                               fourConfigs(), fourLabels());
    EXPECT_EQ(run2.cellsSkipped, 0u);
    for (const SweepCell &cell : run2.cells)
        EXPECT_EQ(cell.status, SweepCell::Status::Ok);

    std::remove(journalPath.c_str());
}

TEST(SweepJournalTest, TruncatedJournalLinesAreSkippedNotFatal)
{
    std::string journalPath = tempPath("para_fault_torn.jsonl");
    std::remove(journalPath.c_str());

    TraceRepository repo1(smallScale());
    SweepEngine::Options first;
    first.journalPath = journalPath;
    SweepEngine(first).run(repo1, {"xlisp"}, fourConfigs(), fourLabels());

    // Simulate a crash mid-append: chop the tail off the last line, which
    // is far longer than 10 bytes, so it can no longer parse.
    std::uintmax_t size = std::filesystem::file_size(journalPath);
    std::filesystem::resize_file(journalPath, size - 10);

    JournalData journal = loadJournal(journalPath);
    EXPECT_EQ(journal.entries.size(), 3u);

    TraceRepository repo2(smallScale());
    SweepEngine::Options second;
    second.resume = &journal;
    SweepResult run2 = SweepEngine(second).run(repo2, {"xlisp"},
                                               fourConfigs(), fourLabels());
    EXPECT_EQ(run2.cellsSkipped, journal.entries.size());
    EXPECT_EQ(run2.cellsFailed, 0u);
}

TEST(SweepJournalTest, TrailingGarbageAfterValidEntriesIsSkipped)
{
    // A crash can leave anything after the last good line: binary junk,
    // torn JSON, or well-formed objects missing required fields. None of
    // it may void the entries already journaled.
    std::string journalPath = tempPath("para_fault_garbage.jsonl");
    std::remove(journalPath.c_str());

    TraceRepository repo1(smallScale());
    SweepEngine::Options first;
    first.journalPath = journalPath;
    SweepResult run1 = SweepEngine(first).run(repo1, {"xlisp"},
                                              fourConfigs(), fourLabels());

    {
        std::ofstream out(journalPath, std::ios::app | std::ios::binary);
        out << "{\"index\": 7, \"input\": \"xl";          // torn mid-write
        out << std::string("\x00\xff\x01garbage\x7f", 12) // binary junk
            << "\n";
        out << "not json at all\n";
        out << "{\"index\": 9}\n";  // parses, but fields are missing
        out << "{\"index\": 1, \"input\": \"xlisp\", \"config_label\": "
               "\"w64\", \"status\": \"maybe\"}\n"; // unknown status
        out << "\n"; // blank lines are fine anywhere
    }

    JournalData journal = loadJournal(journalPath);
    EXPECT_EQ(journal.entries.size(), 4u);

    TraceRepository repo2(smallScale());
    SweepEngine::Options second;
    second.resume = &journal;
    SweepResult run2 = SweepEngine(second).run(repo2, {"xlisp"},
                                               fourConfigs(), fourLabels());
    EXPECT_EQ(run2.cellsSkipped, 4u);
    EXPECT_EQ(run2.cellsFailed, 0u);
    EXPECT_EQ(sweepToJson(run2, noTiming()), sweepToJson(run1, noTiming()));

    std::remove(journalPath.c_str());
}

TEST(SweepJournalTest, InterleavedFailedLineDemotesItsCellOnly)
{
    // Re-running with the same --journal file accumulates lines, so a cell
    // can appear more than once. The LAST entry per index wins: an ok cell
    // later journaled as failed must re-run on resume, its neighbours must
    // not, and a failed entry must never be spliced into the document.
    std::string journalPath = tempPath("para_fault_interleave.jsonl");
    std::remove(journalPath.c_str());

    TraceRepository repo1(smallScale());
    SweepEngine::Options first;
    first.journalPath = journalPath;
    SweepResult run1 = SweepEngine(first).run(repo1, {"xlisp"},
                                              fourConfigs(), fourLabels());
    EXPECT_EQ(run1.cellsFailed, 0u);

    {
        std::ofstream out(journalPath, std::ios::app);
        out << "{\"index\": 2, \"input\": \"xlisp\", \"config_label\": "
               "\"w256\", \"status\": \"failed\", \"attempts\": 3, "
               "\"error\": \"simulated crash\"}\n";
    }

    JournalData journal = loadJournal(journalPath);
    ASSERT_EQ(journal.entries.size(), 4u);
    EXPECT_EQ(journal.entries.at(2).status, "failed");
    EXPECT_EQ(journal.entries.at(2).attempts, 3u);
    EXPECT_EQ(journal.entries.at(2).error, "simulated crash");

    TraceRepository repo2(smallScale());
    SweepEngine::Options second;
    second.resume = &journal;
    SweepResult run2 = SweepEngine(second).run(repo2, {"xlisp"},
                                               fourConfigs(), fourLabels());
    EXPECT_EQ(run2.cellsSkipped, 3u);
    EXPECT_EQ(run2.cellsFailed, 0u); // the demoted cell re-ran and passed
    EXPECT_EQ(sweepToJson(run2, noTiming()), sweepToJson(run1, noTiming()));

    std::remove(journalPath.c_str());
}

TEST(SweepJournalTest, OkLineForTheWrongGridPositionIsNotSpliced)
{
    // findOk matches on (index, input, config label) — an ok entry whose
    // label disagrees with the requested grid must not satisfy the cell,
    // even though its index does.
    std::string journalPath = tempPath("para_fault_wrongpos.jsonl");
    std::remove(journalPath.c_str());

    TraceRepository repo1(smallScale());
    SweepEngine::Options first;
    first.journalPath = journalPath;
    SweepEngine(first).run(repo1, {"xlisp"}, fourConfigs(), fourLabels());

    JournalData journal = loadJournal(journalPath);
    ASSERT_EQ(journal.entries.size(), 4u);

    // Same grid, different labels: indices line up, labels do not.
    TraceRepository repo2(smallScale());
    SweepEngine::Options second;
    second.resume = &journal;
    SweepResult run2 = SweepEngine(second).run(
        repo2, {"xlisp"}, fourConfigs(), {"a16", "a64", "a256", "ainf"});
    EXPECT_EQ(run2.cellsSkipped, 0u);
    for (const SweepCell &cell : run2.cells)
        EXPECT_EQ(cell.status, SweepCell::Status::Ok);

    std::remove(journalPath.c_str());
}

TEST(SweepJournalTest, NotAJournalIsFatal)
{
    std::string path = tempPath("para_fault_notjournal.jsonl");
    {
        std::ofstream out(path);
        out << "{\"schema\": \"something-else\"}\n";
    }
    EXPECT_THROW(loadJournal(path), FatalError);
    std::remove(path.c_str());
}

TEST(SweepCliFaults, FaultySweepExitsZeroAndResumeReproducesIt)
{
    namespace fs = std::filesystem;
    std::string dir =
        (fs::temp_directory_path() / "para_cli_fault").string();
    fs::create_directories(dir);
    std::string cleanOut = dir + "/clean.json";
    std::string faultyOut = dir + "/faulty.json";
    std::string resumedOut = dir + "/resumed.json";
    std::string journal = dir + "/journal.jsonl";
    std::remove(journal.c_str());

    std::string base = std::string(PARAGRAPH_SWEEP_CLI_PATH) +
                       " --small --max=2000 --windows=16,64,256,0"
                       " --no-timing --quiet";
    auto runCmd = [](const std::string &cmd) {
        return std::system(cmd.c_str());
    };
    auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    };

    // A sweep with one bad input must still exit 0 and name the failures.
    int status = runCmd(base + " --inputs=xlisp," + badInput +
                        ",matrix300 --journal=" + journal +
                        " --out=" + faultyOut + " 2>/dev/null");
    ASSERT_EQ(status, 0);
    std::string faulty = slurp(faultyOut);
    EXPECT_NE(faulty.find("\"cells_failed\": 4"), std::string::npos);
    EXPECT_NE(faulty.find("unknown workload"), std::string::npos);

    // Resuming from the journal reproduces the document byte-for-byte.
    status = runCmd(base + " --inputs=xlisp," + badInput +
                    ",matrix300 --resume=" + journal +
                    " --out=" + resumedOut + " 2>/dev/null");
    ASSERT_EQ(status, 0);
    EXPECT_EQ(slurp(resumedOut), faulty);

    // And the clean two-input sweep agrees with the surviving cells: same
    // document except for the failed row and the cell/fail counters.
    status = runCmd(base + " --inputs=xlisp,matrix300 --out=" + cleanOut +
                    " 2>/dev/null");
    ASSERT_EQ(status, 0);
    std::string clean = slurp(cleanOut);
    EXPECT_NE(clean.find("\"cells_failed\": 0"), std::string::npos);

    fs::remove_all(dir);
}
