// Config fingerprinting (engine/config_key.hpp): the canonical text and
// CRC-32 key that content-address analysis configs in the sweep journal and
// the paragraph-serve result store. The key must be stable run to run,
// sensitive to every semantic field, and collision-free across the config
// shapes the project actually sweeps.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/cancel_token.hpp"
#include "core/config.hpp"
#include "engine/config_key.hpp"
#include "engine/journal.hpp"
#include "engine/sweep.hpp"

using namespace paragraph;
using core::AnalysisConfig;

TEST(ConfigKey, IsDeterministicAndVersioned)
{
    AnalysisConfig cfg;
    std::string text = engine::canonicalConfigText(cfg);
    EXPECT_EQ(text.rfind("paragraph-config-v1", 0), 0u)
        << "canonical text must lead with its format version";
    EXPECT_EQ(text, engine::canonicalConfigText(cfg));
    EXPECT_EQ(engine::configKey(cfg), engine::configKey(cfg));
    EXPECT_EQ(engine::configKeyHex(cfg), engine::configKeyHex(cfg));
    EXPECT_EQ(engine::configKeyHex(cfg).size(), 8u);
}

TEST(ConfigKey, CancelTokenIsNotPartOfTheIdentity)
{
    // The cancel pointer is plumbing, not analysis semantics: the same
    // config with and without a token must cache under the same address.
    AnalysisConfig cfg;
    uint32_t bare = engine::configKey(cfg);
    core::CancelToken token;
    cfg.cancel = &token;
    EXPECT_EQ(engine::configKey(cfg), bare);
}

TEST(ConfigKey, EverySemanticFieldChangesTheKey)
{
    AnalysisConfig base;
    uint32_t baseKey = engine::configKey(base);

    auto differs = [&](AnalysisConfig cfg, const char *what) {
        EXPECT_NE(engine::configKey(cfg), baseKey) << what;
    };

    AnalysisConfig c = base;
    c.sysCallsStall = !c.sysCallsStall;
    differs(c, "sysCallsStall");

    c = base;
    c.renameRegisters = !c.renameRegisters;
    differs(c, "renameRegisters");

    c = base;
    c.renameData = !c.renameData;
    differs(c, "renameData");

    c = base;
    c.renameStack = !c.renameStack;
    differs(c, "renameStack");

    c = base;
    c.windowSize = c.windowSize + 1;
    differs(c, "windowSize");

    c = base;
    c.branchPredictor = core::PredictorKind::AlwaysWrong;
    differs(c, "branchPredictor");

    c = base;
    c.predictorTableBits = c.predictorTableBits + 1;
    differs(c, "predictorTableBits");

    c = base;
    c.fuLimit[0] = c.fuLimit[0] + 1;
    differs(c, "fuLimit");

    c = base;
    c.totalFuLimit = c.totalFuLimit + 1;
    differs(c, "totalFuLimit");

    c = base;
    c.pipelinedFus = !c.pipelinedFus;
    differs(c, "pipelinedFus");

    c = base;
    c.latency[0] = c.latency[0] + 1;
    differs(c, "latency");

    c = base;
    c.maxInstructions = c.maxInstructions + 1;
    differs(c, "maxInstructions");

    c = base;
    c.profileBins = c.profileBins + 1;
    differs(c, "profileBins");

    c = base;
    c.collectLifetimes = !c.collectLifetimes;
    differs(c, "collectLifetimes");

    c = base;
    c.collectSharing = !c.collectSharing;
    differs(c, "collectSharing");

    c = base;
    c.collectStorageProfile = !c.collectStorageProfile;
    differs(c, "collectStorageProfile");

    c = base;
    c.useLastUseEviction = !c.useLastUseEviction;
    differs(c, "useLastUseEviction");
}

TEST(ConfigKey, FuzzOracleMatrixIsCollisionFree)
{
    // The eight config shapes the fuzz oracle crosses every generated
    // trace with (src/fuzz/invariant_oracle.cpp buildMatrix) must all land
    // on distinct keys — these are the configs most likely to coexist in
    // one result store.
    std::vector<AnalysisConfig> matrix;
    AnalysisConfig base;
    matrix.push_back(base);

    AnalysisConfig w = base;
    w.windowSize = 16;
    matrix.push_back(w);
    w.windowSize = 64;
    matrix.push_back(w);

    AnalysisConfig rn = base;
    rn.renameRegisters = rn.renameData = rn.renameStack = false;
    matrix.push_back(rn);
    rn.renameRegisters = true;
    matrix.push_back(rn);

    AnalysisConfig sc = base;
    sc.sysCallsStall = false;
    matrix.push_back(sc);

    AnalysisConfig fu = base;
    fu.totalFuLimit = 2;
    matrix.push_back(fu);

    AnalysisConfig bp = base;
    bp.branchPredictor = core::PredictorKind::AlwaysWrong;
    matrix.push_back(bp);

    ASSERT_EQ(matrix.size(), 8u);
    std::set<uint32_t> keys;
    std::set<std::string> texts;
    for (const AnalysisConfig &cfg : matrix) {
        keys.insert(engine::configKey(cfg));
        texts.insert(engine::canonicalConfigText(cfg));
    }
    EXPECT_EQ(texts.size(), matrix.size()) << "canonical texts collided";
    EXPECT_EQ(keys.size(), matrix.size()) << "CRC-32 keys collided";
}

TEST(ConfigKey, JournalEntriesMatchOnFingerprintNotJustLabel)
{
    // Two different configs can share a label (labels elide axes at their
    // defaults); the journal must refuse to splice a cell whose recorded
    // fingerprint disagrees with the job it is asked to satisfy.
    engine::SweepJob job;
    job.input = "xlisp";
    job.configLabel = "window=16";
    job.config.windowSize = 16;

    engine::JournalEntry entry;
    entry.index = 0;
    entry.input = "xlisp";
    entry.configLabel = "window=16";
    entry.status = "ok";
    entry.cellJson = "{}";

    engine::JournalData data;

    // A pre-fingerprint entry (no config_key) still matches by position,
    // input, and label — old journals stay resumable.
    data.entries[0] = entry;
    EXPECT_NE(data.findOk(0, job), nullptr);

    // The right fingerprint matches; a wrong one is rejected even though
    // every other field agrees.
    entry.configKey = engine::configKeyHex(job.config);
    data.entries[0] = entry;
    EXPECT_NE(data.findOk(0, job), nullptr);

    engine::SweepJob other = job;
    other.config.sysCallsStall = !other.config.sysCallsStall;
    EXPECT_EQ(data.findOk(0, other), nullptr);
}
