// Engine-level split-and-patch sharding: a streamed `.ptrc` cell run with
// --shard=N must render the byte-identical JSON document of the unsharded
// run for EVERY config — the splice/replay equivalence proved
// record-by-record in tests/core/shard_test.cpp, here end-to-end through
// TraceRepository's shared decode pool, the sweep scheduler, and the JSON
// writer. Plus the CLI surface: --shard / --stats argument parsing and
// the --stats timing fields.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/paragraph.hpp"
#include "engine/sweep.hpp"
#include "engine/sweep_args.hpp"
#include "engine/sweep_json.hpp"
#include "engine/trace_repository.hpp"
#include "trace/buffer.hpp"
#include "trace/file_io.hpp"

#include "../core/trace_helpers.hpp"

using namespace paragraph;
using namespace paragraph::engine;

namespace {

/** A syscall-bearing random trace persisted as a `.ptrc` file. */
class ShardExec : public ::testing::Test
{
  protected:
    std::string path_;

    void SetUp() override
    {
        // Per-test file name: ctest runs each test as its own process, so
        // sibling tests of this fixture can be live at the same instant.
        path_ = (std::filesystem::temp_directory_path() /
                 (std::string("para_shard_exec_") +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name() +
                  ".ptrc"))
                    .string();
        trace::TraceBuffer buf = testhelpers::randomTrace(17, 20000);
        trace::TraceFileWriter writer(path_);
        trace::BufferSource replay(buf, "shard-exec");
        writer.writeAll(replay);
        writer.close();
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** One streamed sweep over the file; returns its no-timing document. */
    std::string
    runSweep(unsigned shards, const std::vector<core::AnalysisConfig> &cfgs,
             SweepResult *outResult = nullptr)
    {
        TraceRepository::Options repoOpt;
        repoOpt.streamFiles = true;
        TraceRepository repo(repoOpt);

        SweepEngine::Options opt;
        opt.jobs = 1;
        opt.groupSize = 1;
        opt.shards = shards;
        SweepEngine sweeper(opt);
        SweepResult result = sweeper.run(repo, {path_}, cfgs);

        SweepJsonOptions json;
        json.timing = false;
        std::string doc = sweepToJson(result, json);
        if (outResult)
            *outResult = std::move(result);
        return doc;
    }
};

} // namespace

TEST_F(ShardExec, ShardedSweepIsByteIdenticalToSolo)
{
    std::vector<core::AnalysisConfig> cfgs;
    cfgs.push_back(core::AnalysisConfig::dataflowConservative());
    core::AnalysisConfig windowed = core::AnalysisConfig::dataflowConservative();
    windowed.windowSize = 64;
    cfgs.push_back(windowed);
    core::AnalysisConfig plain; // no renaming defaults, still shardable
    cfgs.push_back(plain);

    SweepResult sharded;
    std::string solo = runSweep(1, cfgs);
    std::string split = runSweep(4, cfgs, &sharded);
    EXPECT_EQ(solo, split);

    // And the sharded run really did shard: a 1%-syscall 20K trace has
    // hundreds of firewall candidates, so every cell splits.
    ASSERT_EQ(sharded.cells.size(), cfgs.size());
    for (const SweepCell &cell : sharded.cells) {
        EXPECT_TRUE(cell.ok()) << cell.errorMessage;
        EXPECT_GE(cell.shardSegments, 2u);
        EXPECT_LE(cell.shardSegments, 4u);
    }
}

TEST_F(ShardExec, FormerlyGatedConfigsShardByteIdentically)
{
    // Every config the old firewall-only gate excluded: modeled
    // predictors, non-stalling syscalls, and FU limits all shard now via
    // split-and-patch, still byte-identical to solo.
    std::vector<core::AnalysisConfig> cfgs;
    core::AnalysisConfig bimodal = core::AnalysisConfig::dataflowConservative();
    bimodal.branchPredictor = core::PredictorKind::Bimodal;
    cfgs.push_back(bimodal);
    core::AnalysisConfig nostall = core::AnalysisConfig::dataflowConservative();
    nostall.sysCallsStall = false;
    cfgs.push_back(nostall);
    core::AnalysisConfig fu = core::AnalysisConfig::dataflowConservative();
    fu.totalFuLimit = 2;
    cfgs.push_back(fu);

    SweepResult sharded;
    std::string solo = runSweep(1, cfgs);
    std::string split = runSweep(4, cfgs, &sharded);
    EXPECT_EQ(solo, split);
    ASSERT_EQ(sharded.cells.size(), cfgs.size());
    for (const SweepCell &cell : sharded.cells) {
        EXPECT_TRUE(cell.ok()) << cell.errorMessage;
        EXPECT_GE(cell.shardSegments, 2u);
        EXPECT_LE(cell.shardSegments, 4u);
        EXPECT_EQ(cell.shardSpliced + cell.shardReplayed,
                  cell.shardSegments);
    }
}

TEST_F(ShardExec, MoreShardsThanSegmentsClampAndStayExact)
{
    std::vector<core::AnalysisConfig> cfgs;
    cfgs.push_back(core::AnalysisConfig::dataflowConservative());
    core::AnalysisConfig bimodal = cfgs[0];
    bimodal.branchPredictor = core::PredictorKind::Bimodal;
    cfgs.push_back(bimodal);

    SweepResult sharded;
    std::string solo = runSweep(1, cfgs);
    std::string split = runSweep(64, cfgs, &sharded);
    EXPECT_EQ(solo, split);
    for (const SweepCell &cell : sharded.cells) {
        EXPECT_TRUE(cell.ok()) << cell.errorMessage;
        EXPECT_GE(cell.shardSegments, 2u);
        EXPECT_LE(cell.shardSegments, 64u);
    }
}

TEST_F(ShardExec, StatsEmitDecodeAnalyzeSplitAndSegments)
{
    std::vector<core::AnalysisConfig> cfgs;
    cfgs.push_back(core::AnalysisConfig::dataflowConservative());

    TraceRepository::Options repoOpt;
    repoOpt.streamFiles = true;
    TraceRepository repo(repoOpt);
    SweepEngine::Options opt;
    opt.jobs = 1;
    opt.shards = 2;
    SweepEngine sweeper(opt);
    SweepResult result = sweeper.run(repo, {path_}, cfgs);

    SweepJsonOptions json;
    json.stats = true;
    std::string doc = sweepToJson(result, json);
    EXPECT_NE(doc.find("\"decode_seconds\""), std::string::npos);
    EXPECT_NE(doc.find("\"analyze_seconds\""), std::string::npos);
    EXPECT_NE(doc.find("\"shard_segments\""), std::string::npos);

    // --no-timing still wins: stats ride inside the timing object.
    json.timing = false;
    doc = sweepToJson(result, json);
    EXPECT_EQ(doc.find("decode_seconds"), std::string::npos);
    EXPECT_EQ(doc.find("shard_segments"), std::string::npos);
}

TEST(ShardArgs, ShardAndStatsFlagsParse)
{
    SweepArgs opt;
    std::string error;
    EXPECT_TRUE(parseSweepArgs({"--shard=4", "--stats", "xlisp"}, opt,
                               error))
        << error;
    EXPECT_EQ(opt.shards, 4u);
    EXPECT_TRUE(opt.json.stats);

    SweepArgs bad;
    EXPECT_FALSE(parseSweepArgs({"--shard=0", "xlisp"}, bad, error));
    EXPECT_FALSE(parseSweepArgs({"--shard=none", "xlisp"}, bad, error));
}

TEST(ShardArgs, DefaultIsUnsharded)
{
    SweepArgs opt;
    std::string error;
    ASSERT_TRUE(parseSweepArgs({"xlisp"}, opt, error)) << error;
    EXPECT_EQ(opt.shards, 1u);
    EXPECT_FALSE(opt.json.stats);
}
