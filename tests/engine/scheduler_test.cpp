// Tests for the persistent cell-execution service (engine::SweepScheduler)
// and the budget-bounded trace cache it leans on (TraceRepository LRU and
// pinning). The scheduler is the daemon's execution core: its cells must be
// byte-identical to SweepEngine's, batches from independent clients must
// fuse over a shared trace, and a bounded repository must never drop a
// pinned capture out from under a running group.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/paragraph.hpp"
#include "engine/scheduler.hpp"
#include "engine/sweep.hpp"
#include "engine/sweep_json.hpp"
#include "engine/trace_repository.hpp"
#include "trace/source.hpp"

using namespace paragraph;
using namespace paragraph::engine;

namespace {

TraceRepository::Options
smallScale()
{
    TraceRepository::Options opt;
    opt.scale = workloads::Scale::Small;
    return opt;
}

std::vector<SweepJob>
gridJobs(const std::vector<std::string> &inputs,
         const std::vector<core::AnalysisConfig> &configs)
{
    std::vector<SweepJob> jobs;
    for (size_t i = 0; i < inputs.size(); ++i) {
        for (size_t j = 0; j < configs.size(); ++j) {
            SweepJob job;
            job.input = inputs[i];
            job.config = configs[j];
            job.configLabel = "config-" + std::to_string(j);
            job.inputIndex = i;
            job.configIndex = j;
            jobs.push_back(job);
        }
    }
    return jobs;
}

} // namespace

TEST(SweepScheduler, CellsAreByteIdenticalToSweepEngine)
{
    // The property the serve result cache depends on: a scheduler-produced
    // cell must render to exactly the JSON a paragraph-sweep run of the
    // same job produces, or a warm daemon answer would differ from a cold
    // CLI one.
    std::vector<SweepJob> jobs = gridJobs(
        {"xlisp", "matrix300"},
        {core::AnalysisConfig::windowed(16),
         core::AnalysisConfig::noRenaming(),
         core::AnalysisConfig::dataflowConservative()});

    TraceRepository engineRepo(smallScale());
    SweepEngine::Options engineOpt;
    engineOpt.jobs = 2;
    SweepResult viaEngine = SweepEngine(engineOpt).runJobs(engineRepo, jobs);

    TraceRepository repo(smallScale());
    SweepScheduler::Options opt;
    opt.jobs = 3;
    opt.groupSize = 2;
    SweepScheduler scheduler(repo, opt);
    auto batch = scheduler.submit(jobs);
    batch->wait();

    SweepJsonOptions json;
    json.timing = false;
    ASSERT_EQ(batch->cells().size(), viaEngine.cells.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].input + " / " + jobs[i].configLabel);
        const SweepCell &got = batch->cells()[i];
        EXPECT_EQ(got.status, SweepCell::Status::Ok);
        EXPECT_EQ(cellToJson(got, json),
                  cellToJson(viaEngine.cells[i], json));
    }
}

TEST(SweepScheduler, IndependentBatchesShareOneCapture)
{
    // Two clients asking about the same trace: the repository captures it
    // once, and both batches' cells are correct against a solo analysis.
    TraceRepository repo(smallScale());
    SweepScheduler::Options opt;
    opt.jobs = 2;
    SweepScheduler scheduler(repo, opt);

    std::vector<SweepJob> a =
        gridJobs({"xlisp"}, {core::AnalysisConfig::windowed(16)});
    std::vector<SweepJob> b =
        gridJobs({"xlisp"}, {core::AnalysisConfig::windowed(64)});
    auto batchA = scheduler.submit(a);
    auto batchB = scheduler.submit(b);
    batchA->wait();
    batchB->wait();
    EXPECT_EQ(repo.cachedInputs(), 1u);

    for (const SweepCell *cell :
         {&batchA->cells()[0], &batchB->cells()[0]}) {
        ASSERT_EQ(cell->status, SweepCell::Status::Ok);
        trace::SharedBufferSource solo(repo.get("xlisp"));
        core::AnalysisResult alone =
            core::Paragraph(cell->job.config).analyze(solo);
        EXPECT_EQ(cell->result.criticalPathLength,
                  alone.criticalPathLength);
        EXPECT_EQ(cell->result.availableParallelism,
                  alone.availableParallelism);
        EXPECT_EQ(cell->result.instructions, alone.instructions);
    }
}

TEST(SweepScheduler, OnCellFiresOncePerCellWithFinalStatus)
{
    TraceRepository repo(smallScale());
    SweepScheduler::Options opt;
    opt.jobs = 2;
    opt.groupSize = 2;
    SweepScheduler scheduler(repo, opt);

    std::vector<SweepJob> jobs = gridJobs(
        {"xlisp"},
        {core::AnalysisConfig::windowed(16),
         core::AnalysisConfig::windowed(64),
         core::AnalysisConfig::windowed(256)});
    size_t calls = 0; // per-batch callbacks are serialized; no atomics
    auto batch = scheduler.submit(jobs, [&](SweepCell &cell) {
        ++calls;
        EXPECT_EQ(cell.status, SweepCell::Status::Ok);
    });
    batch->wait();
    EXPECT_EQ(calls, jobs.size());
}

TEST(SweepScheduler, FailedCellsCarryTheirErrorAndSpareTheRest)
{
    TraceRepository repo(smallScale());
    SweepScheduler scheduler(repo);
    std::vector<SweepJob> jobs =
        gridJobs({"no-such-workload", "xlisp"},
                 {core::AnalysisConfig::windowed(16)});
    auto batch = scheduler.submit(jobs);
    batch->wait();
    EXPECT_EQ(batch->cells()[0].status, SweepCell::Status::Failed);
    EXPECT_NE(batch->cells()[0].errorMessage.find("no-such-workload"),
              std::string::npos);
    EXPECT_EQ(batch->cells()[1].status, SweepCell::Status::Ok);
}

TEST(SweepScheduler, StopFailsLaterSubmissionsImmediately)
{
    TraceRepository repo(smallScale());
    SweepScheduler scheduler(repo);
    scheduler.stop();
    scheduler.stop(); // idempotent

    size_t calls = 0;
    auto batch = scheduler.submit(
        gridJobs({"xlisp"}, {core::AnalysisConfig::windowed(16)}),
        [&](SweepCell &) { ++calls; });
    batch->wait(); // must not hang: cells are failed synchronously
    ASSERT_EQ(batch->cells().size(), 1u);
    EXPECT_EQ(batch->cells()[0].status, SweepCell::Status::Failed);
    EXPECT_EQ(batch->cells()[0].errorMessage, "scheduler stopped");
    EXPECT_EQ(batch->cells()[0].attempts, 0u);
    EXPECT_EQ(calls, 1u);
}

TEST(SweepScheduler, StopGivesEveryQueuedCellAFinalStatus)
{
    // stop() racing a just-submitted batch: each cell either ran (Ok) or
    // was drained (Failed "scheduler stopped") — never left un-final, so
    // wait() always returns.
    TraceRepository repo(smallScale());
    SweepScheduler::Options opt;
    opt.jobs = 1;
    opt.groupSize = 1;
    SweepScheduler scheduler(repo, opt);

    std::vector<core::AnalysisConfig> configs;
    for (uint64_t w = 4; w <= 512; w *= 2)
        configs.push_back(core::AnalysisConfig::windowed(w));
    auto batch = scheduler.submit(gridJobs({"xlisp"}, configs));
    scheduler.stop();
    batch->wait();

    for (const SweepCell &cell : batch->cells()) {
        if (cell.status == SweepCell::Status::Failed)
            EXPECT_EQ(cell.errorMessage, "scheduler stopped");
        else
            EXPECT_EQ(cell.status, SweepCell::Status::Ok);
    }
}

TEST(TraceRepository, BudgetEvictsLeastRecentlyUsedCapture)
{
    // Learn the capture sizes, then bound a fresh repository so it can hold
    // either input alone but never both.
    TraceRepository probe(smallScale());
    probe.get("xlisp");
    probe.get("matrix300");
    size_t both = probe.cachedBytes();
    ASSERT_EQ(probe.cachedInputs(), 2u);

    TraceRepository::Options opt = smallScale();
    opt.memoryBudget = both - 1;
    TraceRepository repo(opt);
    repo.get("xlisp");
    EXPECT_EQ(repo.cachedInputs(), 1u);
    repo.get("matrix300"); // exceeds the budget: xlisp is evicted
    EXPECT_EQ(repo.cachedInputs(), 1u);
    EXPECT_LE(repo.cachedBytes(), opt.memoryBudget);

    // Re-requesting the evicted input recaptures it and evicts the other.
    auto back = repo.get("xlisp");
    EXPECT_EQ(repo.cachedInputs(), 1u);
    EXPECT_GT(back->size(), 0u);
}

TEST(TraceRepository, PinnedCapturesSurviveAnyBudgetPressure)
{
    // Satellite guarantee: while a fused group holds its TracePin, budget
    // pressure from other inputs may overshoot but can never evict (and
    // later silently re-capture) the pinned trace.
    TraceRepository::Options opt = smallScale();
    opt.memoryBudget = 1; // any insert beyond the first is over budget
    TraceRepository repo(opt);

    TracePin pin = repo.pin("xlisp");
    ASSERT_TRUE(pin.buffer() != nullptr);
    const trace::TraceBuffer *pinned = pin.buffer().get();

    repo.get("matrix300"); // would evict everything unpinned
    EXPECT_EQ(repo.get("xlisp").get(), pinned)
        << "pinned capture was evicted and re-captured";

    repo.clear(); // also refuses to touch pinned entries
    EXPECT_EQ(repo.get("xlisp").get(), pinned);

    pin.release();
    repo.get("matrix300"); // now the unpinned xlisp entry may go
    EXPECT_EQ(repo.cachedInputs(), 1u);
}

TEST(TraceRepository, SchedulerCompletesCorrectlyUnderMaximalEviction)
{
    // A one-byte budget makes every new capture evict the previous one.
    // Group pins keep each fused pass's trace resident while it runs, so
    // all cells still complete and match an unbounded run byte for byte.
    std::vector<SweepJob> jobs = gridJobs(
        {"xlisp", "matrix300"},
        {core::AnalysisConfig::windowed(16),
         core::AnalysisConfig::windowed(64)});

    TraceRepository unbounded(smallScale());
    SweepResult reference = SweepEngine().runJobs(unbounded, jobs);

    TraceRepository::Options opt = smallScale();
    opt.memoryBudget = 1;
    TraceRepository repo(opt);
    SweepScheduler::Options schedOpt;
    schedOpt.jobs = 2;
    schedOpt.groupSize = 2;
    SweepScheduler scheduler(repo, schedOpt);
    auto batch = scheduler.submit(jobs);
    batch->wait();

    SweepJsonOptions json;
    json.timing = false;
    for (size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].input + " / " + jobs[i].configLabel);
        EXPECT_EQ(cellToJson(batch->cells()[i], json),
                  cellToJson(reference.cells[i], json));
    }
}

TEST(TraceRepository, TraceCrcIsRememberedPastEviction)
{
    TraceRepository repo(smallScale());
    uint32_t crc = repo.traceCrc("xlisp");
    EXPECT_EQ(repo.cachedInputs(), 1u);

    repo.release("xlisp");
    EXPECT_EQ(repo.cachedInputs(), 0u);
    // The content identity is remembered per spec: no re-capture needed.
    EXPECT_EQ(repo.traceCrc("xlisp"), crc);
    EXPECT_EQ(repo.cachedInputs(), 0u);

    // And a genuine re-capture lands on the same identity.
    repo.get("xlisp");
    EXPECT_EQ(repo.traceCrc("xlisp"), crc);
}
