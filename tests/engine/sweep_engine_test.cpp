// Tests for the parallel sweep engine: shared trace capture
// (engine::TraceRepository), the threaded grid runner (engine::SweepEngine),
// and the stable JSON writer (engine::sweep_json).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "core/paragraph.hpp"
#include "engine/sweep.hpp"
#include "engine/sweep_json.hpp"
#include "engine/trace_repository.hpp"
#include "support/panic.hpp"
#include "trace/compressed_io.hpp"

using namespace paragraph;
using namespace paragraph::engine;

namespace {

TraceRepository::Options
smallScale()
{
    TraceRepository::Options opt;
    opt.scale = workloads::Scale::Small;
    return opt;
}

/**
 * Assert two AnalysisResults are identical in every deterministic field,
 * including the full profile bins and distribution counts. Doubles are
 * compared exactly: identical analysis must produce bit-identical output.
 */
void
expectIdenticalResults(const core::AnalysisResult &a,
                       const core::AnalysisResult &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.placedOps, b.placedOps);
    EXPECT_EQ(a.sysCalls, b.sysCalls);
    EXPECT_EQ(a.firewalls, b.firewalls);
    EXPECT_EQ(a.preExistingValues, b.preExistingValues);
    EXPECT_EQ(a.storageDelayedOps, b.storageDelayedOps);
    EXPECT_EQ(a.fuDelayedOps, b.fuDelayedOps);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.branchMispredictions, b.branchMispredictions);
    EXPECT_EQ(a.criticalPathLength, b.criticalPathLength);
    EXPECT_EQ(a.availableParallelism, b.availableParallelism);
    EXPECT_EQ(a.liveWellPeak, b.liveWellPeak);
    EXPECT_EQ(a.liveWellFinal, b.liveWellFinal);

    ASSERT_EQ(a.profile.numBins(), b.profile.numBins());
    EXPECT_EQ(a.profile.bucketWidth(), b.profile.bucketWidth());
    EXPECT_EQ(a.profile.maxLevel(), b.profile.maxLevel());
    for (size_t i = 0; i < a.profile.numBins(); ++i)
        ASSERT_EQ(a.profile.binCount(i), b.profile.binCount(i)) << i;

    EXPECT_EQ(a.lifetimes.totalCount(), b.lifetimes.totalCount());
    EXPECT_EQ(a.lifetimes.maxSample(), b.lifetimes.maxSample());
    EXPECT_EQ(a.lifetimes.mean(), b.lifetimes.mean());
    EXPECT_EQ(a.sharing.totalCount(), b.sharing.totalCount());
    EXPECT_EQ(a.sharing.mean(), b.sharing.mean());
    EXPECT_EQ(a.storageProfile.intervals(), b.storageProfile.intervals());
    EXPECT_EQ(a.storageProfile.peakLive(), b.storageProfile.peakLive());
}

} // namespace

TEST(TraceRepository, CapturesOnceAndShares)
{
    TraceRepository repo(smallScale());
    auto first = repo.get("xlisp");
    auto second = repo.get("xlisp");
    EXPECT_EQ(first.get(), second.get()); // same capture, not a re-run
    EXPECT_EQ(repo.cachedInputs(), 1u);
    EXPECT_GT(first->size(), 0u);

    repo.release("xlisp");
    EXPECT_EQ(repo.cachedInputs(), 0u);
    // The released capture stays alive through our shared_ptr.
    EXPECT_GT(first->size(), 0u);
}

TEST(TraceRepository, SourcesReplayTheSharedCapture)
{
    TraceRepository repo(smallScale());
    auto buf = repo.get("matrix300");
    auto src = repo.makeSource("matrix300");

    trace::TraceRecord rec;
    size_t n = 0;
    while (src->next(rec))
        ++n;
    EXPECT_EQ(n, buf->size());

    src->reset();
    ASSERT_TRUE(src->next(rec));
    EXPECT_EQ(rec, (*buf)[0]);
    EXPECT_EQ(src->name(), "matrix300");
}

TEST(TraceRepository, MaxRecordsCapsTheCapture)
{
    TraceRepository::Options opt = smallScale();
    opt.maxRecords = 100;
    TraceRepository repo(opt);
    EXPECT_EQ(repo.get("xlisp")->size(), 100u);
}

TEST(TraceRepository, OpensTraceFilesByExtension)
{
    namespace fs = std::filesystem;
    std::string path = (fs::temp_directory_path() / "repo_cap.ptrz").string();

    TraceRepository repo(smallScale());
    auto live = repo.get("xlisp");
    {
        trace::CompressedTraceWriter writer(path);
        trace::SharedBufferSource src(live, "xlisp");
        writer.writeAll(src);
        writer.close();
    }

    auto fromFile = repo.get(path);
    ASSERT_EQ(fromFile->size(), live->size());
    EXPECT_EQ(fromFile->records(), live->records());
    fs::remove(path);
}

TEST(TraceRepository, UnknownInputThrows)
{
    TraceRepository repo(smallScale());
    EXPECT_THROW(repo.get("no-such-workload"), FatalError);
}

TEST(TraceRepository, StreamingSourcesMatchTheCaptureWithoutCaching)
{
    // streamFiles serves trace files by re-opening them per source: the
    // records (and the maxRecords cap) must match a capture exactly, but
    // nothing is held in the cache.
    namespace fs = std::filesystem;
    std::string path =
        (fs::temp_directory_path() / "repo_stream.ptrz").string();

    TraceRepository capRepo(smallScale());
    auto live = capRepo.get("xlisp");
    {
        trace::CompressedTraceWriter writer(path);
        trace::SharedBufferSource src(live, "xlisp");
        writer.writeAll(src);
        writer.close();
    }

    TraceRepository::Options opt = smallScale();
    opt.maxRecords = 150;
    opt.streamFiles = true;
    TraceRepository streamRepo(opt);
    EXPECT_TRUE(streamRepo.streamingInput(path));
    EXPECT_FALSE(streamRepo.streamingInput("xlisp"));

    auto src = streamRepo.makeSource(path);
    trace::TraceRecord rec;
    size_t n = 0;
    while (src->next(rec))
        ++n;
    EXPECT_EQ(n, 150u); // capped exactly like a capture would be
    EXPECT_EQ(streamRepo.cachedInputs(), 0u);

    src->reset();
    ASSERT_TRUE(src->next(rec));
    EXPECT_EQ(rec, (*live)[0]);
    fs::remove(path);
}

TEST(SweepEngine, StreamingSweepJsonMatchesCapturedSweep)
{
    // A streamed trace-file sweep — solo or fused — must serialize to the
    // same document as the captured sweep of the same file.
    namespace fs = std::filesystem;
    std::string path =
        (fs::temp_directory_path() / "sweep_stream.ptrz").string();
    {
        TraceRepository seed(smallScale());
        trace::SharedBufferSource src(seed.get("xlisp"), "xlisp");
        trace::CompressedTraceWriter writer(path);
        writer.writeAll(src);
        writer.close();
    }

    std::vector<core::AnalysisConfig> configs = {
        core::AnalysisConfig::windowed(16),
        core::AnalysisConfig::windowed(256),
        core::AnalysisConfig::noRenaming(),
        core::AnalysisConfig::dataflowConservative(),
    };
    SweepJsonOptions json;
    json.timing = false;

    TraceRepository::Options capOpt = smallScale();
    capOpt.maxRecords = 1500;
    TraceRepository capRepo(capOpt);
    SweepEngine::Options soloOpt;
    soloOpt.jobs = 2;
    std::string captured = sweepToJson(
        SweepEngine(soloOpt).run(capRepo, {path}, configs), json);

    for (unsigned group : {1u, 4u}) {
        TraceRepository::Options streamOpt = capOpt;
        streamOpt.streamFiles = true;
        TraceRepository streamRepo(streamOpt);
        SweepEngine::Options opt;
        opt.jobs = 2;
        opt.groupSize = group;
        std::string streamed = sweepToJson(
            SweepEngine(opt).run(streamRepo, {path}, configs), json);
        EXPECT_EQ(streamed, captured) << "group=" << group;
        EXPECT_EQ(streamRepo.cachedInputs(), 0u) << "group=" << group;
    }
    fs::remove(path);
}

TEST(SweepEngine, AutoGroupRespectsDecoderCapOnGatedStreams)
{
    // Auto grouping (--group=0) over a decode-gated stream (`.ptrz`: one
    // private decoder per pass, at most two concurrent) must divide the
    // bucket among the decoders that can run, not among all workers:
    // ceil(pending / jobs) at --jobs=8 gave eight near-solo passes that
    // serialized two-at-a-time, each paying a full decode.
    namespace fs = std::filesystem;
    std::string path =
        (fs::temp_directory_path() / "sweep_autogroup.ptrz").string();
    {
        TraceRepository seed(smallScale());
        trace::SharedBufferSource src(seed.get("xlisp"), "xlisp");
        trace::CompressedTraceWriter writer(path);
        writer.writeAll(src);
        writer.close();
    }

    std::vector<core::AnalysisConfig> configs;
    for (uint64_t w : {16u, 32u, 64u, 128u, 256u, 512u, 1024u, 0u}) {
        configs.push_back(w ? core::AnalysisConfig::windowed(w)
                            : core::AnalysisConfig::dataflowConservative());
    }
    SweepJsonOptions json;
    json.timing = false;

    TraceRepository::Options capOpt = smallScale();
    capOpt.maxRecords = 1500;
    TraceRepository capRepo(capOpt);
    SweepEngine::Options soloOpt;
    soloOpt.jobs = 2;
    std::string captured = sweepToJson(
        SweepEngine(soloOpt).run(capRepo, {path}, configs), json);

    TraceRepository::Options streamOpt = capOpt;
    streamOpt.streamFiles = true;
    TraceRepository streamRepo(streamOpt);
    SweepEngine::Options opt;
    opt.jobs = 8;
    opt.groupSize = 0; // auto
    SweepResult sweep = SweepEngine(opt).run(streamRepo, {path}, configs);
    // Two decoders' shares of eight configs: two fused passes of four —
    // not eight near-solo passes (the old ceil(8 / jobs) target).
    EXPECT_EQ(sweep.fusedGroups, 2u);
    EXPECT_EQ(sweepToJson(sweep, json), captured);
    fs::remove(path);
}

TEST(SweepEngine, AutoGroupKeepsWorkerSharesOnCapturedInputs)
{
    // Captured inputs share the repository cache and are never
    // decode-gated: the auto target stays one pass per worker's share.
    std::vector<core::AnalysisConfig> configs;
    for (uint64_t w : {16u, 32u, 64u, 128u, 256u, 512u, 1024u, 0u}) {
        configs.push_back(w ? core::AnalysisConfig::windowed(w)
                            : core::AnalysisConfig::dataflowConservative());
    }
    TraceRepository repo(smallScale());
    SweepEngine::Options opt;
    opt.jobs = 8;
    opt.groupSize = 0; // auto: ceil(8 / 8) = 1 config per pass
    SweepResult sweep = SweepEngine(opt).run(repo, {"xlisp"}, configs);
    EXPECT_EQ(sweep.fusedGroups, configs.size());
}

TEST(SweepEngine, CellsMatchSoloAnalyzeRunsByteForByte)
{
    // The acceptance grid shape: window sizes crossed with two workloads,
    // every cell checked against an independent serial Paragraph::analyze.
    std::vector<std::string> inputs = {"xlisp", "matrix300"};
    std::vector<core::AnalysisConfig> configs = {
        core::AnalysisConfig::windowed(16),
        core::AnalysisConfig::windowed(64),
        core::AnalysisConfig::windowed(1024),
        core::AnalysisConfig::dataflowConservative(),
        core::AnalysisConfig::noRenaming(),
    };

    TraceRepository repo(smallScale());
    SweepEngine::Options opt;
    opt.jobs = 4;
    SweepResult sweep = SweepEngine(opt).run(repo, inputs, configs);
    ASSERT_EQ(sweep.cells.size(), inputs.size() * configs.size());

    for (const SweepCell &cell : sweep.cells) {
        SCOPED_TRACE(cell.job.input + " / " + cell.job.configLabel);
        trace::SharedBufferSource solo(repo.get(cell.job.input));
        core::AnalysisResult alone =
            core::Paragraph(cell.job.config).analyze(solo);
        expectIdenticalResults(cell.result, alone);
    }
}

TEST(SweepEngine, CellsComeBackInInputMajorGridOrder)
{
    std::vector<std::string> inputs = {"xlisp", "matrix300"};
    std::vector<core::AnalysisConfig> configs = {
        core::AnalysisConfig::windowed(16),
        core::AnalysisConfig::dataflowConservative(),
    };
    TraceRepository repo(smallScale());
    SweepEngine::Options opt;
    opt.jobs = 3;
    SweepResult sweep = SweepEngine(opt).run(repo, inputs, configs);
    ASSERT_EQ(sweep.cells.size(), 4u);
    for (size_t i = 0; i < inputs.size(); ++i) {
        for (size_t j = 0; j < configs.size(); ++j) {
            const SweepCell &cell = sweep.cells[i * configs.size() + j];
            EXPECT_EQ(cell.job.input, inputs[i]);
            EXPECT_EQ(cell.job.inputIndex, i);
            EXPECT_EQ(cell.job.configIndex, j);
        }
    }
}

TEST(SweepEngine, JsonIsIdenticalForAnyWorkerCount)
{
    // The determinism invariant behind the whole design: workers share no
    // mutable analysis state, so a 1-thread and an 8-thread sweep of the
    // same grid serialize to byte-identical JSON (timing omitted).
    std::vector<std::string> inputs = {"xlisp", "matrix300"};
    std::vector<core::AnalysisConfig> configs = {
        core::AnalysisConfig::windowed(16),
        core::AnalysisConfig::windowed(256),
        core::AnalysisConfig::noRenaming(),
        core::AnalysisConfig::dataflowOptimistic(),
    };

    SweepJsonOptions json;
    json.timing = false;

    TraceRepository repo1(smallScale());
    SweepEngine::Options serialOpt;
    serialOpt.jobs = 1;
    std::string serial = sweepToJson(
        SweepEngine(serialOpt).run(repo1, inputs, configs), json);

    TraceRepository repo8(smallScale());
    SweepEngine::Options threadedOpt;
    threadedOpt.jobs = 8;
    std::string threaded = sweepToJson(
        SweepEngine(threadedOpt).run(repo8, inputs, configs), json);

    EXPECT_EQ(serial, threaded);
    EXPECT_NE(serial.find("\"schema\": \"paragraph-sweep-v3\""),
              std::string::npos);
    EXPECT_EQ(serial.find("wall_seconds"), std::string::npos);
}

TEST(SweepEngine, ProgressReportsEveryCellExactlyOnce)
{
    std::atomic<size_t> calls{0};
    std::atomic<size_t> lastDone{0};
    SweepEngine::Options opt;
    opt.jobs = 4;
    opt.progress = [&](size_t done, size_t total, double) {
        ++calls;
        lastDone = done;
        EXPECT_EQ(total, 6u);
    };
    TraceRepository repo(smallScale());
    std::vector<core::AnalysisConfig> configs = {
        core::AnalysisConfig::windowed(4),
        core::AnalysisConfig::windowed(16),
        core::AnalysisConfig::windowed(64),
    };
    SweepResult sweep =
        SweepEngine(opt).run(repo, {"xlisp", "matrix300"}, configs);
    EXPECT_EQ(calls.load(), 6u);
    EXPECT_EQ(lastDone.load(), 6u);
    EXPECT_EQ(sweep.jobs, 4u);
    EXPECT_GT(sweep.totalInstructions, 0u);
}

TEST(SweepJson, RendersStableNumbersAndStrings)
{
    EXPECT_EQ(jsonDouble(0.0), "0");
    EXPECT_EQ(jsonDouble(2.5), "2.5");
    EXPECT_EQ(jsonDouble(1.0 / 3.0), "0.3333333333333333");
    // Round-trip: parsing the rendering recovers the exact double.
    double v = 3.0651797117314357;
    EXPECT_EQ(std::strtod(jsonDouble(v).c_str(), nullptr), v);

    EXPECT_EQ(jsonString("plain"), "\"plain\"");
    EXPECT_EQ(jsonString("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
}
