// Unit tests for the fuzz subsystem itself: generator determinism and
// validity, mutation validity, oracle cleanliness on generated traces, the
// forced-failure self-test (dump -> replay round-trip, the acceptance
// criterion for the reproducer machinery), ddmin minimization, the
// CRC-preserving field-edit decode check, and the summary JSON document.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "fuzz/harness.hpp"
#include "fuzz/invariant_oracle.hpp"
#include "fuzz/trace_fuzzer.hpp"
#include "trace/buffer.hpp"
#include "trace/compressed_io.hpp"

namespace paragraph {
namespace {

using fuzz::FuzzHarness;
using fuzz::FuzzSummary;
using fuzz::FuzzerOptions;
using fuzz::HarnessOptions;
using fuzz::Mutation;
using fuzz::TraceFuzzer;
using trace::TraceBuffer;
using trace::TraceRecord;

std::string
tempDir()
{
    return std::filesystem::temp_directory_path().string();
}

bool
sameTrace(const TraceBuffer &a, const TraceBuffer &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (!(a[i] == b[i]))
            return false;
    return true;
}

/** Harness options sized for unit tests, with all file I/O in temp. */
HarnessOptions
smallHarness(uint64_t seed, uint64_t iters)
{
    HarnessOptions opt;
    opt.seed = seed;
    opt.iters = iters;
    opt.minLength = 32;
    opt.maxLength = 96;
    opt.reproDir = tempDir();
    opt.tempDir = tempDir();
    return opt;
}

TEST(TraceFuzzer, GenerationIsDeterministicPerSeed)
{
    FuzzerOptions opt;
    opt.seed = 42;
    opt.length = 300;
    TraceFuzzer a(opt), b(opt);
    // Successive draws from one fuzzer differ; the stream itself replays.
    TraceBuffer a1 = a.generate(), a2 = a.generate();
    TraceBuffer b1 = b.generate(), b2 = b.generate();
    EXPECT_TRUE(sameTrace(a1, b1));
    EXPECT_TRUE(sameTrace(a2, b2));
    EXPECT_FALSE(sameTrace(a1, a2));

    opt.seed = 43;
    TraceFuzzer c(opt);
    EXPECT_FALSE(sameTrace(a1, c.generate()));
}

TEST(TraceFuzzer, GeneratedTracesAreValid)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        FuzzerOptions opt;
        opt.seed = seed;
        opt.length = 400;
        TraceBuffer buf = TraceFuzzer(opt).generate();
        ASSERT_EQ(buf.size(), 400u);
        std::string why;
        EXPECT_TRUE(TraceFuzzer::validTrace(buf, &why))
            << "seed " << seed << ": " << why;
    }
}

TEST(TraceFuzzer, EveryMutationKeepsTracesValid)
{
    FuzzerOptions opt;
    opt.seed = 7;
    opt.length = 250;
    TraceFuzzer fuzzer(opt);
    TraceBuffer base = fuzzer.generate();
    for (unsigned m = 0; m < static_cast<unsigned>(Mutation::NumMutations);
         ++m) {
        for (uint64_t seed = 1; seed <= 4; ++seed) {
            Mutation applied = Mutation::NumMutations;
            TraceBuffer mutant = fuzzer.mutate(base, seed * 977 + m,
                                               &applied);
            EXPECT_NE(applied, Mutation::NumMutations);
            EXPECT_FALSE(mutant.empty());
            std::string why;
            EXPECT_TRUE(TraceFuzzer::validTrace(mutant, &why))
                << fuzz::mutationName(applied) << " seed " << seed << ": "
                << why;
        }
    }
}

TEST(TraceFuzzer, MutationIsDeterministicPerSeed)
{
    FuzzerOptions opt;
    opt.seed = 9;
    opt.length = 200;
    TraceFuzzer fuzzer(opt);
    TraceBuffer base = fuzzer.generate();
    Mutation m1, m2;
    TraceBuffer a = fuzzer.mutate(base, 1234, &m1);
    TraceBuffer b = fuzzer.mutate(base, 1234, &m2);
    EXPECT_EQ(m1, m2);
    EXPECT_TRUE(sameTrace(a, b));
}

TEST(FuzzHarnessTest, OracleIsCleanOnGeneratedTraces)
{
    FuzzSummary summary = FuzzHarness(smallHarness(1, 25)).run();
    EXPECT_FALSE(summary.failed) << summary.failure.property << ": "
                                 << summary.failure.report.summary();
    EXPECT_EQ(summary.itersCompleted, 25u);
    EXPECT_EQ(summary.tracesChecked, 25u);
    EXPECT_EQ(summary.mutantsChecked, 25u);
    EXPECT_GT(summary.recordsAnalyzed, 0u);
    EXPECT_GT(summary.roundTripChecks, 0u);
    EXPECT_GT(summary.fieldEditChecks, 0u);
    // The file-round-trip property only runs on sampled iterations, so the
    // per-check count may exclude it.
    EXPECT_GE(summary.propertiesChecked,
              fuzz::propertyCatalogue().size() - 1);
    EXPECT_LE(summary.propertiesChecked, fuzz::propertyCatalogue().size());
}

TEST(FuzzHarnessTest, ForcedFailureDumpsAndReplaysIdentically)
{
    HarnessOptions opt = smallHarness(11, 5);
    opt.oracle.forceFailure = true;
    FuzzHarness harness(opt);
    FuzzSummary summary = harness.run();
    ASSERT_TRUE(summary.failed);
    EXPECT_EQ(summary.failure.iteration, 0u); // fails immediately
    EXPECT_EQ(summary.failure.property, "self-test");
    ASSERT_FALSE(summary.failure.reproTracePath.empty());
    ASSERT_FALSE(summary.failure.reproConfigPath.empty());
    EXPECT_TRUE(std::filesystem::exists(summary.failure.reproTracePath));
    EXPECT_TRUE(std::filesystem::exists(summary.failure.reproConfigPath));

    // The acceptance criterion: replaying the dump reproduces the same
    // violation on the same stage.
    std::string stage, property;
    fuzz::OracleReport replayed = harness.replay(
        summary.failure.reproTracePath, summary.failure.reproConfigPath,
        &stage, &property);
    EXPECT_EQ(stage, summary.failure.stage);
    EXPECT_EQ(property, "self-test");
    ASSERT_FALSE(replayed.ok());
    bool found = false;
    for (const fuzz::Violation &v : replayed.violations)
        found = found || (v.property == property);
    EXPECT_TRUE(found) << replayed.summary();

    std::remove(summary.failure.reproTracePath.c_str());
    std::remove(summary.failure.reproConfigPath.c_str());
}

TEST(FuzzHarnessTest, MinimizerShrinksTheFailingTrace)
{
    HarnessOptions opt = smallHarness(13, 3);
    opt.oracle.forceFailure = true; // violates on every trace, so ddmin
    opt.minimize = true;            // can shrink all the way down
    FuzzSummary summary = FuzzHarness(opt).run();
    ASSERT_TRUE(summary.failed);
    EXPECT_GE(summary.failure.originalRecords, opt.minLength);
    EXPECT_LT(summary.failure.trace.size(), summary.failure.originalRecords);
    EXPECT_GE(summary.failure.trace.size(), 1u);

    std::remove(summary.failure.reproTracePath.c_str());
    std::remove(summary.failure.reproConfigPath.c_str());
}

TEST(FuzzHarnessTest, FieldEditRoundTripsThroughTheReader)
{
    FuzzerOptions opt;
    opt.seed = 21;
    opt.length = 120;
    TraceBuffer buf = TraceFuzzer(opt).generate();
    std::string path = tempDir() + "/para_fuzz_test_fieldedit.ptrc";
    TraceBuffer expected = fuzz::writeTraceWithFieldEdit(buf, path, 99);
    ASSERT_EQ(expected.size(), buf.size());
    EXPECT_FALSE(sameTrace(expected, buf)); // the edit changed something

    auto source = trace::openTraceFile(path);
    TraceBuffer got;
    TraceRecord rec;
    while (source->next(rec))
        got.push(rec);
    EXPECT_TRUE(sameTrace(got, expected));
    std::remove(path.c_str());
}

TEST(FuzzHarnessTest, SummaryJsonCarriesSchemaAndCounters)
{
    FuzzSummary clean = FuzzHarness(smallHarness(17, 4)).run();
    std::string doc = clean.toJson();
    EXPECT_NE(doc.find("\"schema\": \"paragraph-fuzz-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"iters_completed\": 4"), std::string::npos);
    EXPECT_NE(doc.find("\"failed\": false"), std::string::npos);
    EXPECT_EQ(doc.find("\"failure\""), std::string::npos);

    HarnessOptions opt = smallHarness(19, 2);
    opt.oracle.forceFailure = true;
    FuzzSummary failed = FuzzHarness(opt).run();
    std::string failedDoc = failed.toJson();
    EXPECT_NE(failedDoc.find("\"failed\": true"), std::string::npos);
    EXPECT_NE(failedDoc.find("\"failure\""), std::string::npos);
    EXPECT_NE(failedDoc.find("\"property\": \"self-test\""),
              std::string::npos);
    std::remove(failed.failure.reproTracePath.c_str());
    std::remove(failed.failure.reproConfigPath.c_str());
}

TEST(InvariantOracleTest, CatalogueDocumentsEveryProperty)
{
    const auto &catalogue = fuzz::propertyCatalogue();
    EXPECT_GE(catalogue.size(), 12u); // the issue's floor
    for (const fuzz::PropertyInfo &p : catalogue) {
        ASSERT_NE(p.name, nullptr);
        ASSERT_NE(p.derivation, nullptr);
        EXPECT_FALSE(std::string(p.name).empty());
        EXPECT_FALSE(std::string(p.derivation).empty()) << p.name;
    }
}

} // namespace
} // namespace paragraph
