// End-to-end tests of the `paragraph` CLI binary: spawn it like a user
// would and check outputs, including trace capture and re-analysis.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace {

std::string
cliPath()
{
    // The test binary runs from build/tests/<exe>; the CLI sits in
    // build/tools/paragraph. CMake passes the binary dir via compile def.
#ifdef PARAGRAPH_CLI_PATH
    return PARAGRAPH_CLI_PATH;
#else
    return "./build/tools/paragraph";
#endif
}

struct CliResult
{
    int status;
    std::string output;
};

CliResult
runCli(const std::string &args)
{
    std::string cmd = cliPath() + " " + args + " 2>&1";
    std::FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), pipe))
        out += buf;
    int status = pclose(pipe);
    return CliResult{status, out};
}

} // namespace

TEST(Cli, ListShowsAllWorkloads)
{
    CliResult r = runCli("--list");
    EXPECT_EQ(r.status, 0);
    for (const char *name : {"cc1", "fpppp", "matrix300", "xlisp"})
        EXPECT_NE(r.output.find(name), std::string::npos) << r.output;
}

TEST(Cli, AnalyzesAWorkload)
{
    CliResult r = runCli("--small xlisp");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("critical path"), std::string::npos);
    EXPECT_NE(r.output.find("avail. parallelism"), std::string::npos);
}

TEST(Cli, SwitchesChangeTheResult)
{
    CliResult full = runCli("--small tomcatv");
    CliResult norename = runCli("--small tomcatv --no-rename-stack");
    EXPECT_EQ(full.status, 0);
    EXPECT_EQ(norename.status, 0);
    EXPECT_NE(full.output, norename.output);
    EXPECT_NE(norename.output.find("storage-delayed ops"),
              std::string::npos);
}

TEST(Cli, PredictorFlagReportsBranches)
{
    CliResult r = runCli("--small cc1 --predictor=bimodal");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("mispredicted"), std::string::npos);
    EXPECT_NE(r.output.find("bimodal"), std::string::npos);
}

TEST(Cli, CaptureThenReanalyzeBothFormats)
{
    namespace fs = std::filesystem;
    std::string fixed = (fs::temp_directory_path() / "cli_cap.ptrc").string();
    std::string packed =
        (fs::temp_directory_path() / "cli_cap.ptrz").string();

    CliResult cap1 = runCli("--small xlisp --save-trace=" + fixed);
    CliResult cap2 = runCli("--small xlisp --save-trace=" + packed);
    EXPECT_EQ(cap1.status, 0);
    EXPECT_EQ(cap2.status, 0);
    ASSERT_TRUE(fs::exists(fixed));
    ASSERT_TRUE(fs::exists(packed));
    EXPECT_LT(fs::file_size(packed) * 3, fs::file_size(fixed));

    // Re-analyzing either file gives the same critical path as the live run.
    CliResult live = runCli("--small xlisp");
    CliResult from_fixed = runCli(fixed);
    CliResult from_packed = runCli(packed);
    auto extract_cp = [](const std::string &out) {
        size_t pos = out.find("critical path");
        EXPECT_NE(pos, std::string::npos);
        return out.substr(pos, out.find('\n', pos) - pos);
    };
    EXPECT_EQ(extract_cp(live.output), extract_cp(from_fixed.output));
    EXPECT_EQ(extract_cp(live.output), extract_cp(from_packed.output));
    fs::remove(fixed);
    fs::remove(packed);
}

TEST(Cli, DotOutputIsGraphviz)
{
    CliResult r = runCli("--small matrix300 --dot=20");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("digraph ddg"), std::string::npos);
    EXPECT_NE(r.output.find("->"), std::string::npos);
}

TEST(Cli, ProfileAndStorageOutputs)
{
    CliResult r =
        runCli("--small fpppp --profile --distributions --storage-profile");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("Ops/level"), std::string::npos);
    EXPECT_NE(r.output.find("value lifetimes"), std::string::npos);
    EXPECT_NE(r.output.find("live values"), std::string::npos);
}

TEST(Cli, HotProfileShowsDisassembly)
{
    CliResult r = runCli("--small matrix300 --hot=5");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("hot instructions"), std::string::npos);
    EXPECT_NE(r.output.find("% Dyn"), std::string::npos);
    EXPECT_NE(r.output.find("touched static sites"), std::string::npos);
}

TEST(Cli, BadArgumentsFailCleanly)
{
    EXPECT_NE(runCli("--bogus-flag xlisp").status, 0);
    EXPECT_NE(runCli("no-such-workload").status, 0);
    EXPECT_NE(runCli("").status, 0);
}
