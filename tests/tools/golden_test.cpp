// Golden end-to-end CLI snapshots: run the real `paragraph` and
// `paragraph-sweep` binaries on two fixed traces checked into
// tests/golden/ and compare their output byte-for-byte against checked-in
// golden files. Any change to summary formatting, profile bucketing,
// distribution rendering, or the sweep JSON document shows up here as a
// diff — intentional changes are blessed by re-running with
// PARAGRAPH_UPDATE_GOLDENS=1 and committing the refreshed goldens.
//
// The CLIs run with the golden directory as the working directory so the
// trace paths embedded in the output stay relative (and therefore
// machine-independent); `--no-timing` drops the only nondeterministic
// line.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

namespace {

std::string
goldenDir()
{
    return PARAGRAPH_GOLDEN_DIR;
}

bool
updateRequested()
{
    const char *env = std::getenv("PARAGRAPH_UPDATE_GOLDENS");
    return env && *env && std::string(env) != "0";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

/**
 * Run @p cli with @p args (cwd = tests/golden), capture the output file
 * named by @p producedPath, and compare it byte-for-byte to the golden.
 * With PARAGRAPH_UPDATE_GOLDENS set, rewrite the golden instead.
 */
void
checkGolden(const std::string &cli, const std::string &args,
            const std::string &goldenName, bool viaStdout)
{
    namespace fs = std::filesystem;
    std::string golden = goldenDir() + "/" + goldenName;
    std::string produced =
        (fs::temp_directory_path() / ("para_golden_" + goldenName)).string();
    std::remove(produced.c_str());

    std::string cmd = "cd " + goldenDir() + " && " + cli + " " + args;
    if (viaStdout)
        cmd += " > " + produced;
    else
        cmd += " --out=" + produced;
    cmd += " 2>/dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    std::string got = slurp(produced);
    EXPECT_FALSE(got.empty()) << cmd;

    if (updateRequested()) {
        std::ofstream out(golden, std::ios::binary);
        out << got;
        ASSERT_TRUE(out.good()) << "cannot update " << golden;
        std::remove(produced.c_str());
        GTEST_SKIP() << "golden " << goldenName << " updated";
    }

    EXPECT_EQ(got, slurp(golden))
        << "CLI output diverged from " << golden
        << "; if intentional, refresh with PARAGRAPH_UPDATE_GOLDENS=1 "
        << "and commit the new golden";
    std::remove(produced.c_str());
}

TEST(GoldenCli, Matrix300DefaultAnalysis)
{
    checkGolden(PARAGRAPH_CLI_PATH,
                "matrix300-600.ptrc --no-timing --profile --distributions",
                "matrix300-600.analysis.golden", /*viaStdout=*/true);
}

TEST(GoldenCli, XlispWindowedNoRenameWithBaseline)
{
    checkGolden(PARAGRAPH_CLI_PATH,
                "xlisp-800.ptrc --no-timing --window=32 --no-rename-regs "
                "--baseline --storage-profile",
                "xlisp-800.analysis.golden", /*viaStdout=*/true);
}

TEST(GoldenCli, SweepJsonDocument)
{
    checkGolden(PARAGRAPH_SWEEP_CLI_PATH,
                "--inputs=matrix300,xlisp --small --max=600 --windows=16,0 "
                "--no-timing --quiet --jobs=1",
                "sweep-small.golden", /*viaStdout=*/false);
}

TEST(GoldenCli, ExploreJsonDocument)
{
    // The frontier is seed-independent but the executed-cell set is not:
    // strip any PARAGRAPH_TEST_SEED override so the snapshot compares the
    // default exploration order.
    checkGolden(std::string("env -u PARAGRAPH_TEST_SEED ") +
                    PARAGRAPH_SWEEP_CLI_PATH,
                "--explore --inputs=matrix300,xlisp --small --max=600 "
                "--windows=4,16,64,0 --rename=none,data --fus=2,0 "
                "--no-timing --quiet --jobs=1",
                "explore-small.golden", /*viaStdout=*/false);
}

} // namespace
