// BlockPipeline edge cases: zero-record traces, traces that fit exactly one
// block, producer-thread exception propagation, and tearing the pipeline
// down while the producer is still mid-trace (cancel-by-destruction). The
// happy path is covered indirectly by the multi/sweep suites; these are the
// boundaries where double-buffering protocols typically break.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "support/panic.hpp"
#include "tests/core/trace_helpers.hpp"
#include "trace/block_pipeline.hpp"
#include "trace/buffer.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace {

using trace::BlockPipeline;
using trace::BufferSource;
using trace::TraceBuffer;
using trace::TraceRecord;

/** Streams a prefix of a buffer, then throws. */
class ThrowingSource : public trace::TraceSource
{
  public:
    ThrowingSource(const TraceBuffer &buf, size_t failAfter)
        : buf_(&buf), failAfter_(failAfter) {}

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= failAfter_)
            throw FatalError("record decode failed");
        if (pos_ >= buf_->size())
            return false;
        rec = (*buf_)[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

  private:
    const TraceBuffer *buf_;
    size_t failAfter_;
    size_t pos_ = 0;
};

/** Drain a pipeline, returning all records seen. */
std::vector<TraceRecord>
drain(BlockPipeline &pipe)
{
    std::vector<TraceRecord> out;
    const TraceRecord *block = nullptr;
    size_t n;
    while ((n = pipe.next(&block)) > 0)
        out.insert(out.end(), block, block + n);
    return out;
}

TEST(BlockPipeline, ZeroRecordTrace)
{
    TraceBuffer empty;
    BufferSource src(empty);
    BlockPipeline pipe(src);
    const TraceRecord *block = nullptr;
    EXPECT_EQ(pipe.next(&block), 0u);
    // End of trace is terminal, not a transient state.
    EXPECT_EQ(pipe.next(&block), 0u);
}

TEST(BlockPipeline, ExactlyOneBlock)
{
    const size_t blockRecords = 128;
    TraceBuffer buf = testhelpers::randomTrace(11, blockRecords);
    BufferSource src(buf);
    BlockPipeline::Options opt;
    opt.blockRecords = blockRecords;
    BlockPipeline pipe(src, opt);

    const TraceRecord *block = nullptr;
    size_t n = pipe.next(&block);
    EXPECT_EQ(n, blockRecords);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(block[i], buf[i]) << "record " << i;
    EXPECT_EQ(pipe.next(&block), 0u);
}

TEST(BlockPipeline, BlockBoundaryOffByOne)
{
    // One more / one fewer record than a whole number of blocks.
    for (size_t length : {size_t{127}, size_t{129}, size_t{256}, size_t{257}}) {
        TraceBuffer buf = testhelpers::randomTrace(12, length);
        BufferSource src(buf);
        BlockPipeline::Options opt;
        opt.blockRecords = 128;
        BlockPipeline pipe(src, opt);
        std::vector<TraceRecord> got = drain(pipe);
        ASSERT_EQ(got.size(), length);
        for (size_t i = 0; i < length; ++i)
            ASSERT_EQ(got[i], buf[i]) << "length " << length << " record "
                                      << i;
    }
}

TEST(BlockPipeline, MaxRecordsCapsMidBlock)
{
    TraceBuffer buf = testhelpers::randomTrace(13, 300);
    BufferSource src(buf);
    BlockPipeline::Options opt;
    opt.blockRecords = 128;
    opt.maxRecords = 200; // inside the second block
    BlockPipeline pipe(src, opt);
    std::vector<TraceRecord> got = drain(pipe);
    ASSERT_EQ(got.size(), 200u);
    for (size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], buf[i]) << "record " << i;
    // The capped pipeline must not have drained the source past its cap.
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec, buf[200]);
}

TEST(BlockPipeline, ProducerExceptionPropagates)
{
    TraceBuffer buf = testhelpers::randomTrace(14, 400);
    ThrowingSource src(buf, 300);
    BlockPipeline::Options opt;
    opt.blockRecords = 128;
    BlockPipeline pipe(src, opt);

    std::vector<TraceRecord> got;
    const TraceRecord *block = nullptr;
    bool threw = false;
    try {
        size_t n;
        while ((n = pipe.next(&block)) > 0)
            got.insert(got.end(), block, block + n);
    } catch (const FatalError &e) {
        threw = true;
        EXPECT_STREQ(e.what(), "record decode failed");
    }
    EXPECT_TRUE(threw);
    // Everything delivered before the failure must be intact.
    ASSERT_LE(got.size(), 300u);
    for (size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], buf[i]) << "record " << i;
}

TEST(BlockPipeline, ExceptionInFirstBlock)
{
    TraceBuffer buf = testhelpers::randomTrace(15, 100);
    ThrowingSource src(buf, 0);
    BlockPipeline pipe(src);
    const TraceRecord *block = nullptr;
    EXPECT_THROW(pipe.next(&block), FatalError);
}

TEST(BlockPipeline, DestructionMidTraceJoinsCleanly)
{
    // Consume one block of a many-block trace, then destroy the pipeline
    // while the producer still has work queued: the destructor must stop
    // and join without deadlock or touching freed state (ASan/TSan CI).
    TraceBuffer buf = testhelpers::randomTrace(16, 5000);
    BufferSource src(buf);
    BlockPipeline::Options opt;
    opt.blockRecords = 64;
    {
        BlockPipeline pipe(src, opt);
        const TraceRecord *block = nullptr;
        ASSERT_GT(pipe.next(&block), 0u);
    }
    // Destruction with zero next() calls at all.
    src.reset();
    {
        BlockPipeline pipe(src, opt);
    }
}

} // namespace
} // namespace paragraph
