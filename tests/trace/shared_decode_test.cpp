// SharedDecodePool: each 64K block of a mapped trace is decoded exactly
// once no matter how many cursors walk it — concurrently or in sequence —
// with an LRU keeping unreferenced blocks warm, trim() reclaiming them,
// and the v2 payload CRC verified eagerly at construction (random-access
// consumers may never reach the final block where the sequential reader
// checks it).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/panic.hpp"
#include "trace/file_io.hpp"
#include "trace/shared_decode.hpp"

using namespace paragraph;
using namespace paragraph::trace;

namespace {

std::string
tempPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() / stem).string();
}

TraceRecord
simpleRecord(unsigned i)
{
    TraceRecord rec;
    rec.cls = isa::OpClass::IntAlu;
    rec.createsValue = true;
    rec.dest = Operand::intReg(static_cast<uint8_t>(i % 32));
    rec.addSrc(Operand::intReg(static_cast<uint8_t>((i + 1) % 32)));
    rec.pc = 0x1000 + i;
    return rec;
}

void
writeTrace(const std::string &path, unsigned n)
{
    TraceFileWriter writer(path);
    for (unsigned i = 0; i < n; ++i)
        writer.write(simpleRecord(i));
    writer.close();
}

void
flipByte(const std::string &path, long offset)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    ASSERT_EQ(std::fclose(f), 0);
}

/** Walk one cursor to exhaustion; checks pc continuity, returns records. */
uint64_t
drainCursor(SharedDecodeCursor &cursor)
{
    uint64_t n = 0;
    const TraceRecord *records = nullptr;
    size_t got = 0;
    while ((got = cursor.next(&records)) != 0) {
        for (size_t i = 0; i < got; ++i)
            EXPECT_EQ(records[i].pc, 0x1000 + n + i);
        n += got;
    }
    return n;
}

class SharedDecode : public ::testing::Test
{
  protected:
    std::string path_;

    // Per-test file name: ctest runs each test as its own process, so
    // sibling tests of this fixture can be live at the same instant.
    void SetUp() override
    {
        path_ = tempPath(std::string("para_pool_") +
                         ::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name() +
                         ".ptrc");
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::shared_ptr<SharedDecodePool>
    makePool(unsigned records, SharedDecodePool::Options opt)
    {
        writeTrace(path_, records);
        return std::make_shared<SharedDecodePool>(
            std::make_shared<MmapTraceFile>(path_), opt);
    }
};

} // namespace

TEST_F(SharedDecode, SequentialCursorsDecodeEachBlockOnce)
{
    SharedDecodePool::Options opt;
    opt.blockRecords = 16;
    auto pool = makePool(100, opt); // 7 blocks, cache cap 8 holds them all
    EXPECT_EQ(pool->recordCount(), 100u);
    EXPECT_EQ(pool->blockCount(), 7u);

    SharedDecodeCursor first(pool), second(pool);
    EXPECT_EQ(drainCursor(first), 100u);
    EXPECT_EQ(drainCursor(second), 100u);
    EXPECT_EQ(pool->blocksDecoded(), 7u); // the whole point
}

TEST_F(SharedDecode, ConcurrentCursorsDecodeEachBlockOnce)
{
    SharedDecodePool::Options opt;
    opt.blockRecords = 16;
    auto pool = makePool(100, opt);

    std::vector<std::thread> threads;
    std::vector<uint64_t> seen(4, 0);
    for (size_t t = 0; t < seen.size(); ++t) {
        threads.emplace_back([&, t] {
            SharedDecodeCursor cursor(pool);
            seen[t] = drainCursor(cursor);
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (uint64_t n : seen)
        EXPECT_EQ(n, 100u);
    EXPECT_EQ(pool->blocksDecoded(), pool->blockCount());
}

TEST_F(SharedDecode, BlocksCarryCorrectBoundsAndContents)
{
    SharedDecodePool::Options opt;
    opt.blockRecords = 16;
    auto pool = makePool(50, opt);

    auto blk = pool->block(2);
    ASSERT_NE(blk, nullptr);
    EXPECT_EQ(blk->firstRecord, 32u);
    ASSERT_EQ(blk->records.size(), 16u);
    for (size_t i = 0; i < blk->records.size(); ++i)
        EXPECT_EQ(blk->records[i].pc, 0x1000 + 32 + i);

    auto tail = pool->block(3); // 50 = 3*16 + 2: a partial final block
    ASSERT_NE(tail, nullptr);
    EXPECT_EQ(tail->firstRecord, 48u);
    EXPECT_EQ(tail->records.size(), 2u);
}

TEST_F(SharedDecode, LruEvictsUnreferencedBlocksBeyondTheCap)
{
    SharedDecodePool::Options opt;
    opt.blockRecords = 16;
    opt.maxCachedBlocks = 2;
    auto pool = makePool(160, opt); // 10 blocks through a 2-block cache

    SharedDecodeCursor cursor(pool);
    EXPECT_EQ(drainCursor(cursor), 160u);
    EXPECT_EQ(pool->blocksDecoded(), 10u);
    EXPECT_LE(pool->cachedBlocks(), 3u); // cap + the one the cursor held

    // A second walk must re-decode what the LRU dropped.
    SharedDecodeCursor again(pool);
    EXPECT_EQ(drainCursor(again), 160u);
    EXPECT_GT(pool->blocksDecoded(), 10u);
}

TEST_F(SharedDecode, MaxRecordsClipsTheServedTrace)
{
    SharedDecodePool::Options opt;
    opt.blockRecords = 16;
    opt.maxRecords = 40;
    auto pool = makePool(100, opt);
    EXPECT_EQ(pool->recordCount(), 40u);
    EXPECT_EQ(pool->blockCount(), 3u); // 16 + 16 + 8

    SharedDecodeCursor cursor(pool);
    EXPECT_EQ(drainCursor(cursor), 40u);
    auto tail = pool->block(2);
    EXPECT_EQ(tail->records.size(), 8u);
}

TEST_F(SharedDecode, TrimDropsUnreferencedAndKeepsHeldBlocks)
{
    SharedDecodePool::Options opt;
    opt.blockRecords = 16;
    auto pool = makePool(100, opt);

    std::shared_ptr<const DecodedBlock> held = pool->block(0);
    SharedDecodeCursor cursor(pool);
    drainCursor(cursor);
    EXPECT_GT(pool->cachedBlocks(), 1u);

    pool->trim();
    EXPECT_EQ(pool->cachedBlocks(), 1u); // only the held block survives
    EXPECT_EQ(held->firstRecord, 0u);    // and stays readable

    held.reset();
    pool->trim();
    EXPECT_EQ(pool->cachedBlocks(), 0u);
    EXPECT_EQ(pool->cachedBytes(), 0u);
}

TEST_F(SharedDecode, PayloadCrcVerifiedEagerlyAtConstruction)
{
    writeTrace(path_, 100);
    // In-range bit flip: only the payload CRC can catch it, and the pool
    // must do so at construction, not at whatever block gets read last.
    flipByte(path_, static_cast<long>(sizeof(TraceFileHeader)) +
                        60 * static_cast<long>(sizeof(PackedRecord)) + 8);
    try {
        SharedDecodePool pool(std::make_shared<MmapTraceFile>(path_), {});
        FAIL() << "corrupt payload was accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("payload checksum"),
                  std::string::npos)
            << e.what();
    }

    // Opting out of the eager check serves the bytes as mapped (the flip
    // kept every field in range, so decode itself succeeds).
    SharedDecodePool::Options opt;
    opt.verifyPayload = false;
    auto pool = std::make_shared<SharedDecodePool>(
        std::make_shared<MmapTraceFile>(path_), opt);
    auto blk = pool->block(0);
    ASSERT_NE(blk, nullptr);
    EXPECT_EQ(blk->records.size(), pool->recordCount());
}
