// Tests for the two-pass last-use annotator (paper Section 3.2 method 1).
#include <gtest/gtest.h>

#include "support/flat_hash_map.hpp"
#include "support/prng.hpp"
#include "trace/buffer.hpp"
#include "trace/last_use.hpp"

using namespace paragraph;
using namespace paragraph::trace;

namespace {

TraceRecord
op(uint8_t dest, std::initializer_list<uint8_t> srcs)
{
    TraceRecord rec;
    rec.cls = isa::OpClass::IntAlu;
    rec.createsValue = dest != 0xff;
    for (uint8_t s : srcs)
        rec.addSrc(Operand::intReg(s));
    if (dest != 0xff)
        rec.dest = Operand::intReg(dest);
    return rec;
}

} // namespace

TEST(LastUse, SingleReadIsLastUse)
{
    TraceBuffer buf;
    buf.push(op(1, {}));     // def r1
    buf.push(op(2, {1}));    // only read of r1
    uint64_t marked = annotateLastUses(buf);
    EXPECT_EQ(marked, 1u);
    EXPECT_EQ(buf[0].lastUseMask, 0u);
    EXPECT_EQ(buf[1].lastUseMask, 1u);
}

TEST(LastUse, OnlyFinalReadMarked)
{
    TraceBuffer buf;
    buf.push(op(1, {}));
    buf.push(op(2, {1}));
    buf.push(op(3, {1}));
    buf.push(op(4, {1})); // last read of r1
    annotateLastUses(buf);
    EXPECT_EQ(buf[1].lastUseMask, 0u);
    EXPECT_EQ(buf[2].lastUseMask, 0u);
    EXPECT_EQ(buf[3].lastUseMask, 1u);
}

TEST(LastUse, RedefinitionSplitsLifetimes)
{
    TraceBuffer buf;
    buf.push(op(1, {}));   // def r1 (v1)
    buf.push(op(2, {1}));  // last read of v1
    buf.push(op(1, {}));   // def r1 (v2)
    buf.push(op(3, {1}));  // last read of v2
    annotateLastUses(buf);
    EXPECT_EQ(buf[1].lastUseMask, 1u);
    EXPECT_EQ(buf[3].lastUseMask, 1u);
}

TEST(LastUse, ReadAndWriteSameLocationInOneInstruction)
{
    // r1 <- r1 + 1: the read is the last use of the *old* value.
    TraceBuffer buf;
    buf.push(op(1, {}));
    buf.push(op(1, {1}));
    buf.push(op(2, {1}));
    annotateLastUses(buf);
    EXPECT_EQ(buf[1].lastUseMask, 1u); // old r1's last read
    EXPECT_EQ(buf[2].lastUseMask, 1u); // new r1's last read
}

TEST(LastUse, SecondOperandBitPosition)
{
    TraceBuffer buf;
    buf.push(op(1, {}));
    buf.push(op(2, {}));
    buf.push(op(3, {2, 1})); // last use of both; r1 in slot 1
    annotateLastUses(buf);
    EXPECT_EQ(buf[2].lastUseMask, 0b11u);
}

TEST(LastUse, DuplicateSourcesMarkOneSlot)
{
    TraceBuffer buf;
    buf.push(op(1, {}));
    buf.push(op(2, {1, 1}));
    annotateLastUses(buf);
    // Exactly one slot marked (the annotator's backward scan hits slot 0
    // first).
    EXPECT_EQ(buf[1].lastUseMask, 0b01u);
}

TEST(LastUse, PreExistingValuesGetMarked)
{
    // A location never written in the trace still has a last read.
    TraceBuffer buf;
    buf.push(op(2, {7}));
    buf.push(op(3, {7}));
    annotateLastUses(buf);
    EXPECT_EQ(buf[0].lastUseMask, 0u);
    EXPECT_EQ(buf[1].lastUseMask, 1u);
}

TEST(LastUse, MemoryLocations)
{
    TraceBuffer buf;
    TraceRecord store;
    store.cls = isa::OpClass::Store;
    store.createsValue = true;
    store.addSrc(Operand::intReg(1));
    store.dest = Operand::mem(0x100, Segment::Data);
    TraceRecord load;
    load.cls = isa::OpClass::Load;
    load.createsValue = true;
    load.addSrc(Operand::mem(0x100, Segment::Data));
    load.dest = Operand::intReg(2);
    buf.push(op(1, {}));
    buf.push(store);
    buf.push(load);
    annotateLastUses(buf);
    EXPECT_EQ(buf[2].lastUseMask, 1u); // the load is mem[0x100]'s last use
}

TEST(LastUse, ReannotationIsIdempotent)
{
    TraceBuffer buf;
    buf.push(op(1, {}));
    buf.push(op(2, {1}));
    uint64_t first = annotateLastUses(buf);
    uint64_t second = annotateLastUses(buf);
    EXPECT_EQ(first, second);
    EXPECT_EQ(buf[1].lastUseMask, 1u);
}

// Property: on a random trace, "marked last use" must mean "no later read of
// the same location before the next write".
TEST(LastUseProperty, NoReadsAfterMarkedLastUse)
{
    Prng prng(77);
    TraceBuffer buf;
    for (int i = 0; i < 5000; ++i) {
        uint8_t dest = static_cast<uint8_t>(1 + prng.nextBelow(8));
        uint8_t s1 = static_cast<uint8_t>(1 + prng.nextBelow(8));
        uint8_t s2 = static_cast<uint8_t>(1 + prng.nextBelow(8));
        buf.push(op(prng.nextBelow(4) ? dest : 0xff, {s1, s2}));
    }
    annotateLastUses(buf);

    for (size_t i = 0; i < buf.size(); ++i) {
        for (int s = 0; s < buf[i].numSrcs; ++s) {
            if (!(buf[i].lastUseMask & (1u << s)))
                continue;
            uint64_t key = locationKey(buf[i].srcs[s]);
            // If this instruction itself redefines the location, the old
            // value's lifetime ends here and later reads see the new value.
            if (buf[i].createsValue && locationKey(buf[i].dest) == key)
                continue;
            // Scan forward until the next write to this location: there
            // must be no intervening read.
            for (size_t j = i + 1; j < buf.size(); ++j) {
                if (buf[j].createsValue &&
                    locationKey(buf[j].dest) == key) {
                    break;
                }
                for (int t = 0; t < buf[j].numSrcs; ++t)
                    ASSERT_NE(locationKey(buf[j].srcs[t]), key)
                        << "read after last use at record " << i;
            }
        }
    }
}
