// Corruption-injection tests for trace ingestion: every damaged file must
// be rejected with a FatalError that locates the damage (file, record index,
// byte offset) — never a crash, never a silent success. Field damage is
// injected *under valid checksums* (crafted files) so the range validation
// itself is exercised, and separately *as raw byte flips* so the CRC layers
// are exercised.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "support/crc32.hpp"
#include "support/panic.hpp"
#include "trace/compressed_io.hpp"
#include "trace/file_io.hpp"

using namespace paragraph;
using namespace paragraph::trace;

namespace {

std::string
tempPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() / stem).string();
}

TraceRecord
simpleRecord(unsigned i)
{
    TraceRecord rec;
    rec.cls = isa::OpClass::IntAlu;
    rec.createsValue = true;
    rec.dest = Operand::intReg(static_cast<uint8_t>(i % 32));
    rec.addSrc(Operand::intReg(static_cast<uint8_t>((i + 1) % 32)));
    rec.pc = 0x1000 + i;
    return rec;
}

/** Write a well-formed 4-record v2 trace via the real writer. */
void
writeValidTrace(const std::string &path)
{
    TraceFileWriter writer(path);
    for (unsigned i = 0; i < 4; ++i)
        writer.write(simpleRecord(i));
    writer.close();
}

/**
 * Write a trace file by hand: an arbitrary header version and arbitrary
 * packed records, with checksums recomputed so they are *valid* for
 * whatever bytes the records hold. This is how field-validation tests
 * smuggle bad fields past the CRC layer.
 */
void
writeCraftedTrace(const std::string &path, uint32_t version,
                  const std::vector<PackedRecord> &records)
{
    TraceFileHeader hdr{traceFileMagic, version,
                        static_cast<uint64_t>(records.size()), 0, 0};
    if (version >= 2) {
        uint32_t crc = 0;
        for (const PackedRecord &p : records)
            crc = crc32Update(crc, &p, sizeof(p));
        hdr.payloadCrc = crc;
        hdr.headerCrc = traceHeaderCrc(hdr);
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(&hdr, sizeof(hdr), 1, f), 1u);
    for (const PackedRecord &p : records)
        ASSERT_EQ(std::fwrite(&p, sizeof(p), 1, f), 1u);
    ASSERT_EQ(std::fclose(f), 0);
}

void
flipByte(const std::string &path, long offset)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    ASSERT_EQ(std::fclose(f), 0);
}

void
truncateTo(const std::string &path, uintmax_t size)
{
    std::filesystem::resize_file(path, size);
}

/** Drain a reader; returns the error text if it threw, "" if it finished. */
std::string
readAllError(const std::string &path)
{
    try {
        TraceFileReader reader(path);
        TraceRecord rec;
        while (reader.next(rec)) {
        }
        return "";
    } catch (const FatalError &e) {
        return e.what();
    }
}

std::vector<PackedRecord>
packedRecords(unsigned n)
{
    std::vector<PackedRecord> out;
    for (unsigned i = 0; i < n; ++i)
        out.push_back(packRecord(simpleRecord(i)));
    return out;
}

class CorruptTrace : public ::testing::Test
{
  protected:
    std::string path_ = tempPath("para_corrupt.ptrc");

    void TearDown() override { std::remove(path_.c_str()); }
};

} // namespace

TEST_F(CorruptTrace, FlippedMagicRejected)
{
    writeValidTrace(path_);
    flipByte(path_, 0);
    std::string err = readAllError(path_);
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
}

TEST_F(CorruptTrace, FlippedVersionRejected)
{
    writeValidTrace(path_);
    flipByte(path_, 4); // version word: fails the range check (or, had the
                        // flip produced a valid version, the header CRC)
    std::string err = readAllError(path_);
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST_F(CorruptTrace, FlippedCountCaughtByHeaderCrc)
{
    writeValidTrace(path_);
    flipByte(path_, 8); // count word
    std::string err = readAllError(path_);
    EXPECT_NE(err.find("header checksum"), std::string::npos) << err;
}

TEST_F(CorruptTrace, PayloadBitFlipCaughtByPayloadCrc)
{
    writeValidTrace(path_);
    // Flip a bit inside record 2's operand id: every unpacked field stays
    // in range, so only the payload CRC can catch it.
    long offset = static_cast<long>(sizeof(TraceFileHeader)) +
                  2 * static_cast<long>(sizeof(PackedRecord)) + 8;
    flipByte(path_, offset);
    std::string err = readAllError(path_);
    EXPECT_NE(err.find("payload checksum"), std::string::npos) << err;
}

TEST_F(CorruptTrace, BadSourceCountRejectedWithLocation)
{
    std::vector<PackedRecord> recs = packedRecords(4);
    recs[1].numSrcs = 7; // > maxSrcs, smuggled under a valid CRC
    writeCraftedTrace(path_, traceFileVersion, recs);
    std::string err = readAllError(path_);
    EXPECT_NE(err.find("source count"), std::string::npos) << err;
    EXPECT_NE(err.find("record 1"), std::string::npos) << err;
    EXPECT_NE(err.find("offset"), std::string::npos) << err;
}

TEST_F(CorruptTrace, BadOperandKindRejectedWithLocation)
{
    std::vector<PackedRecord> recs = packedRecords(4);
    recs[2].operandKinds[0] = 0x0f; // kind 15: no such Operand::Kind
    writeCraftedTrace(path_, traceFileVersion, recs);
    std::string err = readAllError(path_);
    EXPECT_NE(err.find("operand kind"), std::string::npos) << err;
    EXPECT_NE(err.find("record 2"), std::string::npos) << err;
}

TEST_F(CorruptTrace, BadOperandSegmentRejectedWithLocation)
{
    std::vector<PackedRecord> recs = packedRecords(4);
    recs[0].operandKinds[3] |= 0x70; // segment 7: no such Segment
    writeCraftedTrace(path_, traceFileVersion, recs);
    std::string err = readAllError(path_);
    EXPECT_NE(err.find("segment"), std::string::npos) << err;
    EXPECT_NE(err.find("record 0"), std::string::npos) << err;
}

TEST_F(CorruptTrace, BadOpClassRejectedWithLocation)
{
    std::vector<PackedRecord> recs = packedRecords(4);
    recs[3].cls = 0xc8;
    writeCraftedTrace(path_, traceFileVersion, recs);
    std::string err = readAllError(path_);
    EXPECT_NE(err.find("operation class"), std::string::npos) << err;
    EXPECT_NE(err.find("record 3"), std::string::npos) << err;
}

TEST_F(CorruptTrace, TruncationMidRecordRejectedWithLocation)
{
    writeValidTrace(path_);
    truncateTo(path_, sizeof(TraceFileHeader) + sizeof(PackedRecord) +
                          sizeof(PackedRecord) / 2);
    std::string err = readAllError(path_);
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;
    EXPECT_NE(err.find("record 1"), std::string::npos) << err;
}

TEST_F(CorruptTrace, V1FilesStillReadWithoutChecksums)
{
    // A v1 header carries zeros where v2 keeps its CRCs; the reader must
    // accept it (warning only) and deliver every record.
    writeCraftedTrace(path_, 1, packedRecords(4));
    TraceFileReader reader(path_);
    EXPECT_EQ(reader.formatVersion(), 1u);
    EXPECT_EQ(reader.recordCount(), 4u);
    TraceRecord rec;
    size_t n = 0;
    while (reader.next(rec))
        ++n;
    EXPECT_EQ(n, 4u);
}

TEST_F(CorruptTrace, RoundTripAfterResetVerifiesCrcTwice)
{
    writeValidTrace(path_);
    TraceFileReader reader(path_);
    TraceRecord rec;
    size_t n = 0;
    while (reader.next(rec))
        ++n;
    EXPECT_EQ(n, 4u);
    reader.reset(); // running CRC must restart with the stream
    n = 0;
    while (reader.next(rec))
        ++n;
    EXPECT_EQ(n, 4u);
}

TEST_F(CorruptTrace, WriterCloseReportsFullDisk)
{
    if (!std::filesystem::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    TraceFileWriter writer("/dev/full");
    writer.write(simpleRecord(0));
    // The record fits in stdio's buffer; the loss only surfaces at flush
    // time, which close() must check rather than swallow.
    EXPECT_THROW(writer.close(), FatalError);
}

TEST(CorruptCompressedTrace, BadOperandTagRejectedWithLocation)
{
    std::string path = tempPath("para_corrupt.ptrz");
    {
        CompressedTraceWriter writer(path);
        for (unsigned i = 0; i < 4; ++i) {
            TraceRecord rec = simpleRecord(i);
            rec.addSrc(Operand::mem(0x8000 + i * 8, Segment::Heap));
            writer.write(rec);
        }
        writer.close();
    }
    // Record 0 encodes as head+ops (2), pc delta varint (2), int-reg
    // source (2), then the heap operand's tag byte; swap in an undefined
    // tag value (operand tags are 0..4).
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    long offset = 24 + 2 + 2 + 2;
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    ASSERT_EQ(std::fgetc(f), 3); // tagMemHeap
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(9, f);
    ASSERT_EQ(std::fclose(f), 0);

    CompressedTraceReader reader(path);
    TraceRecord rec;
    try {
        while (reader.next(rec)) {
        }
        FAIL() << "corrupt tag was accepted";
    } catch (const FatalError &e) {
        std::string err = e.what();
        EXPECT_NE(err.find("operand tag"), std::string::npos) << err;
        EXPECT_NE(err.find("record 0"), std::string::npos) << err;
        EXPECT_NE(err.find("offset"), std::string::npos) << err;
    }
    std::remove(path.c_str());
}

TEST(CorruptCompressedTrace, TruncationRejectedWithLocation)
{
    std::string path = tempPath("para_trunc.ptrz");
    uint64_t fullSize = 0;
    {
        CompressedTraceWriter writer(path);
        for (unsigned i = 0; i < 8; ++i)
            writer.write(simpleRecord(i));
        writer.close();
        fullSize = 24 + writer.bytesWritten();
    }
    std::filesystem::resize_file(path, fullSize - 3);
    CompressedTraceReader reader(path);
    TraceRecord rec;
    try {
        while (reader.next(rec)) {
        }
        FAIL() << "truncated stream was accepted";
    } catch (const FatalError &e) {
        std::string err = e.what();
        EXPECT_NE(err.find("truncated"), std::string::npos) << err;
        EXPECT_NE(err.find("record"), std::string::npos) << err;
    }
    std::remove(path.c_str());
}
