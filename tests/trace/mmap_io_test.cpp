// MmapTraceSource is documented as byte-for-byte reader-equivalent: same
// records, same FatalError conditions in the same order with the same
// texts, same v1 fallback. These tests hold it to that — every failure
// case drains both a TraceFileReader and an MmapTraceSource over the same
// file and compares the *exact* error strings, and the happy path packs
// every record from both and memcmps them over the checked-in golden
// trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "support/crc32.hpp"
#include "support/panic.hpp"
#include "trace/file_io.hpp"
#include "trace/mmap_io.hpp"

using namespace paragraph;
using namespace paragraph::trace;

namespace {

std::string
tempPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() / stem).string();
}

TraceRecord
simpleRecord(unsigned i)
{
    TraceRecord rec;
    rec.cls = isa::OpClass::IntAlu;
    rec.createsValue = true;
    rec.dest = Operand::intReg(static_cast<uint8_t>(i % 32));
    rec.addSrc(Operand::intReg(static_cast<uint8_t>((i + 1) % 32)));
    rec.pc = 0x1000 + i;
    return rec;
}

void
writeValidTrace(const std::string &path, unsigned n = 4)
{
    TraceFileWriter writer(path);
    for (unsigned i = 0; i < n; ++i)
        writer.write(simpleRecord(i));
    writer.close();
}

/** Crafted file: arbitrary version, checksums valid for the given bytes. */
void
writeCraftedTrace(const std::string &path, uint32_t version,
                  const std::vector<PackedRecord> &records)
{
    TraceFileHeader hdr{traceFileMagic, version,
                        static_cast<uint64_t>(records.size()), 0, 0};
    if (version >= 2) {
        uint32_t crc = 0;
        for (const PackedRecord &p : records)
            crc = crc32Update(crc, &p, sizeof(p));
        hdr.payloadCrc = crc;
        hdr.headerCrc = traceHeaderCrc(hdr);
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(&hdr, sizeof(hdr), 1, f), 1u);
    for (const PackedRecord &p : records)
        ASSERT_EQ(std::fwrite(&p, sizeof(p), 1, f), 1u);
    ASSERT_EQ(std::fclose(f), 0);
}

void
flipByte(const std::string &path, long offset)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    ASSERT_EQ(std::fclose(f), 0);
}

/** Open + drain via TraceFileReader; "" on success, the error text else. */
std::string
readerError(const std::string &path)
{
    try {
        TraceFileReader reader(path);
        TraceRecord rec;
        while (reader.next(rec)) {
        }
        return "";
    } catch (const FatalError &e) {
        return e.what();
    }
}

/** Same drain via mmap. */
std::string
mmapError(const std::string &path)
{
    try {
        auto file = std::make_shared<MmapTraceFile>(path);
        MmapTraceSource src(file);
        TraceRecord rec;
        while (src.next(rec)) {
        }
        return "";
    } catch (const FatalError &e) {
        return e.what();
    }
}

class MmapTrace : public ::testing::Test
{
  protected:
    std::string path_;

    // Per-test file name: ctest runs each test as its own process, so
    // sibling tests of this fixture can be live at the same instant.
    void SetUp() override
    {
        path_ = tempPath(std::string("para_mmap_") +
                         ::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name() +
                         ".ptrc");
    }

    void TearDown() override { std::remove(path_.c_str()); }
};

} // namespace

TEST(MmapGolden, PacksIdenticallyToReaderOverGoldenTrace)
{
    std::string golden =
        std::string(PARAGRAPH_GOLDEN_DIR) + "/xlisp-800.ptrc";

    TraceFileReader reader(golden);
    auto file = std::make_shared<MmapTraceFile>(golden);
    EXPECT_EQ(file->recordCount(), reader.recordCount());
    EXPECT_EQ(file->formatVersion(), reader.formatVersion());
    EXPECT_EQ(file->availableRecords(), file->recordCount());

    MmapTraceSource src(file);
    TraceRecord fromReader, fromMmap;
    uint64_t n = 0;
    while (reader.next(fromReader)) {
        ASSERT_TRUE(src.next(fromMmap)) << "mmap ran short at record " << n;
        PackedRecord a = packRecord(fromReader);
        PackedRecord b = packRecord(fromMmap);
        ASSERT_EQ(std::memcmp(&a, &b, sizeof(a)), 0)
            << "record " << n << " differs";
        ++n;
    }
    EXPECT_FALSE(src.next(fromMmap)) << "mmap ran long";
    EXPECT_EQ(n, reader.recordCount());
}

TEST(MmapGolden, BatchedAndSingleReadsAgree)
{
    std::string golden =
        std::string(PARAGRAPH_GOLDEN_DIR) + "/xlisp-800.ptrc";
    auto file = std::make_shared<MmapTraceFile>(golden);
    MmapTraceSource one(file), many(file);

    std::vector<TraceRecord> batch(257); // deliberately not a divisor
    TraceRecord rec;
    uint64_t n = 0;
    for (;;) {
        size_t got = many.nextBatch(batch.data(), batch.size());
        if (got == 0)
            break;
        for (size_t i = 0; i < got; ++i) {
            ASSERT_TRUE(one.next(rec));
            PackedRecord a = packRecord(rec);
            PackedRecord b = packRecord(batch[i]);
            ASSERT_EQ(std::memcmp(&a, &b, sizeof(a)), 0)
                << "record " << (n + i) << " differs";
        }
        n += got;
    }
    EXPECT_FALSE(one.next(rec));
    EXPECT_EQ(n, file->recordCount());
}

TEST_F(MmapTrace, MissingFileErrorMatchesReader)
{
    std::string err = mmapError(path_);
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(err, readerError(path_));
}

TEST_F(MmapTrace, EmptyFileErrorMatchesReader)
{
    std::fclose(std::fopen(path_.c_str(), "wb"));
    std::string err = mmapError(path_);
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(err, readerError(path_));
}

TEST_F(MmapTrace, TruncatedHeaderErrorMatchesReader)
{
    writeValidTrace(path_);
    std::filesystem::resize_file(path_, sizeof(TraceFileHeader) / 2);
    std::string err = mmapError(path_);
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(err, readerError(path_));
}

TEST_F(MmapTrace, BadMagicErrorMatchesReader)
{
    writeValidTrace(path_);
    flipByte(path_, 0);
    std::string err = mmapError(path_);
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
    EXPECT_EQ(err, readerError(path_));
}

TEST_F(MmapTrace, HeaderCrcErrorMatchesReader)
{
    writeValidTrace(path_);
    flipByte(path_, 8); // count word, caught by the header CRC
    std::string err = mmapError(path_);
    EXPECT_NE(err.find("header checksum"), std::string::npos) << err;
    EXPECT_EQ(err, readerError(path_));
}

TEST_F(MmapTrace, TruncatedPayloadLocatedLikeReader)
{
    writeValidTrace(path_);
    std::filesystem::resize_file(path_, sizeof(TraceFileHeader) +
                                            sizeof(PackedRecord) +
                                            sizeof(PackedRecord) / 2);
    // The header still promises 4 records; only 1 is fully backed by bytes.
    auto file = std::make_shared<MmapTraceFile>(path_);
    EXPECT_EQ(file->recordCount(), 4u);
    EXPECT_EQ(file->availableRecords(), 1u);

    std::string err = mmapError(path_);
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;
    EXPECT_NE(err.find("record 1"), std::string::npos) << err;
    EXPECT_EQ(err, readerError(path_));
}

TEST_F(MmapTrace, PayloadCrcMismatchAtEndOfStreamMatchesReader)
{
    writeValidTrace(path_);
    // Flip a bit that keeps every field in range: only the payload CRC,
    // checked when the stream is drained to its end, can catch it.
    flipByte(path_, static_cast<long>(sizeof(TraceFileHeader)) +
                        2 * static_cast<long>(sizeof(PackedRecord)) + 8);
    std::string err = mmapError(path_);
    EXPECT_NE(err.find("payload checksum"), std::string::npos) << err;
    EXPECT_EQ(err, readerError(path_));
}

TEST_F(MmapTrace, CorruptFieldLocatedLikeReader)
{
    std::vector<PackedRecord> recs;
    for (unsigned i = 0; i < 4; ++i)
        recs.push_back(packRecord(simpleRecord(i)));
    recs[2].numSrcs = 7; // > maxSrcs, smuggled under a valid CRC
    writeCraftedTrace(path_, traceFileVersion, recs);
    std::string err = mmapError(path_);
    EXPECT_NE(err.find("source count"), std::string::npos) << err;
    EXPECT_NE(err.find("record 2"), std::string::npos) << err;
    EXPECT_EQ(err, readerError(path_));
}

TEST_F(MmapTrace, V1FilesStillReadWithoutChecksums)
{
    std::vector<PackedRecord> recs;
    for (unsigned i = 0; i < 4; ++i)
        recs.push_back(packRecord(simpleRecord(i)));
    writeCraftedTrace(path_, 1, recs);

    auto file = std::make_shared<MmapTraceFile>(path_);
    EXPECT_EQ(file->formatVersion(), 1u);
    EXPECT_EQ(file->recordCount(), 4u);
    MmapTraceSource src(file);
    TraceRecord rec;
    size_t n = 0;
    while (src.next(rec))
        ++n;
    EXPECT_EQ(n, 4u);
}

TEST_F(MmapTrace, ResetReplaysTheStreamWithCrcIntact)
{
    writeValidTrace(path_, 8);
    auto file = std::make_shared<MmapTraceFile>(path_);
    MmapTraceSource src(file);
    TraceRecord rec;
    size_t n = 0;
    while (src.next(rec))
        ++n;
    EXPECT_EQ(n, 8u);
    src.reset(); // running payload CRC must restart with the stream
    n = 0;
    while (src.next(rec))
        ++n;
    EXPECT_EQ(n, 8u);
}

TEST_F(MmapTrace, TryOpenValidatesLikeTheConstructor)
{
    writeValidTrace(path_);
    auto ok = MmapTraceFile::tryOpen(path_);
    ASSERT_NE(ok, nullptr);
    EXPECT_EQ(ok->recordCount(), 4u);
    EXPECT_NE(ok->packed(0), nullptr);

    flipByte(path_, 0);
    EXPECT_THROW(MmapTraceFile::tryOpen(path_), FatalError);
}
