// Tests for the binary trace file format.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "support/panic.hpp"
#include "support/prng.hpp"
#include "trace/buffer.hpp"
#include "trace/file_io.hpp"

using namespace paragraph;
using namespace paragraph::trace;

namespace {

std::string
tempPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() / stem).string();
}

TraceRecord
randomRecord(Prng &prng)
{
    TraceRecord rec;
    rec.cls = static_cast<isa::OpClass>(prng.nextBelow(isa::numOpClasses));
    rec.createsValue = prng.nextBelow(2) != 0;
    rec.isSysCall = prng.nextBelow(16) == 0;
    rec.pc = prng.next();
    int nsrcs = static_cast<int>(prng.nextBelow(4));
    for (int i = 0; i < nsrcs; ++i) {
        if (prng.nextBelow(2)) {
            rec.addSrc(Operand::intReg(
                static_cast<uint8_t>(prng.nextBelow(32))));
        } else {
            rec.addSrc(Operand::mem(prng.nextBelow(1u << 30),
                                    static_cast<Segment>(
                                        1 + prng.nextBelow(3))));
        }
    }
    if (rec.createsValue)
        rec.dest = Operand::intReg(static_cast<uint8_t>(prng.nextBelow(32)));
    rec.lastUseMask = static_cast<uint8_t>(prng.nextBelow(8));
    return rec;
}

} // namespace

TEST(PackedRecord, RoundTripsEveryField)
{
    Prng prng(11);
    for (int i = 0; i < 1000; ++i) {
        TraceRecord rec = randomRecord(prng);
        TraceRecord back = unpackRecord(packRecord(rec));
        EXPECT_EQ(rec, back);
    }
}

TEST(TraceFile, WriteThenReadBack)
{
    std::string path = tempPath("para_trace_rt.ptrc");
    Prng prng(22);
    TraceBuffer buffer;
    for (int i = 0; i < 500; ++i)
        buffer.push(randomRecord(prng));

    {
        TraceFileWriter writer(path);
        BufferSource src(buffer);
        EXPECT_EQ(writer.writeAll(src), 500u);
        writer.close();
    }

    TraceFileReader reader(path);
    EXPECT_EQ(reader.recordCount(), 500u);
    TraceRecord rec;
    for (size_t i = 0; i < buffer.size(); ++i) {
        ASSERT_TRUE(reader.next(rec));
        EXPECT_EQ(rec, buffer[i]) << "record " << i;
    }
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(TraceFile, ResetReplaysFromStart)
{
    std::string path = tempPath("para_trace_reset.ptrc");
    {
        TraceFileWriter writer(path);
        TraceRecord rec;
        rec.cls = isa::OpClass::IntAlu;
        rec.createsValue = true;
        rec.dest = Operand::intReg(9);
        writer.write(rec);
        rec.dest = Operand::intReg(10);
        writer.write(rec);
    }
    TraceFileReader reader(path);
    TraceRecord rec;
    ASSERT_TRUE(reader.next(rec));
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.dest.id, 10u);
    reader.reset();
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.dest.id, 9u);
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyFileHasZeroRecords)
{
    std::string path = tempPath("para_trace_empty.ptrc");
    {
        TraceFileWriter writer(path);
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.recordCount(), 0u);
    TraceRecord rec;
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_THROW(TraceFileReader("/nonexistent/dir/file.ptrc"), FatalError);
}

TEST(TraceFile, BadMagicRejected)
{
    std::string path = tempPath("para_trace_bad.ptrc");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char junk[64] = "this is not a trace file at all";
        std::fwrite(junk, 1, sizeof(junk), f);
        std::fclose(f);
    }
    EXPECT_THROW(TraceFileReader reader(path), FatalError);
    std::remove(path.c_str());
}

TEST(TraceFile, TruncatedHeaderRejected)
{
    std::string path = tempPath("para_trace_short.ptrc");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char tiny[4] = {1, 2, 3, 4};
        std::fwrite(tiny, 1, sizeof(tiny), f);
        std::fclose(f);
    }
    EXPECT_THROW(TraceFileReader reader(path), FatalError);
    std::remove(path.c_str());
}

TEST(TraceFile, WriterDestructorFinalizesHeader)
{
    std::string path = tempPath("para_trace_dtor.ptrc");
    {
        TraceFileWriter writer(path);
        TraceRecord rec;
        rec.cls = isa::OpClass::Store;
        writer.write(rec);
        // no explicit close(): destructor must finalize the count
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.recordCount(), 1u);
    std::remove(path.c_str());
}
