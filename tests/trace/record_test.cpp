// Tests for TraceRecord, Operand, location keys, TraceBuffer, TraceStats.
#include <gtest/gtest.h>

#include <set>

#include "trace/buffer.hpp"
#include "trace/record.hpp"
#include "trace/stats.hpp"

using namespace paragraph;
using namespace paragraph::trace;

TEST(Operand, Factories)
{
    Operand r = Operand::intReg(5);
    EXPECT_EQ(r.kind, Operand::Kind::IntReg);
    EXPECT_EQ(r.id, 5u);
    EXPECT_TRUE(r.valid());
    EXPECT_FALSE(r.isMem());

    Operand f = Operand::fpReg(12);
    EXPECT_EQ(f.kind, Operand::Kind::FpReg);

    Operand m = Operand::mem(0x1000, Segment::Stack);
    EXPECT_TRUE(m.isMem());
    EXPECT_EQ(m.seg, Segment::Stack);

    Operand none;
    EXPECT_FALSE(none.valid());
}

TEST(Operand, LocationKeysNeverCollideAcrossNamespaces)
{
    std::set<uint64_t> keys;
    for (uint8_t r = 0; r < 32; ++r) {
        keys.insert(locationKey(Operand::intReg(r)));
        keys.insert(locationKey(Operand::fpReg(r)));
    }
    // Memory addresses equal to small register indices must not collide.
    for (uint64_t a = 0; a < 32; ++a)
        keys.insert(locationKey(Operand::mem(a, Segment::Data)));
    EXPECT_EQ(keys.size(), 32u * 3);
}

TEST(Operand, SameMemDifferentSegmentSameKey)
{
    // The key identifies the *location*; the segment only drives renaming.
    EXPECT_EQ(locationKey(Operand::mem(0x10, Segment::Data)),
              locationKey(Operand::mem(0x10, Segment::Stack)));
}

TEST(TraceRecord, AddSrcCapsAtThree)
{
    TraceRecord rec;
    for (int i = 0; i < 5; ++i)
        rec.addSrc(Operand::intReg(static_cast<uint8_t>(i + 1)));
    EXPECT_EQ(rec.numSrcs, 3);
}

TEST(TraceRecord, AddSrcIgnoresInvalid)
{
    TraceRecord rec;
    rec.addSrc(Operand{});
    EXPECT_EQ(rec.numSrcs, 0);
}

TEST(TraceRecord, ToStringMentionsParts)
{
    TraceRecord rec;
    rec.cls = isa::OpClass::Load;
    rec.addSrc(Operand::mem(0x2000, Segment::Heap));
    rec.dest = Operand::intReg(8);
    rec.createsValue = true;
    std::string s = toString(rec);
    EXPECT_NE(s.find("t0"), std::string::npos);
    EXPECT_NE(s.find("heap"), std::string::npos);
    EXPECT_NE(s.find("Load"), std::string::npos);
}

TEST(SegmentNames, AllDistinct)
{
    EXPECT_STREQ(segmentName(Segment::Data), "data");
    EXPECT_STREQ(segmentName(Segment::Heap), "heap");
    EXPECT_STREQ(segmentName(Segment::Stack), "stack");
    EXPECT_STREQ(segmentName(Segment::None), "none");
}

namespace {

TraceRecord
simpleAlu(uint8_t dest, uint8_t s1, uint8_t s2)
{
    TraceRecord rec;
    rec.cls = isa::OpClass::IntAlu;
    rec.createsValue = true;
    rec.addSrc(Operand::intReg(s1));
    rec.addSrc(Operand::intReg(s2));
    rec.dest = Operand::intReg(dest);
    return rec;
}

} // namespace

TEST(BufferSource, ReplaysAndResets)
{
    TraceBuffer buffer;
    buffer.push(simpleAlu(1, 2, 3));
    buffer.push(simpleAlu(4, 1, 1));
    BufferSource src(buffer, "test");
    EXPECT_EQ(src.name(), "test");

    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.dest.id, 1u);
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.dest.id, 4u);
    EXPECT_FALSE(src.next(rec));

    src.reset();
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.dest.id, 1u);
}

TEST(TraceBuffer, CaptureDrainsSource)
{
    TraceBuffer original;
    for (int i = 0; i < 10; ++i)
        original.push(simpleAlu(1, 2, 3));
    BufferSource src(original);
    TraceBuffer copy;
    copy.capture(src);
    EXPECT_EQ(copy.size(), 10u);
    TraceRecord rec;
    EXPECT_FALSE(src.next(rec)); // drained
}

TEST(TraceStats, CountsClassesAndSegments)
{
    TraceStats stats;

    TraceRecord load;
    load.cls = isa::OpClass::Load;
    load.createsValue = true;
    load.addSrc(Operand::mem(0x100, Segment::Stack));
    load.dest = Operand::intReg(1);
    stats.add(load);

    TraceRecord store;
    store.cls = isa::OpClass::Store;
    store.createsValue = true;
    store.addSrc(Operand::intReg(1));
    store.dest = Operand::mem(0x10000000, Segment::Data);
    stats.add(store);

    TraceRecord branch;
    branch.cls = isa::OpClass::Control;
    branch.addSrc(Operand::intReg(1));
    stats.add(branch);

    TraceRecord sys;
    sys.cls = isa::OpClass::SysCall;
    sys.isSysCall = true;
    stats.add(sys);

    TraceRecord fmul;
    fmul.cls = isa::OpClass::FpMul;
    fmul.createsValue = true;
    stats.add(fmul);

    EXPECT_EQ(stats.totalInstructions, 5u);
    EXPECT_EQ(stats.valueCreating, 3u);
    EXPECT_EQ(stats.controlInstructions, 1u);
    EXPECT_EQ(stats.sysCalls, 1u);
    EXPECT_EQ(stats.loads, 1u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_EQ(stats.stackAccesses, 1u);
    EXPECT_EQ(stats.dataAccesses, 1u);
    EXPECT_DOUBLE_EQ(stats.fpFraction(), 1.0 / 5.0);
    EXPECT_DOUBLE_EQ(stats.instructionsPerSysCall(), 5.0);
}

TEST(TraceStats, NoSysCallsGivesZeroRate)
{
    TraceStats stats;
    stats.add(simpleAlu(1, 2, 3));
    EXPECT_DOUBLE_EQ(stats.instructionsPerSysCall(), 0.0);
    EXPECT_DOUBLE_EQ(stats.fpFraction(), 0.0);
}

TEST(TraceStats, CollectFromSource)
{
    TraceBuffer buffer;
    for (int i = 0; i < 7; ++i)
        buffer.push(simpleAlu(1, 2, 3));
    BufferSource src(buffer);
    TraceStats stats = TraceStats::collect(src);
    EXPECT_EQ(stats.totalInstructions, 7u);
}
