// Tests for the compressed (v2) trace file format.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "support/panic.hpp"
#include "support/prng.hpp"
#include "trace/buffer.hpp"
#include "trace/compressed_io.hpp"
#include "trace/file_io.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;
using namespace paragraph::trace;

namespace {

std::string
tempPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() / stem).string();
}

TraceRecord
randomRecord(Prng &prng, uint64_t pc)
{
    TraceRecord rec;
    rec.cls = static_cast<isa::OpClass>(prng.nextBelow(isa::numOpClasses));
    rec.createsValue = prng.nextBelow(2) != 0;
    rec.isSysCall = prng.nextBelow(32) == 0;
    rec.isCondBranch = prng.nextBelow(8) == 0;
    rec.branchTaken = rec.isCondBranch && prng.nextBelow(2) != 0;
    rec.pc = pc;
    rec.lastUseMask = static_cast<uint8_t>(prng.nextBelow(8));
    int nsrcs = static_cast<int>(prng.nextBelow(4));
    for (int i = 0; i < nsrcs; ++i) {
        switch (prng.nextBelow(3)) {
          case 0:
            rec.addSrc(Operand::intReg(
                static_cast<uint8_t>(prng.nextBelow(32))));
            break;
          case 1:
            rec.addSrc(Operand::fpReg(
                static_cast<uint8_t>(prng.nextBelow(32))));
            break;
          default:
            rec.addSrc(Operand::mem(
                0x10000000 + 4 * prng.nextBelow(1 << 20),
                static_cast<Segment>(1 + prng.nextBelow(3))));
            break;
        }
    }
    if (rec.createsValue) {
        if (prng.nextBelow(4) == 0) {
            rec.dest = Operand::mem(0x7fff0000 - 8 * prng.nextBelow(1 << 12),
                                    Segment::Stack);
        } else {
            rec.dest =
                Operand::intReg(static_cast<uint8_t>(prng.nextBelow(32)));
        }
    }
    return rec;
}

} // namespace

TEST(CompressedTrace, RoundTripsRandomRecords)
{
    std::string path = tempPath("para_ctrace_rt.ptrz");
    Prng prng(5);
    TraceBuffer buf;
    uint64_t pc = 100;
    for (int i = 0; i < 3000; ++i) {
        // Mostly sequential pcs with occasional jumps, like a real trace.
        pc = prng.nextBelow(8) ? pc + 1 : prng.nextBelow(1 << 20);
        buf.push(randomRecord(prng, pc));
    }
    {
        CompressedTraceWriter writer(path);
        BufferSource src(buf);
        EXPECT_EQ(writer.writeAll(src), buf.size());
    }
    CompressedTraceReader reader(path);
    EXPECT_EQ(reader.recordCount(), buf.size());
    TraceRecord rec;
    for (size_t i = 0; i < buf.size(); ++i) {
        ASSERT_TRUE(reader.next(rec));
        ASSERT_EQ(rec, buf[i]) << "record " << i;
    }
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(CompressedTrace, ResetReplaysWithFreshDeltaState)
{
    std::string path = tempPath("para_ctrace_reset.ptrz");
    Prng prng(6);
    TraceBuffer buf;
    for (int i = 0; i < 200; ++i)
        buf.push(randomRecord(prng, static_cast<uint64_t>(i)));
    {
        CompressedTraceWriter writer(path);
        BufferSource src(buf);
        writer.writeAll(src);
    }
    CompressedTraceReader reader(path);
    TraceRecord rec;
    for (int i = 0; i < 200; ++i)
        ASSERT_TRUE(reader.next(rec));
    reader.reset();
    for (size_t i = 0; i < buf.size(); ++i) {
        ASSERT_TRUE(reader.next(rec));
        ASSERT_EQ(rec, buf[i]) << "replayed record " << i;
    }
    std::remove(path.c_str());
}

TEST(CompressedTrace, MuchSmallerThanFixedFormat)
{
    auto &suite = workloads::WorkloadSuite::instance();
    auto src = suite.makeSource(suite.find("xlisp"), workloads::Scale::Small);
    TraceBuffer buf;
    buf.capture(*src);

    std::string fixed = tempPath("para_size_fixed.ptrc");
    std::string packed = tempPath("para_size_packed.ptrz");
    {
        TraceFileWriter w(fixed);
        BufferSource s(buf);
        w.writeAll(s);
    }
    {
        CompressedTraceWriter w(packed);
        BufferSource s(buf);
        w.writeAll(s);
    }
    auto fixed_size = std::filesystem::file_size(fixed);
    auto packed_size = std::filesystem::file_size(packed);
    EXPECT_LT(packed_size * 4, fixed_size)
        << "compressed " << packed_size << " vs fixed " << fixed_size;

    // And it still decodes identically.
    CompressedTraceReader reader(packed);
    TraceRecord rec;
    size_t i = 0;
    while (reader.next(rec))
        ASSERT_EQ(rec, buf[i++]);
    EXPECT_EQ(i, buf.size());
    std::remove(fixed.c_str());
    std::remove(packed.c_str());
}

TEST(CompressedTrace, OpenTraceFileDispatchesOnMagic)
{
    TraceBuffer buf;
    Prng prng(7);
    for (int i = 0; i < 50; ++i)
        buf.push(randomRecord(prng, static_cast<uint64_t>(i)));

    std::string fixed = tempPath("para_open_fixed.ptrc");
    std::string packed = tempPath("para_open_packed.ptrz");
    {
        TraceFileWriter w(fixed);
        BufferSource s(buf);
        w.writeAll(s);
    }
    {
        CompressedTraceWriter w(packed);
        BufferSource s(buf);
        w.writeAll(s);
    }
    for (const std::string &path : {fixed, packed}) {
        auto reader = openTraceFile(path);
        TraceRecord rec;
        size_t n = 0;
        while (reader->next(rec))
            ++n;
        EXPECT_EQ(n, buf.size()) << path;
        reader->reset();
        ASSERT_TRUE(reader->next(rec));
        EXPECT_EQ(rec, buf[0]) << path;
    }
    std::remove(fixed.c_str());
    std::remove(packed.c_str());
}

TEST(CompressedTrace, RejectsWrongMagic)
{
    std::string path = tempPath("para_ctrace_bad.ptrz");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[32] = "not a compressed trace";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    EXPECT_THROW(CompressedTraceReader reader(path), FatalError);
    EXPECT_THROW(openTraceFile(path), FatalError);
    std::remove(path.c_str());
}

TEST(CompressedTrace, TruncationDetected)
{
    std::string path = tempPath("para_ctrace_trunc.ptrz");
    TraceBuffer buf;
    Prng prng(8);
    for (int i = 0; i < 20; ++i)
        buf.push(randomRecord(prng, static_cast<uint64_t>(i)));
    {
        CompressedTraceWriter w(path);
        BufferSource s(buf);
        w.writeAll(s);
    }
    auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full - 3);
    CompressedTraceReader reader(path);
    TraceRecord rec;
    EXPECT_THROW(
        {
            while (reader.next(rec)) {
            }
        },
        FatalError);
    std::remove(path.c_str());
}
