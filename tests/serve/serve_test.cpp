// Tests for the paragraph-serve subsystem: the content-addressed result
// store (persistence, LRU, damage tolerance), the wire protocol
// (parse/render round trips), and the daemon itself — run in-process on an
// ephemeral AF_UNIX socket against the checked-in golden traces, proving
// the cache serves warm cells byte-identical to cold ones, across
// overlapping grids, concurrent clients, disconnects, and restarts.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/time.h>
#include <unistd.h>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/result_store.hpp"
#include "serve/server.hpp"
#include "support/failpoint.hpp"
#include "support/panic.hpp"

using namespace paragraph;
using namespace paragraph::serve;

namespace {

namespace fs = std::filesystem;

std::string
tempPath(const std::string &tag)
{
    return (fs::temp_directory_path() /
            ("ps_" + tag + "_" + std::to_string(::getpid())))
        .string();
}

std::string
goldenTrace(const std::string &name)
{
    return std::string(PARAGRAPH_GOLDEN_DIR) + "/" + name;
}

/** Append raw bytes to a file (to simulate damage and torn writes). */
void
appendRaw(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
}

/** An in-process daemon on an ephemeral socket, torn down on destruction. */
struct Daemon
{
    std::string socketPath;
    std::string storePath;
    std::unique_ptr<ServeServer> server;
    std::thread thread;

    explicit Daemon(const std::string &tag, ServeServer::Options opt = {})
        : socketPath(tempPath(tag + ".sock")), storePath(opt.storePath)
    {
        fs::remove(socketPath);
        opt.socketPath = socketPath;
        opt.quiet = true;
        if (opt.jobs == 0)
            opt.jobs = 2;
        server = std::make_unique<ServeServer>(std::move(opt));
        std::string error;
        if (!server->start(error))
            PARA_FATAL("daemon start failed: %s", error.c_str());
        thread = std::thread([this] { server->run(); });
    }

    ~Daemon()
    {
        stop();
        fs::remove(socketPath);
    }

    void
    stop()
    {
        if (server)
            server->requestStop();
        if (thread.joinable())
            thread.join();
    }
};

ServeRequest
sweepRequest(const std::vector<std::string> &inputs,
             const std::vector<uint64_t> &windows)
{
    ServeRequest req;
    req.op = ServeRequest::Op::Sweep;
    req.inputs = inputs;
    req.windows = windows;
    return req;
}

/** Connect, send @p req, and parse the single response line. */
ServeResponse
ask(const Daemon &daemon, const ServeRequest &req)
{
    ServeClient client(daemon.socketPath);
    std::string error;
    EXPECT_TRUE(client.connect(error)) << error;
    std::string line;
    EXPECT_TRUE(client.roundTrip(renderServeRequest(req), line, error))
        << error;
    ServeResponse resp;
    EXPECT_TRUE(parseServeResponse(line, resp, error)) << error;
    return resp;
}

ResultKey
key(uint32_t traceCrc, uint32_t configKey, bool profiles = true)
{
    ResultKey k;
    k.traceCrc = traceCrc;
    k.configKey = configKey;
    k.profiles = profiles;
    return k;
}

} // namespace

// --------------------------------------------------------------------------
// ResultStore

TEST(ResultStore, RoundTripsAndPersistsAcrossReopen)
{
    std::string path = tempPath("store_rt.jsonl");
    fs::remove(path);

    {
        ResultStore store(path);
        EXPECT_EQ(store.entries(), 0u);
        store.insert(key(1, 2), "{\"cell\": 1}");
        store.insert(key(1, 3), "cell\nwith\n\"escapes\"\\");
        std::string text;
        ASSERT_TRUE(store.lookup(key(1, 2), text));
        EXPECT_EQ(text, "{\"cell\": 1}");
        EXPECT_FALSE(store.lookup(key(9, 9), text));

        // Same content address: first write wins, nothing is appended.
        store.insert(key(1, 2), "{\"cell\": 1}");
        EXPECT_EQ(store.entries(), 2u);
    }

    ResultStore reopened(path);
    EXPECT_EQ(reopened.entries(), 2u);
    std::string text;
    ASSERT_TRUE(reopened.lookup(key(1, 3), text));
    EXPECT_EQ(text, "cell\nwith\n\"escapes\"\\");
    fs::remove(path);
}

TEST(ResultStore, ProfilesFlagIsPartOfTheAddress)
{
    std::string path = tempPath("store_prof.jsonl");
    fs::remove(path);
    ResultStore store(path);
    store.insert(key(1, 2, true), "with profiles");
    store.insert(key(1, 2, false), "without profiles");
    EXPECT_EQ(store.entries(), 2u);
    std::string text;
    ASSERT_TRUE(store.lookup(key(1, 2, false), text));
    EXPECT_EQ(text, "without profiles");
    fs::remove(path);
}

TEST(ResultStore, EvictedHotTextIsReReadFromDisk)
{
    std::string path = tempPath("store_lru.jsonl");
    fs::remove(path);
    ResultStore::Options opt;
    opt.memoryBudget = 64; // room for roughly one entry's text
    ResultStore store(path, opt);

    std::string big(50, 'a');
    std::string alsoBig(50, 'b');
    store.insert(key(1, 1), big);
    store.insert(key(2, 2), alsoBig); // evicts the first entry's hot text
    EXPECT_LE(store.hotBytes(), opt.memoryBudget);
    EXPECT_EQ(store.entries(), 2u);

    // Both still serve: one hot, one re-read (and re-validated) from disk.
    std::string text;
    ASSERT_TRUE(store.lookup(key(1, 1), text));
    EXPECT_EQ(text, big);
    ASSERT_TRUE(store.lookup(key(2, 2), text));
    EXPECT_EQ(text, alsoBig);
    fs::remove(path);
}

TEST(ResultStore, DamagedLinesAreSkippedNotFatal)
{
    std::string path = tempPath("store_damage.jsonl");
    fs::remove(path);
    {
        ResultStore store(path);
        store.insert(key(1, 1), "first");
    }
    appendRaw(path, "this is not json\n");
    appendRaw(path, "{\"trace_crc\": 2}\n"); // incomplete entry
    {
        ResultStore store(path); // warns twice, keeps going
        EXPECT_EQ(store.entries(), 1u);
        store.insert(key(3, 3), "after damage");
    }
    ResultStore reopened(path);
    EXPECT_EQ(reopened.entries(), 2u);
    std::string text;
    ASSERT_TRUE(reopened.lookup(key(1, 1), text));
    EXPECT_EQ(text, "first");
    ASSERT_TRUE(reopened.lookup(key(3, 3), text));
    EXPECT_EQ(text, "after damage");
    fs::remove(path);
}

TEST(ResultStore, TornFinalLineIsDroppedAndSealed)
{
    std::string path = tempPath("store_torn.jsonl");
    fs::remove(path);
    {
        ResultStore store(path);
        store.insert(key(1, 1), "whole");
    }
    // A crash mid-append: the last line has no terminating newline.
    appendRaw(path, "{\"trace_crc\": 7, \"config_key\": 8, \"profi");
    {
        ResultStore store(path);
        EXPECT_EQ(store.entries(), 1u); // the fragment is not indexed
        // New inserts must start a clean line, not extend the fragment.
        store.insert(key(2, 2), "post-crash");
    }
    ResultStore reopened(path);
    EXPECT_EQ(reopened.entries(), 2u);
    std::string text;
    ASSERT_TRUE(reopened.lookup(key(1, 1), text));
    EXPECT_EQ(text, "whole");
    ASSERT_TRUE(reopened.lookup(key(2, 2), text));
    EXPECT_EQ(text, "post-crash");
    fs::remove(path);
}

TEST(ResultStore, RejectsAForeignFile)
{
    std::string path = tempPath("store_foreign.jsonl");
    fs::remove(path);
    appendRaw(path, "{\"schema\": \"something-else\"}\n");
    EXPECT_THROW(ResultStore{path}, FatalError);
    fs::remove(path);
}

TEST(ResultStore, SyncPolicyControlsFsyncCadence)
{
    std::string path = tempPath("store_sync.jsonl");
    fs::remove(path);
    {
        ResultStore::Options opt;
        opt.syncPolicy = SyncPolicy::Cell;
        ResultStore store(path, opt);
        store.insert(key(1, 1), "a");
        store.insert(key(2, 2), "b");
        EXPECT_EQ(store.appends(), 2u);
        EXPECT_EQ(store.syncs(), 2u); // one fsync per acknowledged entry
    }
    fs::remove(path);
    {
        ResultStore::Options opt;
        opt.syncPolicy = SyncPolicy::Interval;
        opt.syncIntervalSeconds = 3600.0; // never inside this test
        ResultStore store(path, opt);
        store.insert(key(1, 1), "a");
        EXPECT_EQ(store.syncs(), 0u);
    }
    fs::remove(path);
}

TEST(ResultStore, CompactionDropsDamageAndKeepsEveryLiveEntry)
{
    std::string path = tempPath("store_compact.jsonl");
    fs::remove(path);
    {
        ResultStore store(path);
        store.insert(key(1, 1), "first");
        store.insert(key(2, 2), "second");
    }
    appendRaw(path, "damage that every future load would re-skip\n");
    appendRaw(path, "{\"trace_crc\": 9}\n");

    ResultStore store(path);
    ASSERT_EQ(store.entries(), 2u);
    long before = store.diskBytes();
    std::string error;
    ASSERT_TRUE(store.compact(error)) << error;
    EXPECT_EQ(store.compactions(), 1u);
    EXPECT_LT(store.diskBytes(), before) << "dead bytes must be gone";
    EXPECT_EQ(store.entries(), 2u);

    // Live entries survive in place and the store keeps appending.
    std::string text;
    ASSERT_TRUE(store.lookup(key(1, 1), text));
    EXPECT_EQ(text, "first");
    store.insert(key(3, 3), "post-compact");
    ASSERT_TRUE(store.lookup(key(3, 3), text));
    EXPECT_EQ(text, "post-compact");

    ResultStore reopened(path);
    EXPECT_EQ(reopened.entries(), 3u);
    ASSERT_TRUE(reopened.lookup(key(2, 2), text));
    EXPECT_EQ(text, "second");
    fs::remove(path);
}

TEST(ResultStore, CompactionRepairsAFailedAppend)
{
    std::string path = tempPath("store_repair.jsonl");
    fs::remove(path);
    failpoint::reset();
    ResultStore store(path);
    store.insert(key(1, 1), "good");

    // A torn append flips the store into its degraded no-caching mode...
    std::string error;
    ASSERT_TRUE(failpoint::configure("store.append.torn=once", error))
        << error;
    store.insert(key(2, 2), "torn");
    failpoint::reset();
    std::string text;
    EXPECT_FALSE(store.lookup(key(2, 2), text));
    store.insert(key(3, 3), "while degraded"); // dropped, not appended
    EXPECT_FALSE(store.lookup(key(3, 3), text));

    // ...and a successful compaction is the repair path: the fragment is
    // rewritten away and appends work again.
    ASSERT_TRUE(store.compact(error)) << error;
    store.insert(key(3, 3), "after repair");
    ASSERT_TRUE(store.lookup(key(3, 3), text));
    EXPECT_EQ(text, "after repair");
    ASSERT_TRUE(store.lookup(key(1, 1), text));
    EXPECT_EQ(text, "good");

    ResultStore reopened(path);
    EXPECT_EQ(reopened.entries(), 2u);
    fs::remove(path);
}

TEST(ResultStore, AutoCompactionTriggersOnTheConfiguredCadence)
{
    std::string path = tempPath("store_autocompact.jsonl");
    fs::remove(path);
    ResultStore::Options opt;
    opt.compactEveryAppends = 3;
    ResultStore store(path, opt);
    store.insert(key(1, 1), "a");
    store.insert(key(2, 2), "b");
    EXPECT_EQ(store.compactions(), 0u);
    store.insert(key(3, 3), "c");
    EXPECT_EQ(store.compactions(), 1u);
    EXPECT_EQ(store.entries(), 3u);
    std::string text;
    ASSERT_TRUE(store.lookup(key(2, 2), text));
    EXPECT_EQ(text, "b");
    fs::remove(path);
}

// --------------------------------------------------------------------------
// Protocol

TEST(ServeProtocol, SweepRequestRoundTrips)
{
    ServeRequest req = sweepRequest({"xlisp", "a b.ptrc"}, {16, 0});
    req.renames = {"none", "data"};
    req.syscalls = {"stall"};
    req.predictors = {"perfect", "wrong"};
    req.fus = {0, 2};
    req.maxInstructions = 1234;
    req.profiles = false;
    req.small = true;

    ServeRequest back;
    std::string error;
    ASSERT_TRUE(parseServeRequest(renderServeRequest(req), back, error))
        << error;
    EXPECT_EQ(back.op, ServeRequest::Op::Sweep);
    EXPECT_EQ(back.inputs, req.inputs);
    EXPECT_EQ(back.windows, req.windows);
    EXPECT_EQ(back.renames, req.renames);
    EXPECT_EQ(back.syscalls, req.syscalls);
    EXPECT_EQ(back.predictors, req.predictors);
    EXPECT_EQ(back.fus, req.fus);
    EXPECT_EQ(back.maxInstructions, 1234u);
    EXPECT_FALSE(back.profiles);
    EXPECT_TRUE(back.small);

    engine::SweepArgs args = toSweepArgs(back);
    EXPECT_EQ(args.inputs, req.inputs);
    EXPECT_FALSE(args.json.timing) << "served documents never carry timing";
}

TEST(ServeProtocol, RejectsBadRequests)
{
    ServeRequest req;
    std::string error;
    EXPECT_FALSE(parseServeRequest("not json", req, error));
    EXPECT_FALSE(parseServeRequest(
        "{\"schema\": \"wrong-schema\", \"op\": \"ping\"}", req, error));
    EXPECT_FALSE(parseServeRequest(
        "{\"schema\": \"paragraph-serve-v1\", \"op\": \"dance\"}", req,
        error));
    // A sweep with no inputs is refused at parse time.
    EXPECT_FALSE(parseServeRequest(
        "{\"schema\": \"paragraph-serve-v1\", \"op\": \"sweep\"}", req,
        error));
}

TEST(ServeProtocol, ResponsesRoundTrip)
{
    ServeResponse resp;
    std::string error;
    ASSERT_TRUE(parseServeResponse(
        renderSweepResponse(6, 1, 4, 1, "{\"cells\": []}"), resp, error))
        << error;
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.op, "sweep");
    EXPECT_EQ(resp.cellsTotal, 6u);
    EXPECT_EQ(resp.cellsFailed, 1u);
    EXPECT_EQ(resp.cellsCached, 4u);
    EXPECT_EQ(resp.cellsComputed, 1u);
    EXPECT_EQ(resp.document, "{\"cells\": []}");

    ASSERT_TRUE(parseServeResponse(renderAckResponse("ping"), resp, error));
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.op, "ping");

    ASSERT_TRUE(
        parseServeResponse(renderErrorResponse("bad \"axis\""), resp, error));
    EXPECT_FALSE(resp.ok());
    EXPECT_EQ(resp.error, "bad \"axis\"");
}

TEST(ServeProtocol, HealthAndBusyResponsesRoundTrip)
{
    ServeResponse health;
    health.status = "ok";
    health.op = "health";
    health.pendingCells = 3;
    health.activeSweeps = 1;
    health.workers = 4;
    health.storeEntries = 10;
    health.storeDiskBytes = 4096;
    health.storeAppends = 12;
    health.storeSyncs = 5;
    health.storeCompactions = 2;
    health.failpointsActive = 1;
    health.failpointFires = 7;
    health.storeSync = "interval";

    ServeResponse back;
    std::string error;
    ASSERT_TRUE(
        parseServeResponse(renderHealthResponse(health), back, error))
        << error;
    EXPECT_TRUE(back.ok());
    EXPECT_EQ(back.op, "health");
    EXPECT_EQ(back.pendingCells, 3u);
    EXPECT_EQ(back.activeSweeps, 1u);
    EXPECT_EQ(back.workers, 4u);
    EXPECT_EQ(back.storeEntries, 10u);
    EXPECT_EQ(back.storeDiskBytes, 4096u);
    EXPECT_EQ(back.storeAppends, 12u);
    EXPECT_EQ(back.storeSyncs, 5u);
    EXPECT_EQ(back.storeCompactions, 2u);
    EXPECT_EQ(back.failpointsActive, 1u);
    EXPECT_EQ(back.failpointFires, 7u);
    EXPECT_EQ(back.storeSync, "interval");

    ASSERT_TRUE(parseServeResponse(renderBusyResponse(250), back, error));
    EXPECT_FALSE(back.ok());
    EXPECT_TRUE(back.busy());
    EXPECT_EQ(back.retryAfterMs, 250u);

    // Failpoint request lines round-trip their spec and seed.
    ServeRequest arm;
    arm.op = ServeRequest::Op::Failpoint;
    arm.failpointSpec = "store.sync=prob:0.25;serve.read=once:2";
    arm.failpointSeed = 42;
    arm.hasFailpointSeed = true;
    ServeRequest parsed;
    ASSERT_TRUE(
        parseServeRequest(renderServeRequest(arm), parsed, error))
        << error;
    EXPECT_EQ(parsed.op, ServeRequest::Op::Failpoint);
    EXPECT_EQ(parsed.failpointSpec, arm.failpointSpec);
    EXPECT_TRUE(parsed.hasFailpointSeed);
    EXPECT_EQ(parsed.failpointSeed, 42u);
}

// --------------------------------------------------------------------------
// Daemon end-to-end (golden traces over a real socket)

TEST(ServeDaemon, AnswersPingAndStats)
{
    Daemon daemon("ping");
    ServeRequest ping;
    ping.op = ServeRequest::Op::Ping;
    EXPECT_TRUE(ask(daemon, ping).ok());

    ServeRequest stats;
    stats.op = ServeRequest::Op::Stats;
    ServeResponse resp = ask(daemon, stats);
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.op, "stats");
    EXPECT_GE(resp.requests, 2u);
}

TEST(ServeDaemon, MalformedLinesGetErrorResponsesNotDisconnects)
{
    Daemon daemon("badline");
    ServeClient client(daemon.socketPath);
    std::string error;
    ASSERT_TRUE(client.connect(error)) << error;
    std::string line;
    ASSERT_TRUE(client.roundTrip("definitely not json", line, error))
        << error;
    ServeResponse resp;
    ASSERT_TRUE(parseServeResponse(line, resp, error)) << error;
    EXPECT_FALSE(resp.ok());

    // The connection is still usable afterwards.
    ServeRequest ping;
    ping.op = ServeRequest::Op::Ping;
    ASSERT_TRUE(client.roundTrip(renderServeRequest(ping), line, error));
    ASSERT_TRUE(parseServeResponse(line, resp, error)) << error;
    EXPECT_TRUE(resp.ok());
}

TEST(ServeDaemon, WarmSweepIsFullyCachedAndByteIdentical)
{
    std::string store = tempPath("warm.store");
    fs::remove(store);
    ServeServer::Options opt;
    opt.storePath = store;
    Daemon daemon("warm", opt);

    ServeRequest req =
        sweepRequest({goldenTrace("xlisp-800.ptrc")}, {16, 64});
    ServeResponse cold = ask(daemon, req);
    ASSERT_TRUE(cold.ok()) << cold.error;
    EXPECT_EQ(cold.cellsTotal, 2u);
    EXPECT_EQ(cold.cellsComputed, 2u);
    EXPECT_EQ(cold.cellsCached, 0u);
    EXPECT_EQ(cold.cellsFailed, 0u);
    EXPECT_NE(cold.document.find("\"cells\""), std::string::npos);

    ServeResponse warm = ask(daemon, req);
    ASSERT_TRUE(warm.ok()) << warm.error;
    EXPECT_EQ(warm.cellsCached, 2u);
    EXPECT_EQ(warm.cellsComputed, 0u);
    EXPECT_EQ(warm.document, cold.document)
        << "cached cells must replay the original bytes";
    fs::remove(store);
}

TEST(ServeDaemon, OverlappingGridsReuseTheIntersection)
{
    std::string store = tempPath("overlap.store");
    fs::remove(store);
    ServeServer::Options opt;
    opt.storePath = store;
    Daemon daemon("overlap", opt);

    std::string input = goldenTrace("matrix300-600.ptrc");
    ASSERT_TRUE(ask(daemon, sweepRequest({input}, {16, 64})).ok());

    // A *different* request whose grid overlaps the first: the shared
    // cells come from the cache, only the new window is computed.
    ServeResponse resp = ask(daemon, sweepRequest({input}, {16, 64, 256}));
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.cellsTotal, 3u);
    EXPECT_EQ(resp.cellsCached, 2u);
    EXPECT_EQ(resp.cellsComputed, 1u);
    fs::remove(store);
}

TEST(ServeDaemon, ServesConcurrentClientsOverOneScheduler)
{
    std::string store = tempPath("concurrent.store");
    fs::remove(store);
    ServeServer::Options opt;
    opt.storePath = store;
    Daemon daemon("concurrent", opt);

    // Both clients sweep the same trace (different grids) at once; the
    // shared repository captures it once and both answers must be right.
    std::string input = goldenTrace("xlisp-800.ptrc");
    ServeResponse a, b;
    std::thread ta([&] { a = ask(daemon, sweepRequest({input}, {16, 64})); });
    std::thread tb(
        [&] { b = ask(daemon, sweepRequest({input}, {256, 0})); });
    ta.join();
    tb.join();
    ASSERT_TRUE(a.ok()) << a.error;
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_EQ(a.cellsFailed, 0u);
    EXPECT_EQ(b.cellsFailed, 0u);

    // Every computed cell is now addressable by any client.
    ServeResponse again =
        ask(daemon, sweepRequest({input}, {16, 64, 256, 0}));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.cellsCached, 4u);
    EXPECT_EQ(again.cellsComputed, 0u);
    fs::remove(store);
}

TEST(ServeDaemon, SurvivesClientDisconnectMidJobAndKeepsTheCells)
{
    std::string store = tempPath("disconnect.store");
    fs::remove(store);
    ServeServer::Options opt;
    opt.storePath = store;
    Daemon daemon("disconnect", opt);

    ServeRequest req =
        sweepRequest({goldenTrace("matrix300-600.ptrc")}, {16, 64});
    {
        // Fire the sweep and vanish without reading the response.
        ServeClient client(daemon.socketPath);
        std::string error;
        ASSERT_TRUE(client.connect(error)) << error;
        ASSERT_TRUE(client.sendLine(renderServeRequest(req), error)) << error;
    }

    // The daemon must still be serving, and the abandoned job's completed
    // cells stay in the store: re-asking soon costs nothing new. (The first
    // re-ask may overlap the abandoned computation; the one after that must
    // be fully cached.)
    ServeRequest ping;
    ping.op = ServeRequest::Op::Ping;
    EXPECT_TRUE(ask(daemon, ping).ok());
    ServeResponse first = ask(daemon, req);
    ASSERT_TRUE(first.ok()) << first.error;
    EXPECT_EQ(first.cellsFailed, 0u);
    ServeResponse second = ask(daemon, req);
    ASSERT_TRUE(second.ok()) << second.error;
    EXPECT_EQ(second.cellsCached, 2u);
    EXPECT_EQ(second.document, first.document);
    fs::remove(store);
}

TEST(ServeDaemon, RestartReServesEverythingFromTheStore)
{
    std::string store = tempPath("restart.store");
    fs::remove(store);
    ServeRequest req = sweepRequest(
        {goldenTrace("xlisp-800.ptrc"), goldenTrace("matrix300-600.ptrc")},
        {16, 64});

    std::string coldDocument;
    {
        ServeServer::Options opt;
        opt.storePath = store;
        Daemon daemon("restart1", opt);
        ServeResponse cold = ask(daemon, req);
        ASSERT_TRUE(cold.ok()) << cold.error;
        EXPECT_EQ(cold.cellsComputed, 4u);
        coldDocument = cold.document;
    } // daemon stops; only the store file survives

    ServeServer::Options opt;
    opt.storePath = store;
    Daemon daemon("restart2", opt);
    ServeResponse warm = ask(daemon, req);
    ASSERT_TRUE(warm.ok()) << warm.error;
    EXPECT_EQ(warm.cellsCached, 4u);
    EXPECT_EQ(warm.cellsComputed, 0u);
    EXPECT_EQ(warm.document, coldDocument);
    fs::remove(store);
}

TEST(ServeDaemon, ShutdownOpStopsTheDaemon)
{
    Daemon daemon("shutdown");
    ServeRequest req;
    req.op = ServeRequest::Op::Shutdown;
    ServeResponse resp = ask(daemon, req);
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.op, "shutdown");
    daemon.thread.join(); // run() must return on its own
    EXPECT_FALSE(fs::exists(daemon.socketPath));
}

TEST(ServeDaemon, WorksWithoutAPersistentStore)
{
    Daemon daemon("nostore"); // storePath empty: every cell recomputed
    ServeRequest req = sweepRequest({goldenTrace("xlisp-800.ptrc")}, {16});
    ServeResponse first = ask(daemon, req);
    ASSERT_TRUE(first.ok()) << first.error;
    EXPECT_EQ(first.cellsComputed, 1u);
    ServeResponse second = ask(daemon, req);
    ASSERT_TRUE(second.ok()) << second.error;
    EXPECT_EQ(second.cellsCached, 0u);
    EXPECT_EQ(second.cellsComputed, 1u);
    EXPECT_EQ(second.document, first.document)
        << "determinism does not depend on the cache";
}

TEST(ServeDaemon, RejectsAScaleMismatch)
{
    ServeServer::Options opt;
    opt.small = true;
    Daemon daemon("scale", opt);
    ServeRequest req = sweepRequest({"xlisp"}, {16});
    req.small = false;
    ServeResponse resp = ask(daemon, req);
    EXPECT_FALSE(resp.ok());
    EXPECT_NE(resp.error.find("small"), std::string::npos);
}

TEST(ServeDaemon, CachedCellsRebindGridCoordinates)
{
    // A store entry is shared by content address across *different* grids,
    // where the same cell can sit at different input/config coordinates.
    // The spliced fragment must carry the requesting grid's indices, not
    // the indices of whichever sweep computed it first (regression: the
    // chaos harness caught cache hits leaking foreign input_index /
    // config_index values into otherwise clean documents).
    std::string store = tempPath("rebind.store");
    fs::remove(store);
    ServeServer::Options opt;
    opt.storePath = store;
    Daemon daemon("rebind", opt);

    std::string xlisp = goldenTrace("xlisp-800.ptrc");
    std::string matrix = goldenTrace("matrix300-600.ptrc");

    // Populate the store from a grid where matrix/window=64 sits at
    // input_index 1, config_index 1.
    ASSERT_TRUE(ask(daemon, sweepRequest({xlisp, matrix}, {16, 64})).ok());

    // The same cell served at coordinates (0, 0) must be byte-identical
    // to a cache-less computation of that one-cell grid.
    Daemon fresh("rebind.fresh"); // no store: computes from scratch
    ServeResponse want = ask(fresh, sweepRequest({matrix}, {64}));
    ASSERT_TRUE(want.ok()) << want.error;

    ServeResponse got = ask(daemon, sweepRequest({matrix}, {64}));
    ASSERT_TRUE(got.ok()) << got.error;
    EXPECT_EQ(got.cellsCached, 1u);
    EXPECT_EQ(got.document, want.document)
        << "cache hits must rebind input_index/config_index to the "
           "requesting grid";
    fs::remove(store);
}

namespace {
void
onAlarmTick(int)
{
    // Nothing: the point is the EINTR the delivery inflicts on whatever
    // syscall the serve stack is blocked in.
}
} // namespace

TEST(ServeDaemon, SurvivesAnEintrStorm)
{
    // A 5ms SIGALRM ticker (installed *without* SA_RESTART) peppers every
    // blocking syscall on both sides of the socket with EINTR for the
    // whole round trip; the client retries, the server's poll loop
    // retries, and the sweep must come back clean and byte-identical to
    // an undisturbed run.
    Daemon daemon("eintr");
    ServeRequest req = sweepRequest({goldenTrace("xlisp-800.ptrc")}, {16});
    ServeResponse calm = ask(daemon, req);
    ASSERT_TRUE(calm.ok()) << calm.error;

    struct sigaction sa, oldsa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onAlarmTick;
    sa.sa_flags = 0; // no SA_RESTART: every delivery is a real EINTR
    ASSERT_EQ(::sigaction(SIGALRM, &sa, &oldsa), 0);
    itimerval ticker = {};
    ticker.it_interval.tv_usec = 5000;
    ticker.it_value.tv_usec = 5000;
    ASSERT_EQ(::setitimer(ITIMER_REAL, &ticker, nullptr), 0);

    ServeResponse stormy = ask(daemon, req);

    itimerval off = {};
    ::setitimer(ITIMER_REAL, &off, nullptr);
    ::sigaction(SIGALRM, &oldsa, nullptr);

    ASSERT_TRUE(stormy.ok()) << stormy.error;
    EXPECT_EQ(stormy.cellsFailed, 0u);
    EXPECT_EQ(stormy.document, calm.document);
}

TEST(ServeDaemon, HealthReportsDurabilityAndLoadCounters)
{
    std::string store = tempPath("health.store");
    fs::remove(store);
    ServeServer::Options opt;
    opt.storePath = store;
    opt.storeSyncPolicy = SyncPolicy::Cell;
    Daemon daemon("health", opt);

    ASSERT_TRUE(
        ask(daemon, sweepRequest({goldenTrace("xlisp-800.ptrc")}, {16}))
            .ok());

    ServeRequest probe;
    probe.op = ServeRequest::Op::Health;
    ServeResponse health = ask(daemon, probe);
    ASSERT_TRUE(health.ok()) << health.error;
    EXPECT_EQ(health.op, "health");
    EXPECT_EQ(health.workers, 2u);
    EXPECT_EQ(health.activeSweeps, 0u);
    EXPECT_EQ(health.storeEntries, 1u);
    EXPECT_EQ(health.storeAppends, 1u);
    EXPECT_EQ(health.storeSyncs, 1u) << "Cell policy fsyncs per append";
    EXPECT_GT(health.storeDiskBytes, 0u);
    EXPECT_EQ(health.storeSync, "cell");
    fs::remove(store);
}

TEST(ServeDaemon, FailpointOpIsGatedAndResets)
{
    failpoint::reset();
    {
        Daemon locked("fp.locked"); // allowFailpoints defaults to off
        ServeRequest arm;
        arm.op = ServeRequest::Op::Failpoint;
        arm.failpointSpec = "serve.read=once";
        ServeResponse resp = ask(locked, arm);
        EXPECT_FALSE(resp.ok());
        EXPECT_NE(resp.error.find("failpoint"), std::string::npos);
        EXPECT_EQ(failpoint::activeSites(), 0u);
    }
    {
        ServeServer::Options opt;
        opt.allowFailpoints = true;
        Daemon open("fp.open", opt);
        ServeRequest arm;
        arm.op = ServeRequest::Op::Failpoint;
        arm.failpointSpec = "store.sync=after:1000000";
        ASSERT_TRUE(ask(open, arm).ok());
        EXPECT_EQ(failpoint::activeSites(), 1u);

        arm.failpointSpec.clear(); // empty spec = reset every site
        ASSERT_TRUE(ask(open, arm).ok());
        EXPECT_EQ(failpoint::activeSites(), 0u);

        arm.failpointSpec = "no.such.site=nonsense-policy";
        EXPECT_FALSE(ask(open, arm).ok());
    }
    failpoint::reset();
}

TEST(ServeDaemon, ShedsClientsPastTheConnectionCap)
{
    ServeServer::Options opt;
    opt.maxClients = 1;
    Daemon daemon("shed", opt);

    // First client occupies the only slot...
    ServeClient holder(daemon.socketPath);
    std::string error;
    ASSERT_TRUE(holder.connect(error)) << error;
    ServeRequest ping;
    std::string line;
    ASSERT_TRUE(
        holder.roundTrip(renderServeRequest(ping), line, error))
        << error;

    // ...so the second is turned away at accept with a retry hint.
    ServeResponse shed = ask(daemon, ping);
    EXPECT_TRUE(shed.busy());
    EXPECT_GT(shed.retryAfterMs, 0u);

    // Once the slot frees, service resumes.
    holder.close();
    for (int i = 0; i < 100; ++i) {
        ServeResponse again = ask(daemon, ping);
        if (again.ok())
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "daemon never recovered after the held connection closed";
}

TEST(ServeDaemon, RefusesOversizedRequestLines)
{
    ServeServer::Options opt;
    opt.maxRequestBytes = 256;
    Daemon daemon("cap", opt);

    ServeClient client(daemon.socketPath);
    std::string error;
    ASSERT_TRUE(client.connect(error)) << error;
    std::string huge(4096, 'x');
    std::string line;
    ASSERT_TRUE(client.roundTrip(huge, line, error)) << error;
    ServeResponse resp;
    ASSERT_TRUE(parseServeResponse(line, resp, error)) << error;
    EXPECT_FALSE(resp.ok());
    EXPECT_NE(resp.error.find("request"), std::string::npos);

    // A well-formed request on a fresh connection still serves.
    ServeRequest ping;
    EXPECT_TRUE(ask(daemon, ping).ok());
}
