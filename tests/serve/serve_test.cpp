// Tests for the paragraph-serve subsystem: the content-addressed result
// store (persistence, LRU, damage tolerance), the wire protocol
// (parse/render round trips), and the daemon itself — run in-process on an
// ephemeral AF_UNIX socket against the checked-in golden traces, proving
// the cache serves warm cells byte-identical to cold ones, across
// overlapping grids, concurrent clients, disconnects, and restarts.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/result_store.hpp"
#include "serve/server.hpp"
#include "support/panic.hpp"

using namespace paragraph;
using namespace paragraph::serve;

namespace {

namespace fs = std::filesystem;

std::string
tempPath(const std::string &tag)
{
    return (fs::temp_directory_path() /
            ("ps_" + tag + "_" + std::to_string(::getpid())))
        .string();
}

std::string
goldenTrace(const std::string &name)
{
    return std::string(PARAGRAPH_GOLDEN_DIR) + "/" + name;
}

/** Append raw bytes to a file (to simulate damage and torn writes). */
void
appendRaw(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
}

/** An in-process daemon on an ephemeral socket, torn down on destruction. */
struct Daemon
{
    std::string socketPath;
    std::string storePath;
    std::unique_ptr<ServeServer> server;
    std::thread thread;

    explicit Daemon(const std::string &tag, ServeServer::Options opt = {})
        : socketPath(tempPath(tag + ".sock")), storePath(opt.storePath)
    {
        fs::remove(socketPath);
        opt.socketPath = socketPath;
        opt.quiet = true;
        if (opt.jobs == 0)
            opt.jobs = 2;
        server = std::make_unique<ServeServer>(std::move(opt));
        std::string error;
        if (!server->start(error))
            PARA_FATAL("daemon start failed: %s", error.c_str());
        thread = std::thread([this] { server->run(); });
    }

    ~Daemon()
    {
        stop();
        fs::remove(socketPath);
    }

    void
    stop()
    {
        if (server)
            server->requestStop();
        if (thread.joinable())
            thread.join();
    }
};

ServeRequest
sweepRequest(const std::vector<std::string> &inputs,
             const std::vector<uint64_t> &windows)
{
    ServeRequest req;
    req.op = ServeRequest::Op::Sweep;
    req.inputs = inputs;
    req.windows = windows;
    return req;
}

/** Connect, send @p req, and parse the single response line. */
ServeResponse
ask(const Daemon &daemon, const ServeRequest &req)
{
    ServeClient client(daemon.socketPath);
    std::string error;
    EXPECT_TRUE(client.connect(error)) << error;
    std::string line;
    EXPECT_TRUE(client.roundTrip(renderServeRequest(req), line, error))
        << error;
    ServeResponse resp;
    EXPECT_TRUE(parseServeResponse(line, resp, error)) << error;
    return resp;
}

ResultKey
key(uint32_t traceCrc, uint32_t configKey, bool profiles = true)
{
    ResultKey k;
    k.traceCrc = traceCrc;
    k.configKey = configKey;
    k.profiles = profiles;
    return k;
}

} // namespace

// --------------------------------------------------------------------------
// ResultStore

TEST(ResultStore, RoundTripsAndPersistsAcrossReopen)
{
    std::string path = tempPath("store_rt.jsonl");
    fs::remove(path);

    {
        ResultStore store(path);
        EXPECT_EQ(store.entries(), 0u);
        store.insert(key(1, 2), "{\"cell\": 1}");
        store.insert(key(1, 3), "cell\nwith\n\"escapes\"\\");
        std::string text;
        ASSERT_TRUE(store.lookup(key(1, 2), text));
        EXPECT_EQ(text, "{\"cell\": 1}");
        EXPECT_FALSE(store.lookup(key(9, 9), text));

        // Same content address: first write wins, nothing is appended.
        store.insert(key(1, 2), "{\"cell\": 1}");
        EXPECT_EQ(store.entries(), 2u);
    }

    ResultStore reopened(path);
    EXPECT_EQ(reopened.entries(), 2u);
    std::string text;
    ASSERT_TRUE(reopened.lookup(key(1, 3), text));
    EXPECT_EQ(text, "cell\nwith\n\"escapes\"\\");
    fs::remove(path);
}

TEST(ResultStore, ProfilesFlagIsPartOfTheAddress)
{
    std::string path = tempPath("store_prof.jsonl");
    fs::remove(path);
    ResultStore store(path);
    store.insert(key(1, 2, true), "with profiles");
    store.insert(key(1, 2, false), "without profiles");
    EXPECT_EQ(store.entries(), 2u);
    std::string text;
    ASSERT_TRUE(store.lookup(key(1, 2, false), text));
    EXPECT_EQ(text, "without profiles");
    fs::remove(path);
}

TEST(ResultStore, EvictedHotTextIsReReadFromDisk)
{
    std::string path = tempPath("store_lru.jsonl");
    fs::remove(path);
    ResultStore::Options opt;
    opt.memoryBudget = 64; // room for roughly one entry's text
    ResultStore store(path, opt);

    std::string big(50, 'a');
    std::string alsoBig(50, 'b');
    store.insert(key(1, 1), big);
    store.insert(key(2, 2), alsoBig); // evicts the first entry's hot text
    EXPECT_LE(store.hotBytes(), opt.memoryBudget);
    EXPECT_EQ(store.entries(), 2u);

    // Both still serve: one hot, one re-read (and re-validated) from disk.
    std::string text;
    ASSERT_TRUE(store.lookup(key(1, 1), text));
    EXPECT_EQ(text, big);
    ASSERT_TRUE(store.lookup(key(2, 2), text));
    EXPECT_EQ(text, alsoBig);
    fs::remove(path);
}

TEST(ResultStore, DamagedLinesAreSkippedNotFatal)
{
    std::string path = tempPath("store_damage.jsonl");
    fs::remove(path);
    {
        ResultStore store(path);
        store.insert(key(1, 1), "first");
    }
    appendRaw(path, "this is not json\n");
    appendRaw(path, "{\"trace_crc\": 2}\n"); // incomplete entry
    {
        ResultStore store(path); // warns twice, keeps going
        EXPECT_EQ(store.entries(), 1u);
        store.insert(key(3, 3), "after damage");
    }
    ResultStore reopened(path);
    EXPECT_EQ(reopened.entries(), 2u);
    std::string text;
    ASSERT_TRUE(reopened.lookup(key(1, 1), text));
    EXPECT_EQ(text, "first");
    ASSERT_TRUE(reopened.lookup(key(3, 3), text));
    EXPECT_EQ(text, "after damage");
    fs::remove(path);
}

TEST(ResultStore, TornFinalLineIsDroppedAndSealed)
{
    std::string path = tempPath("store_torn.jsonl");
    fs::remove(path);
    {
        ResultStore store(path);
        store.insert(key(1, 1), "whole");
    }
    // A crash mid-append: the last line has no terminating newline.
    appendRaw(path, "{\"trace_crc\": 7, \"config_key\": 8, \"profi");
    {
        ResultStore store(path);
        EXPECT_EQ(store.entries(), 1u); // the fragment is not indexed
        // New inserts must start a clean line, not extend the fragment.
        store.insert(key(2, 2), "post-crash");
    }
    ResultStore reopened(path);
    EXPECT_EQ(reopened.entries(), 2u);
    std::string text;
    ASSERT_TRUE(reopened.lookup(key(1, 1), text));
    EXPECT_EQ(text, "whole");
    ASSERT_TRUE(reopened.lookup(key(2, 2), text));
    EXPECT_EQ(text, "post-crash");
    fs::remove(path);
}

TEST(ResultStore, RejectsAForeignFile)
{
    std::string path = tempPath("store_foreign.jsonl");
    fs::remove(path);
    appendRaw(path, "{\"schema\": \"something-else\"}\n");
    EXPECT_THROW(ResultStore{path}, FatalError);
    fs::remove(path);
}

// --------------------------------------------------------------------------
// Protocol

TEST(ServeProtocol, SweepRequestRoundTrips)
{
    ServeRequest req = sweepRequest({"xlisp", "a b.ptrc"}, {16, 0});
    req.renames = {"none", "data"};
    req.syscalls = {"stall"};
    req.predictors = {"perfect", "wrong"};
    req.fus = {0, 2};
    req.maxInstructions = 1234;
    req.profiles = false;
    req.small = true;

    ServeRequest back;
    std::string error;
    ASSERT_TRUE(parseServeRequest(renderServeRequest(req), back, error))
        << error;
    EXPECT_EQ(back.op, ServeRequest::Op::Sweep);
    EXPECT_EQ(back.inputs, req.inputs);
    EXPECT_EQ(back.windows, req.windows);
    EXPECT_EQ(back.renames, req.renames);
    EXPECT_EQ(back.syscalls, req.syscalls);
    EXPECT_EQ(back.predictors, req.predictors);
    EXPECT_EQ(back.fus, req.fus);
    EXPECT_EQ(back.maxInstructions, 1234u);
    EXPECT_FALSE(back.profiles);
    EXPECT_TRUE(back.small);

    engine::SweepArgs args = toSweepArgs(back);
    EXPECT_EQ(args.inputs, req.inputs);
    EXPECT_FALSE(args.json.timing) << "served documents never carry timing";
}

TEST(ServeProtocol, RejectsBadRequests)
{
    ServeRequest req;
    std::string error;
    EXPECT_FALSE(parseServeRequest("not json", req, error));
    EXPECT_FALSE(parseServeRequest(
        "{\"schema\": \"wrong-schema\", \"op\": \"ping\"}", req, error));
    EXPECT_FALSE(parseServeRequest(
        "{\"schema\": \"paragraph-serve-v1\", \"op\": \"dance\"}", req,
        error));
    // A sweep with no inputs is refused at parse time.
    EXPECT_FALSE(parseServeRequest(
        "{\"schema\": \"paragraph-serve-v1\", \"op\": \"sweep\"}", req,
        error));
}

TEST(ServeProtocol, ResponsesRoundTrip)
{
    ServeResponse resp;
    std::string error;
    ASSERT_TRUE(parseServeResponse(
        renderSweepResponse(6, 1, 4, 1, "{\"cells\": []}"), resp, error))
        << error;
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.op, "sweep");
    EXPECT_EQ(resp.cellsTotal, 6u);
    EXPECT_EQ(resp.cellsFailed, 1u);
    EXPECT_EQ(resp.cellsCached, 4u);
    EXPECT_EQ(resp.cellsComputed, 1u);
    EXPECT_EQ(resp.document, "{\"cells\": []}");

    ASSERT_TRUE(parseServeResponse(renderAckResponse("ping"), resp, error));
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.op, "ping");

    ASSERT_TRUE(
        parseServeResponse(renderErrorResponse("bad \"axis\""), resp, error));
    EXPECT_FALSE(resp.ok());
    EXPECT_EQ(resp.error, "bad \"axis\"");
}

// --------------------------------------------------------------------------
// Daemon end-to-end (golden traces over a real socket)

TEST(ServeDaemon, AnswersPingAndStats)
{
    Daemon daemon("ping");
    ServeRequest ping;
    ping.op = ServeRequest::Op::Ping;
    EXPECT_TRUE(ask(daemon, ping).ok());

    ServeRequest stats;
    stats.op = ServeRequest::Op::Stats;
    ServeResponse resp = ask(daemon, stats);
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.op, "stats");
    EXPECT_GE(resp.requests, 2u);
}

TEST(ServeDaemon, MalformedLinesGetErrorResponsesNotDisconnects)
{
    Daemon daemon("badline");
    ServeClient client(daemon.socketPath);
    std::string error;
    ASSERT_TRUE(client.connect(error)) << error;
    std::string line;
    ASSERT_TRUE(client.roundTrip("definitely not json", line, error))
        << error;
    ServeResponse resp;
    ASSERT_TRUE(parseServeResponse(line, resp, error)) << error;
    EXPECT_FALSE(resp.ok());

    // The connection is still usable afterwards.
    ServeRequest ping;
    ping.op = ServeRequest::Op::Ping;
    ASSERT_TRUE(client.roundTrip(renderServeRequest(ping), line, error));
    ASSERT_TRUE(parseServeResponse(line, resp, error)) << error;
    EXPECT_TRUE(resp.ok());
}

TEST(ServeDaemon, WarmSweepIsFullyCachedAndByteIdentical)
{
    std::string store = tempPath("warm.store");
    fs::remove(store);
    ServeServer::Options opt;
    opt.storePath = store;
    Daemon daemon("warm", opt);

    ServeRequest req =
        sweepRequest({goldenTrace("xlisp-800.ptrc")}, {16, 64});
    ServeResponse cold = ask(daemon, req);
    ASSERT_TRUE(cold.ok()) << cold.error;
    EXPECT_EQ(cold.cellsTotal, 2u);
    EXPECT_EQ(cold.cellsComputed, 2u);
    EXPECT_EQ(cold.cellsCached, 0u);
    EXPECT_EQ(cold.cellsFailed, 0u);
    EXPECT_NE(cold.document.find("\"cells\""), std::string::npos);

    ServeResponse warm = ask(daemon, req);
    ASSERT_TRUE(warm.ok()) << warm.error;
    EXPECT_EQ(warm.cellsCached, 2u);
    EXPECT_EQ(warm.cellsComputed, 0u);
    EXPECT_EQ(warm.document, cold.document)
        << "cached cells must replay the original bytes";
    fs::remove(store);
}

TEST(ServeDaemon, OverlappingGridsReuseTheIntersection)
{
    std::string store = tempPath("overlap.store");
    fs::remove(store);
    ServeServer::Options opt;
    opt.storePath = store;
    Daemon daemon("overlap", opt);

    std::string input = goldenTrace("matrix300-600.ptrc");
    ASSERT_TRUE(ask(daemon, sweepRequest({input}, {16, 64})).ok());

    // A *different* request whose grid overlaps the first: the shared
    // cells come from the cache, only the new window is computed.
    ServeResponse resp = ask(daemon, sweepRequest({input}, {16, 64, 256}));
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.cellsTotal, 3u);
    EXPECT_EQ(resp.cellsCached, 2u);
    EXPECT_EQ(resp.cellsComputed, 1u);
    fs::remove(store);
}

TEST(ServeDaemon, ServesConcurrentClientsOverOneScheduler)
{
    std::string store = tempPath("concurrent.store");
    fs::remove(store);
    ServeServer::Options opt;
    opt.storePath = store;
    Daemon daemon("concurrent", opt);

    // Both clients sweep the same trace (different grids) at once; the
    // shared repository captures it once and both answers must be right.
    std::string input = goldenTrace("xlisp-800.ptrc");
    ServeResponse a, b;
    std::thread ta([&] { a = ask(daemon, sweepRequest({input}, {16, 64})); });
    std::thread tb(
        [&] { b = ask(daemon, sweepRequest({input}, {256, 0})); });
    ta.join();
    tb.join();
    ASSERT_TRUE(a.ok()) << a.error;
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_EQ(a.cellsFailed, 0u);
    EXPECT_EQ(b.cellsFailed, 0u);

    // Every computed cell is now addressable by any client.
    ServeResponse again =
        ask(daemon, sweepRequest({input}, {16, 64, 256, 0}));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.cellsCached, 4u);
    EXPECT_EQ(again.cellsComputed, 0u);
    fs::remove(store);
}

TEST(ServeDaemon, SurvivesClientDisconnectMidJobAndKeepsTheCells)
{
    std::string store = tempPath("disconnect.store");
    fs::remove(store);
    ServeServer::Options opt;
    opt.storePath = store;
    Daemon daemon("disconnect", opt);

    ServeRequest req =
        sweepRequest({goldenTrace("matrix300-600.ptrc")}, {16, 64});
    {
        // Fire the sweep and vanish without reading the response.
        ServeClient client(daemon.socketPath);
        std::string error;
        ASSERT_TRUE(client.connect(error)) << error;
        ASSERT_TRUE(client.sendLine(renderServeRequest(req), error)) << error;
    }

    // The daemon must still be serving, and the abandoned job's completed
    // cells stay in the store: re-asking soon costs nothing new. (The first
    // re-ask may overlap the abandoned computation; the one after that must
    // be fully cached.)
    ServeRequest ping;
    ping.op = ServeRequest::Op::Ping;
    EXPECT_TRUE(ask(daemon, ping).ok());
    ServeResponse first = ask(daemon, req);
    ASSERT_TRUE(first.ok()) << first.error;
    EXPECT_EQ(first.cellsFailed, 0u);
    ServeResponse second = ask(daemon, req);
    ASSERT_TRUE(second.ok()) << second.error;
    EXPECT_EQ(second.cellsCached, 2u);
    EXPECT_EQ(second.document, first.document);
    fs::remove(store);
}

TEST(ServeDaemon, RestartReServesEverythingFromTheStore)
{
    std::string store = tempPath("restart.store");
    fs::remove(store);
    ServeRequest req = sweepRequest(
        {goldenTrace("xlisp-800.ptrc"), goldenTrace("matrix300-600.ptrc")},
        {16, 64});

    std::string coldDocument;
    {
        ServeServer::Options opt;
        opt.storePath = store;
        Daemon daemon("restart1", opt);
        ServeResponse cold = ask(daemon, req);
        ASSERT_TRUE(cold.ok()) << cold.error;
        EXPECT_EQ(cold.cellsComputed, 4u);
        coldDocument = cold.document;
    } // daemon stops; only the store file survives

    ServeServer::Options opt;
    opt.storePath = store;
    Daemon daemon("restart2", opt);
    ServeResponse warm = ask(daemon, req);
    ASSERT_TRUE(warm.ok()) << warm.error;
    EXPECT_EQ(warm.cellsCached, 4u);
    EXPECT_EQ(warm.cellsComputed, 0u);
    EXPECT_EQ(warm.document, coldDocument);
    fs::remove(store);
}

TEST(ServeDaemon, ShutdownOpStopsTheDaemon)
{
    Daemon daemon("shutdown");
    ServeRequest req;
    req.op = ServeRequest::Op::Shutdown;
    ServeResponse resp = ask(daemon, req);
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.op, "shutdown");
    daemon.thread.join(); // run() must return on its own
    EXPECT_FALSE(fs::exists(daemon.socketPath));
}

TEST(ServeDaemon, WorksWithoutAPersistentStore)
{
    Daemon daemon("nostore"); // storePath empty: every cell recomputed
    ServeRequest req = sweepRequest({goldenTrace("xlisp-800.ptrc")}, {16});
    ServeResponse first = ask(daemon, req);
    ASSERT_TRUE(first.ok()) << first.error;
    EXPECT_EQ(first.cellsComputed, 1u);
    ServeResponse second = ask(daemon, req);
    ASSERT_TRUE(second.ok()) << second.error;
    EXPECT_EQ(second.cellsCached, 0u);
    EXPECT_EQ(second.cellsComputed, 1u);
    EXPECT_EQ(second.document, first.document)
        << "determinism does not depend on the cache";
}

TEST(ServeDaemon, RejectsAScaleMismatch)
{
    ServeServer::Options opt;
    opt.small = true;
    Daemon daemon("scale", opt);
    ServeRequest req = sweepRequest({"xlisp"}, {16});
    req.small = false;
    ServeResponse resp = ask(daemon, req);
    EXPECT_FALSE(resp.ok());
    EXPECT_NE(resp.error.find("small"), std::string::npos);
}
