// End-to-end tests of the `paragraph-serve` binary: a real daemon process
// on an ephemeral socket, driven through the binary's own client mode.
// Covers the graceful-signal satellite (SIGTERM → exit 0, store intact)
// and the restart acceptance (a fresh daemon re-serves every cell the old
// one ever completed, byte-identically, without recomputing).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

namespace fs = std::filesystem;

std::string
serveCliPath()
{
#ifdef PARAGRAPH_SERVE_CLI_PATH
    return PARAGRAPH_SERVE_CLI_PATH;
#else
    return "./build/tools/paragraph-serve";
#endif
}

std::string
goldenTrace(const std::string &name)
{
    return std::string(PARAGRAPH_GOLDEN_DIR) + "/" + name;
}

std::string
tempPath(const std::string &tag)
{
    return (fs::temp_directory_path() /
            ("psc_" + tag + "_" + std::to_string(::getpid())))
        .string();
}

struct CliResult
{
    int status;
    std::string output;
};

/** Run the binary in client mode (or any one-shot invocation). */
CliResult
runServe(const std::string &args)
{
    std::string cmd = serveCliPath() + " " + args + " 2>/dev/null";
    std::FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), pipe))
        out += buf;
    int status = pclose(pipe);
    return CliResult{status, out};
}

/** A real daemon child process; killable, exit status observable. */
struct DaemonProcess
{
    pid_t pid = -1;
    std::string socketPath;
    std::string storePath;

    DaemonProcess(const std::string &tag, const std::string &store)
        : socketPath(tempPath(tag + ".sock")), storePath(store)
    {
        fs::remove(socketPath);
        pid = ::fork();
        if (pid == 0) {
            std::string sockArg = "--socket=" + socketPath;
            std::string storeArg = "--store=" + storePath;
            std::string bin = serveCliPath();
            ::execl(bin.c_str(), bin.c_str(), sockArg.c_str(),
                    storeArg.c_str(), "--jobs=2", "--quiet",
                    static_cast<char *>(nullptr));
            _exit(127); // exec failed
        }
        // The daemon is up once its socket exists.
        for (int i = 0; i < 500 && !fs::exists(socketPath); ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        EXPECT_TRUE(fs::exists(socketPath)) << "daemon never bound";
    }

    ~DaemonProcess()
    {
        if (pid > 0) {
            ::kill(pid, SIGKILL);
            int status = 0;
            ::waitpid(pid, &status, 0);
        }
        fs::remove(socketPath);
    }

    /** Send @p sig and reap the child; returns its wait status. */
    int
    signalAndWait(int sig)
    {
        EXPECT_EQ(::kill(pid, sig), 0);
        int status = 0;
        EXPECT_EQ(::waitpid(pid, &status, 0), pid);
        pid = -1;
        return status;
    }

    std::string
    clientArgs() const
    {
        return "--client --socket=" + socketPath + " --quiet";
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

} // namespace

TEST(ServeCli, SigtermShutsDownCleanlyAndRestartServesFromTheStore)
{
    std::string store = tempPath("restart.store");
    fs::remove(store);
    std::string cold = tempPath("cold.json");
    std::string warm = tempPath("warm.json");
    std::string grid = " --inputs=" + goldenTrace("xlisp-800.ptrc") + "," +
                       goldenTrace("matrix300-600.ptrc") +
                       " --windows=16,64";

    {
        DaemonProcess daemon("one", store);
        EXPECT_EQ(runServe(daemon.clientArgs() + " --ping").status, 0);
        CliResult sweep = runServe(daemon.clientArgs() + grid +
                                   " --out=" + cold);
        EXPECT_EQ(sweep.status, 0);

        // Graceful SIGTERM: exit status 0, socket unlinked, store intact.
        int status = daemon.signalAndWait(SIGTERM);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0);
        EXPECT_FALSE(fs::exists(daemon.socketPath));
    }

    std::string coldDoc = readFile(cold);
    ASSERT_NE(coldDoc.find("\"cells\""), std::string::npos);
    std::string storedText = readFile(store);
    EXPECT_NE(storedText.find("paragraph-serve-store-v1"),
              std::string::npos);
    EXPECT_NE(storedText.find("\"trace_crc\""), std::string::npos);

    {
        // A fresh daemon over the same store answers without recomputing:
        // the raw response must report every cell cached, and the document
        // must be byte-identical to the cold one.
        DaemonProcess daemon("two", store);
        CliResult warmRun = runServe(daemon.clientArgs() + grid +
                                     " --out=" + warm);
        EXPECT_EQ(warmRun.status, 0);
        EXPECT_EQ(readFile(warm), coldDoc);

        CliResult stats = runServe(daemon.clientArgs() + " --stats");
        EXPECT_EQ(stats.status, 0);
        EXPECT_NE(stats.output.find("\"total_cells_cached\": 4"),
                  std::string::npos)
            << stats.output;
        EXPECT_NE(stats.output.find("\"total_cells_computed\": 0"),
                  std::string::npos)
            << stats.output;
    }
    fs::remove(store);
    fs::remove(cold);
    fs::remove(warm);
}

TEST(ServeCli, ShutdownOpStopsTheDaemonWithExitZero)
{
    std::string store = tempPath("shutdown.store");
    fs::remove(store);
    DaemonProcess daemon("three", store);
    CliResult r = runServe(daemon.clientArgs() + " --shutdown");
    EXPECT_EQ(r.status, 0);

    int status = 0;
    ASSERT_EQ(::waitpid(daemon.pid, &status, 0), daemon.pid);
    daemon.pid = -1;
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    fs::remove(store);
}

TEST(ServeCli, ClientWithoutADaemonFailsCleanly)
{
    std::string sock = tempPath("nobody.sock");
    fs::remove(sock);
    CliResult r = runServe("--client --socket=" + sock + " --ping --quiet");
    EXPECT_NE(r.status, 0);
}

TEST(ServeCli, BadArgumentsFailCleanly)
{
    EXPECT_NE(runServe("--bogus").status, 0);
    EXPECT_NE(runServe("").status, 0); // --socket is required
}
