// Randomized failure-injection run against the real paragraph-serve
// binary: forks daemons, arms seeded failpoint schedules over the
// store/decode/socket sites, SIGKILLs them mid-job, and verifies after
// every restart that no acknowledged store entry is lost and every clean
// re-serve is byte-identical (src/fuzz/chaos_harness.hpp). A failing seed
// replays with `paragraph-fuzz --chaos --seed=N`.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include <unistd.h>

#include "fuzz/chaos_harness.hpp"
#include "support/test_seed.hpp"

using namespace paragraph;

namespace {

namespace fs = std::filesystem;

std::string
goldenTrace(const std::string &name)
{
    return std::string(PARAGRAPH_GOLDEN_DIR) + "/" + name;
}

} // namespace

TEST(ServeChaos, InjectedFailuresNeverLoseOrCorruptAcknowledgedState)
{
    fuzz::ChaosOptions opt;
    opt.seed = testSeed(1);
    opt.iterations = 80;
    opt.roundLength = 20;
    opt.killProbability = 0.1;
    opt.serveBinary = PARAGRAPH_SERVE_CLI_PATH;
    opt.workDir = (fs::temp_directory_path() /
                   ("ps_chaos_" + std::to_string(::getpid())))
                      .string();
    opt.inputs = {goldenTrace("xlisp-800.ptrc"),
                  goldenTrace("matrix300-600.ptrc")};

    fuzz::ChaosReport report = fuzz::runChaos(opt);

    EXPECT_TRUE(report.ok())
        << report.firstFailure << "\nreplay: paragraph-fuzz --chaos --seed="
        << opt.seed << "\n"
        << fuzz::chaosReportJson(opt, report);
    EXPECT_EQ(report.iterations, opt.iterations);
    EXPECT_GT(report.kills + report.restarts, 1u)
        << "the schedule must actually crash and restart the daemon";
    EXPECT_GT(report.verifiedGrids, 0u)
        << "verification must re-serve at least one reference grid";
    fs::remove_all(opt.workDir);
}
