// Tests for the SPEC89 analog suite: registry integrity, compilation,
// execution, and the dependence-structure signatures each analog must show.
#include <gtest/gtest.h>

#include <set>

#include "core/paragraph.hpp"
#include "support/panic.hpp"
#include "trace/stats.hpp"
#include "workloads/workload.hpp"

using namespace paragraph;
using namespace paragraph::workloads;

TEST(WorkloadSuite, HasAllTenSpecAnalogs)
{
    auto &suite = WorkloadSuite::instance();
    ASSERT_EQ(suite.all().size(), 10u);
    std::set<std::string> names;
    for (const auto &w : suite.all())
        names.insert(w.name);
    for (const char *expected :
         {"cc1", "doduc", "eqntott", "espresso", "fpppp", "matrix300",
          "nasker", "spice2g6", "tomcatv", "xlisp"}) {
        EXPECT_TRUE(names.count(expected)) << expected;
    }
}

TEST(WorkloadSuite, Table2MetadataComplete)
{
    for (const auto &w : WorkloadSuite::instance().all()) {
        EXPECT_FALSE(w.description.empty()) << w.name;
        EXPECT_TRUE(w.language == "C" || w.language == "FORTRAN") << w.name;
        EXPECT_TRUE(w.benchType == "Int" || w.benchType == "FP" ||
                    w.benchType == "Int and FP")
            << w.name;
        EXPECT_FALSE(w.source.empty()) << w.name;
        EXPECT_FALSE(w.input.empty()) << w.name;
        EXPECT_FALSE(w.smallInput.empty()) << w.name;
    }
}

TEST(WorkloadSuite, FindUnknownIsFatal)
{
    EXPECT_THROW(WorkloadSuite::instance().find("gcc"), FatalError);
}

TEST(WorkloadSuite, ProgramsCompileOnceAndAreCached)
{
    auto &suite = WorkloadSuite::instance();
    const auto &w = suite.find("xlisp");
    const casm::Program &p1 = suite.program(w);
    const casm::Program &p2 = suite.program(w);
    EXPECT_EQ(&p1, &p2);
    EXPECT_GT(p1.text.size(), 50u);
}

TEST(WorkloadSuite, FpWorkloadsActuallyUseFp)
{
    auto &suite = WorkloadSuite::instance();
    for (const char *name : {"doduc", "fpppp", "matrix300", "nasker",
                             "tomcatv", "spice2g6"}) {
        auto src = suite.makeSource(suite.find(name), Scale::Small);
        trace::TraceStats stats = trace::TraceStats::collect(*src);
        EXPECT_GT(stats.fpFraction(), 0.05) << name;
    }
}

TEST(WorkloadSuite, IntWorkloadsAreIntegerOnly)
{
    auto &suite = WorkloadSuite::instance();
    for (const char *name : {"cc1", "eqntott", "espresso", "xlisp"}) {
        auto src = suite.makeSource(suite.find(name), Scale::Small);
        trace::TraceStats stats = trace::TraceStats::collect(*src);
        EXPECT_DOUBLE_EQ(stats.fpFraction(), 0.0) << name;
    }
}

TEST(WorkloadSuite, StackVsDataSegmentSignatures)
{
    auto &suite = WorkloadSuite::instance();
    // matrix300 and tomcatv keep their arrays on the stack; fpppp, eqntott,
    // espresso work out of the data segment.
    for (const char *name : {"matrix300", "tomcatv"}) {
        auto src = suite.makeSource(suite.find(name), Scale::Small);
        trace::TraceStats stats = trace::TraceStats::collect(*src);
        EXPECT_GT(stats.stackAccesses, stats.dataAccesses) << name;
    }
    for (const char *name : {"fpppp", "eqntott", "espresso"}) {
        auto src = suite.makeSource(suite.find(name), Scale::Small);
        trace::TraceStats stats = trace::TraceStats::collect(*src);
        EXPECT_GT(stats.dataAccesses, stats.stackAccesses) << name;
    }
}

TEST(WorkloadSuite, Cc1IsTheSysCallHeavyBenchmark)
{
    auto &suite = WorkloadSuite::instance();
    auto src = suite.makeSource(suite.find("cc1"), Scale::Full);
    core::AnalysisConfig cfg = core::AnalysisConfig::dataflowConservative();
    cfg.maxInstructions = 300000;
    core::AnalysisResult res = core::Paragraph(cfg).analyze(*src);
    EXPECT_GT(res.sysCalls, 10u);
}

TEST(WorkloadSuite, HeapUsersAllocate)
{
    auto &suite = WorkloadSuite::instance();
    for (const char *name : {"cc1", "espresso"}) {
        auto src = suite.makeSource(suite.find(name), Scale::Small);
        trace::TraceRecord rec;
        bool heap_access = false;
        while (src->next(rec)) {
            for (int s = 0; s < rec.numSrcs; ++s)
                heap_access |= rec.srcs[s].isMem() &&
                               rec.srcs[s].seg == trace::Segment::Heap;
        }
        EXPECT_TRUE(heap_access) << name;
    }
}

TEST(WorkloadSignature, XlispIsTheLeastParallel)
{
    auto &suite = WorkloadSuite::instance();
    core::AnalysisConfig cfg = core::AnalysisConfig::dataflowConservative();
    auto xl = suite.makeSource(suite.find("xlisp"), Scale::Small);
    double xlisp_par = core::Paragraph(cfg).analyze(*xl).availableParallelism;
    for (const char *name : {"matrix300", "tomcatv", "fpppp", "eqntott"}) {
        auto src = suite.makeSource(suite.find(name), Scale::Small);
        double par = core::Paragraph(cfg).analyze(*src).availableParallelism;
        EXPECT_GT(par, xlisp_par) << name;
    }
}

TEST(WorkloadSignature, StackRenamingUnlocksMatrix300AndTomcatv)
{
    auto &suite = WorkloadSuite::instance();
    for (const char *name : {"matrix300", "tomcatv"}) {
        auto a = suite.makeSource(suite.find(name), Scale::Small);
        auto b = suite.makeSource(suite.find(name), Scale::Small);
        double regs = core::Paragraph(core::AnalysisConfig::regsRenamed())
                          .analyze(*a)
                          .availableParallelism;
        double stack =
            core::Paragraph(core::AnalysisConfig::regsStackRenamed())
                .analyze(*b)
                .availableParallelism;
        EXPECT_GT(stack, regs * 3.0) << name;
    }
}

TEST(WorkloadSignature, MemoryRenamingUnlocksFpppp)
{
    auto &suite = WorkloadSuite::instance();
    // The cross-shell serialization only dominates once there are many
    // shells, so this signature is checked at full scale.
    auto a = suite.makeSource(suite.find("fpppp"), Scale::Full);
    auto b = suite.makeSource(suite.find("fpppp"), Scale::Full);
    double stack = core::Paragraph(core::AnalysisConfig::regsStackRenamed())
                       .analyze(*a)
                       .availableParallelism;
    double mem = core::Paragraph(core::AnalysisConfig::regsMemRenamed())
                     .analyze(*b)
                     .availableParallelism;
    EXPECT_GT(mem, stack * 2.0);
}

TEST(WorkloadSignature, NoRenamingCollapsesEveryone)
{
    auto &suite = WorkloadSuite::instance();
    for (const auto &w : suite.all()) {
        auto src = suite.makeSource(w, Scale::Small);
        double par = core::Paragraph(core::AnalysisConfig::noRenaming())
                         .analyze(*src)
                         .availableParallelism;
        EXPECT_LT(par, 5.0) << w.name;
    }
}

TEST(WorkloadSignature, ProgramOutputsAreStable)
{
    // Golden outputs: catches simulator or compiler regressions that change
    // program semantics without crashing anything.
    auto &suite = WorkloadSuite::instance();
    auto run = [&](const char *name) {
        auto src = suite.makeSource(suite.find(name), Scale::Small);
        trace::TraceRecord rec;
        while (src->next(rec)) {
        }
        return src->machine().intOutput();
    };
    auto xlisp_out = run("xlisp");
    ASSERT_FALSE(xlisp_out.empty());
    // At the small scale the step budget expires mid-loop; the final dump
    // shows the partial accumulation (golden value).
    EXPECT_EQ(xlisp_out[0], 18825);

    auto cc1_out = run("cc1");
    ASSERT_FALSE(cc1_out.empty());
    EXPECT_EQ(cc1_out[0], 127); // first periodic progress print
}
