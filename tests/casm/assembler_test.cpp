// Tests for the two-pass assembler.
#include <gtest/gtest.h>

#include "casm/assembler.hpp"
#include "isa/registers.hpp"
#include "support/panic.hpp"

using namespace paragraph;
using namespace paragraph::casm;
using paragraph::isa::Opcode;

TEST(Assembler, EmptySourceIsEmptyProgram)
{
    Program p = assemble("");
    EXPECT_TRUE(p.text.empty());
    EXPECT_TRUE(p.data.empty());
    EXPECT_EQ(p.entry, 0u);
}

TEST(Assembler, SimpleInstructionForms)
{
    Program p = assemble(R"(
        add t0, t1, t2
        addi sp, sp, -32
        li v0, 5
        lui t3, 0x1000
        move a0, v0
        lw t0, 8(sp)
        sw t1, 12(sp)
        l.d f2, 0(t0)
        s.d f4, 8(t0)
        add.d f0, f2, f4
        cvt.d.w f6, t0
        cvt.w.d t5, f6
        c.lt.d t6, f0, f2
        jr ra
        syscall
        nop
)");
    ASSERT_EQ(p.text.size(), 16u);
    EXPECT_EQ(p.text[0].op, Opcode::Add);
    EXPECT_EQ(p.text[0].rd, isa::regT0);
    EXPECT_EQ(p.text[0].rs, isa::regT1);
    EXPECT_EQ(p.text[0].rt, isa::regT2);
    EXPECT_EQ(p.text[1].imm, -32);
    EXPECT_EQ(p.text[2].op, Opcode::Li);
    EXPECT_EQ(p.text[2].imm, 5);
    EXPECT_EQ(p.text[3].imm, 0x1000);
    EXPECT_EQ(p.text[5].op, Opcode::Lw);
    EXPECT_EQ(p.text[5].rs, isa::regSp);
    EXPECT_EQ(p.text[5].imm, 8);
    EXPECT_EQ(p.text[6].rt, isa::regT1);
    EXPECT_EQ(p.text[9].op, Opcode::FAdd);
    EXPECT_EQ(p.text[13].op, Opcode::Jr);
    EXPECT_EQ(p.text[14].op, Opcode::SysCall);
}

TEST(Assembler, LabelsResolveForwardAndBackward)
{
    Program p = assemble(R"(
top:    addi t0, t0, 1
        bne t0, t1, top
        beq t0, t1, done
        nop
done:   jr ra
)");
    ASSERT_EQ(p.text.size(), 5u);
    EXPECT_EQ(p.text[1].imm, 0); // top
    EXPECT_EQ(p.text[2].imm, 4); // done
    EXPECT_EQ(p.symbol("top"), 0u);
    EXPECT_EQ(p.symbol("done"), 4u);
}

TEST(Assembler, EntryIsMainWhenPresent)
{
    Program p = assemble(R"(
helper: jr ra
main:   jal helper
        syscall
)");
    EXPECT_EQ(p.entry, 1u);
    EXPECT_EQ(p.text[1].imm, 0);
}

TEST(Assembler, DataDirectives)
{
    Program p = assemble(R"(
        .data
words:  .word 1, 2, -1
        .align 3
dbl:    .double 1.5
buf:    .space 16
        .text
        la t0, words
        la t1, dbl
)");
    EXPECT_EQ(p.symbol("words"), MemoryLayout::dataBase);
    // .word emits 12 bytes; .align 3 pads to 16.
    EXPECT_EQ(p.symbol("dbl"), MemoryLayout::dataBase + 16);
    EXPECT_EQ(p.symbol("buf"), MemoryLayout::dataBase + 24);
    EXPECT_EQ(p.data.size(), 40u);
    // Word encoding is little-endian.
    EXPECT_EQ(p.data[0], 1u);
    EXPECT_EQ(p.data[4], 2u);
    EXPECT_EQ(p.data[8], 0xffu);
    EXPECT_EQ(p.data[11], 0xffu);
    // 1.5 == 0x3FF8000000000000.
    EXPECT_EQ(p.data[16 + 7], 0x3f);
    EXPECT_EQ(p.data[16 + 6], 0xf8);
    // la expands to li with the absolute address.
    EXPECT_EQ(p.text[0].op, Opcode::Li);
    EXPECT_EQ(static_cast<uint64_t>(p.text[0].imm), MemoryLayout::dataBase);
}

TEST(Assembler, HeapBaseIsPageAlignedPastData)
{
    Program p = assemble(R"(
        .data
        .space 100
)");
    EXPECT_EQ(p.heapBase() % MemoryLayout::heapAlign, 0u);
    EXPECT_GE(p.heapBase(), MemoryLayout::dataBase + 100);
}

TEST(Assembler, PseudoBranchExpansion)
{
    Program p = assemble(R"(
loop:   bge t0, t1, loop
        blt t0, t1, loop
        ble t0, t1, loop
        bgt t0, t1, loop
        b loop
)");
    // Each compare-branch expands to slt+branch; b expands to j.
    ASSERT_EQ(p.text.size(), 9u);
    EXPECT_EQ(p.text[0].op, Opcode::Slt);
    EXPECT_EQ(p.text[0].rd, isa::regAt);
    EXPECT_EQ(p.text[1].op, Opcode::Beq); // bge: !(t0<t1)
    EXPECT_EQ(p.text[3].op, Opcode::Bne); // blt: t0<t1
    EXPECT_EQ(p.text[4].rs, isa::regT1);  // ble swaps operands
    EXPECT_EQ(p.text[5].op, Opcode::Beq);
    EXPECT_EQ(p.text[7].op, Opcode::Bne); // bgt
    EXPECT_EQ(p.text[8].op, Opcode::J);
    // Labels after pseudo expansion still resolve to instruction indices.
    EXPECT_EQ(p.text[8].imm, 0);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = assemble(R"(
# full-line comment
        nop      # trailing comment

        nop
)");
    EXPECT_EQ(p.text.size(), 2u);
}

TEST(Assembler, MultipleLabelsOneLocation)
{
    Program p = assemble(R"(
a: b:   nop
)");
    EXPECT_EQ(p.symbol("a"), 0u);
    EXPECT_EQ(p.symbol("b"), 0u);
}

TEST(Assembler, AbsoluteAddressOperand)
{
    Program p = assemble(R"(
        .data
var:    .word 7
        .text
        lw t0, var
)");
    EXPECT_EQ(p.text[0].rs, isa::regZero);
    EXPECT_EQ(static_cast<uint64_t>(p.text[0].imm), MemoryLayout::dataBase);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble("x: nop\nx: nop\n"), FatalError);
}

TEST(AssemblerErrors, UndefinedSymbol)
{
    EXPECT_THROW(assemble("j nowhere\n"), FatalError);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble("frob t0, t1\n"), FatalError);
}

TEST(AssemblerErrors, WrongOperandCount)
{
    EXPECT_THROW(assemble("add t0, t1\n"), FatalError);
    EXPECT_THROW(assemble("nop t0\n"), FatalError);
}

TEST(AssemblerErrors, BadRegister)
{
    EXPECT_THROW(assemble("add q9, t1, t2\n"), FatalError);
    EXPECT_THROW(assemble("add.d t0, f1, f2\n"), FatalError); // int reg in FP slot
}

TEST(AssemblerErrors, InstructionInDataSegment)
{
    EXPECT_THROW(assemble(".data\nadd t0, t1, t2\n"), FatalError);
}

TEST(AssemblerErrors, DirectiveInTextSegment)
{
    EXPECT_THROW(assemble(".word 5\n"), FatalError);
}

TEST(AssemblerErrors, BadDirectiveValues)
{
    EXPECT_THROW(assemble(".data\n.space -4\n"), FatalError);
    EXPECT_THROW(assemble(".data\n.word oops\n"), FatalError);
    EXPECT_THROW(assemble(".data\n.double oops\n"), FatalError);
    EXPECT_THROW(assemble(".data\n.align 40\n"), FatalError);
    EXPECT_THROW(assemble(".data\n.bogus 1\n"), FatalError);
}

TEST(AssemblerErrors, ImmediateOutOfRange)
{
    EXPECT_THROW(assemble("li t0, 99999999999\n"), FatalError);
}

TEST(Assembler, DisassembleRoundTrip)
{
    // Program::disassemble output re-assembles to the same text segment
    // (labels become @index operands, so compare via disassembly equality).
    Program p = assemble(R"(
main:   li t0, 10
loop:   addi t0, t0, -1
        bgtz t0, loop
        jr ra
)");
    std::string listing = p.disassemble();
    EXPECT_NE(listing.find("li t0, 10"), std::string::npos);
    EXPECT_NE(listing.find("bgtz t0, @1"), std::string::npos);
}
